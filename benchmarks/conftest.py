"""Benchmark-harness fixtures.

The harness regenerates every table and figure of the paper at the
``small`` scale (DESIGN.md documents the scale substitution).  Workload
runs are session-scoped — the expensive emulation happens once and every
table/figure replays the shared traces, exactly as the library's
:class:`~repro.analysis.runner.Workloads` is designed to be used.

Rendered outputs are written to ``benchmarks/results/`` so the numbers
backing EXPERIMENTS.md can be regenerated with one command::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.runner import Workloads

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def workloads():
    return Workloads(scale="small")


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
