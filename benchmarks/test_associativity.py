"""Section 4.3's associativity note: two-way set-associative PIM caches
produce noticeably more bus traffic than four-way (Matsumoto measured
+18 % for BUP) and direct-mapped caches are far worse."""


def test_associativity(benchmark, workloads, save_result):
    from repro.analysis.figures import associativity_sweep

    sweep = benchmark.pedantic(
        associativity_sweep, args=(workloads,), kwargs={"ways": (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    save_result("associativity", sweep.render())

    relative = sweep.series["relative to 4-way"]
    for name, series in relative.items():
        direct, two_way, four_way, eight_way = series
        assert four_way == 1.0
        # Two-way costs extra traffic over four-way...
        assert two_way > 1.02, name
        # ...and direct-mapped costs significantly more.
        assert direct > 1.5, name
        assert direct > two_way, name
        # Returns diminish: 2->4 ways saves more than 4->8 ways.
        assert (two_way - four_way) > (four_way - eight_way), name
        assert eight_way > 0.6, name
