"""The transfer claim (Sections 1 and 5): the cache optimizations also
help non-committed-choice systems such as the Aurora OR-parallel Prolog.

Run on the synthetic Aurora-shaped trace (DESIGN.md documents the
substitution for Tick's unavailable TR-421 traces).
"""

from repro.analysis.formatting import format_table
from repro.core.config import OptimizationConfig, SimulationConfig
from repro.core.replay import replay
from repro.trace.synthetic import AuroraTraceConfig, generate_aurora_trace


def test_aurora_transfer(benchmark, save_result):
    def run_study():
        trace = generate_aurora_trace(
            AuroraTraceConfig(n_pes=8, steps_per_pe=4000)
        )
        on = replay(trace, SimulationConfig(opts=OptimizationConfig.all()))
        off = replay(trace, SimulationConfig(opts=OptimizationConfig.none()))
        return trace, on, off

    trace, on, off = benchmark.pedantic(run_study, rounds=1, iterations=1)

    ratio = on.bus_cycles_total / off.bus_cycles_total
    save_result(
        "aurora",
        format_table(
            ("config", "bus cycles", "miss ratio", "relative"),
            [
                ("none", off.bus_cycles_total, f"{off.miss_ratio:.4f}", "1.00"),
                ("all", on.bus_cycles_total, f"{on.miss_ratio:.4f}", f"{ratio:.2f}"),
            ],
            title=f"Aurora-style OR-parallel trace ({len(trace)} refs, 8 workers)",
        ),
    )

    # The optimizations carry over: a large reduction, comparable to or
    # better than the KL1 benchmarks' 0.51-0.62.
    assert ratio < 0.75
    # Lock traffic exists and stays nearly conflict-free.
    assert off.lr_no_bus + off.lr_bus > 0
