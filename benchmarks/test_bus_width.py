"""Section 4.4: a two-word bus cuts traffic to 62-75 % of the one-word
bus, roughly independent of the benchmark."""


def test_bus_width(benchmark, workloads, save_result):
    from repro.analysis.figures import bus_width_study

    sweep = benchmark.pedantic(
        bus_width_study, args=(workloads,), rounds=1, iterations=1
    )
    save_result("bus_width", sweep.render())

    ratios = {name: series[2] for name, series in sweep.series["bus"].items()}
    for name, ratio in ratios.items():
        assert 0.55 < ratio < 0.85, (name, ratio)  # paper: 0.62-0.75
    # Insensitive to the benchmark: a narrow spread.
    assert max(ratios.values()) - min(ratios.values()) < 0.15
