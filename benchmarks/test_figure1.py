"""Figure 1: cache block size vs miss ratio and bus traffic.

Paper shape: miss ratio improves steadily with block size, but bus
traffic barely differs between two- and four-word blocks and becomes
"restrictive" above four words — logic programs lack the spatial
locality to feed long blocks.
"""


def test_figure1(benchmark, workloads, save_result):
    from repro.analysis.figures import figure1

    sweep = benchmark.pedantic(
        figure1, args=(workloads,), kwargs={"block_sizes": (1, 2, 4, 8, 16)},
        rounds=1, iterations=1,
    )
    save_result("figure1", sweep.render())

    for name, miss in sweep.series["miss ratio"].items():
        # Miss ratio falls monotonically (within noise) with block size.
        for before, after in zip(miss, miss[1:]):
            assert after <= before * 1.10, name

    for name, bus in sweep.series["bus cycles"].items():
        one, two, four, eight, sixteen = bus
        # Two- and four-word blocks are close (paper: "relatively small").
        assert abs(four - two) / two < 0.35, name
        # Above four words the traffic blows up despite better hit rates.
        assert sixteen > 1.5 * four, name
        # The sweet spot is at small blocks, not at one word either.
        assert min(two, four) <= one, name
