"""Figure 2: cache capacity vs miss ratio and bus traffic.

Paper shape: both curves knee around the 8-Kword point; Semi's small
working set is captured by even the smallest cache; Puzzle — with the
largest data structures — keeps converting capacity into traffic
reduction the longest.
"""


def test_figure2(benchmark, workloads, save_result):
    from repro.analysis.figures import figure2

    capacities = (512, 1024, 2048, 4096, 8192, 16384)
    sweep = benchmark.pedantic(
        figure2, args=(workloads,), kwargs={"capacities": capacities},
        rounds=1, iterations=1,
    )
    save_result("figure2", sweep.render())

    # The x-axis in bits reproduces the paper's "4 Kword = 190000 bits".
    assert sweep.total_bits[capacities.index(4096)] == 189440

    miss = sweep.series["miss ratio"]
    bus = sweep.series["bus cycles"]

    for name in miss:
        # More capacity never hurts.
        for before, after in zip(miss[name], miss[name][1:]):
            assert after <= before * 1.02, name
        for before, after in zip(bus[name], bus[name][1:]):
            assert after <= before * 1.05, name

    def relative_gain(series):
        return (series[0] - series[-1]) / series[0]

    # Semi's working set fits early: capacity barely helps it.
    assert relative_gain(bus["semi"]) < 0.35  # paper: nearly flat
    # Puzzle gains the most from capacity (largest structures).
    assert relative_gain(bus["puzzle"]) == max(
        relative_gain(series) for series in bus.values()
    )
    assert relative_gain(bus["puzzle"]) > 0.5
