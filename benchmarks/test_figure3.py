"""Figure 3: number of PEs vs bus traffic.

Paper shape: total bus traffic grows with PE count (Tri most
dramatically — its many small tasks keep the scheduler busy); the
communication area's share of bus cycles grows from ~0 % at one PE to a
major share at eight, while the heap's share falls correspondingly.
"""


def test_figure3(benchmark, workloads, save_result):
    from repro.analysis.figures import figure3

    sweep = benchmark.pedantic(
        figure3, args=(workloads,), kwargs={"pe_counts": (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    save_result("figure3", sweep.render())

    bus = sweep.series["bus cycles"]
    comm = sweep.series["comm % of bus"]
    heap = sweep.series["heap % of bus"]

    for name in bus:
        # Parallel execution never *reduces* traffic much (Puzzle stays
        # roughly flat: its capacity misses dominate, and eight caches
        # bring more aggregate capacity), and the scheduler-bound
        # benchmarks grow substantially.
        assert bus[name][-1] > 0.85 * bus[name][0], name
    for name in ("tri", "semi", "pascal"):
        assert bus[name][-1] > 1.5 * bus[name][0], name
        # Communication is negligible at one PE and substantial at eight.
        assert comm[name][0] < 1.0, name
        assert comm[name][-1] > 5.0, name
        assert comm[name][-1] > comm[name][0], name
        # The heap's share falls as scheduler traffic moves in.
        assert heap[name][-1] < heap[name][0], name

    # Tri's load distribution makes it the benchmark whose traffic grows
    # the most going parallel (paper Section 4.5).
    growth = {name: bus[name][-1] / bus[name][0] for name in bus}
    assert growth["tri"] > growth["puzzle"]
    assert growth["tri"] > 2.0
