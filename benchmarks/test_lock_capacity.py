"""The lock-directory sizing claim (Section 3.1): "we think only one or
two lock entries per directory is needed in most parallel logic
programming architectures."

Measured directly: the peak simultaneous lock-entry occupancy and the
number of beyond-capacity registrations across the benchmark suite.
"""

from repro.analysis.formatting import format_table
from repro.core.config import SimulationConfig
from repro.core.replay import replay


def test_lock_directory_capacity(benchmark, workloads, save_result):
    names = ("tri", "semi", "puzzle", "pascal")

    def run_study():
        results = {}
        for name in names:
            stats = replay(
                workloads.trace(name), SimulationConfig(lock_entries=2)
            )
            results[name] = (
                stats.lock_dir_max_occupancy,
                stats.lock_dir_overflows,
                stats.lr_bus + stats.lr_no_bus,
            )
        return results

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    save_result(
        "lock_capacity",
        format_table(
            ("bench", "peak entries", "overflows", "lock reads"),
            [
                (name, peak, overflows, total)
                for name, (peak, overflows, total) in results.items()
            ],
            title="Lock-directory occupancy (capacity 2, Section 3.1 claim)",
        ),
    )

    for name, (peak, overflows, total) in results.items():
        # The paper's sizing claim holds: two entries never overflow.
        assert peak <= 2, (name, peak)
        assert overflows == 0, (name, overflows)
        assert total > 0, name
