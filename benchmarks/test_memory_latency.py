"""Section 4.2's sensitivity claim: "bus traffic is insensitive to
memory access time because most bus traffic is cache-to-cache."

Swept directly: halving or doubling the 8-cycle shared-memory latency
must move total bus cycles far less than proportionally, and the
cache-to-cache patterns must carry a large share of transfers.
"""

from repro.analysis.formatting import format_table
from repro.core.config import BusConfig, SimulationConfig
from repro.core.states import BusPattern


def test_memory_latency_insensitivity(benchmark, workloads, save_result):
    names = ("tri", "semi", "puzzle", "pascal")
    latencies = (4, 8, 16)

    def run_study():
        results = {}
        for name in names:
            by_latency = {}
            for cycles in latencies:
                stats = workloads.replay(
                    name,
                    SimulationConfig(bus=BusConfig(memory_access_cycles=cycles)),
                )
                by_latency[cycles] = stats
            results[name] = by_latency
        return results

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = []
    for name, by_latency in results.items():
        base = by_latency[8]
        c2c = (
            base.pattern_counts[BusPattern.C2C]
            + base.pattern_counts[BusPattern.C2C_WITH_SWAP_OUT]
        )
        fetches = (
            c2c
            + base.pattern_counts[BusPattern.SWAP_IN]
            + base.pattern_counts[BusPattern.SWAP_IN_WITH_SWAP_OUT]
        )
        rows.append(
            (
                name,
                by_latency[4].bus_cycles_total,
                by_latency[8].bus_cycles_total,
                by_latency[16].bus_cycles_total,
                f"{by_latency[16].bus_cycles_total / by_latency[4].bus_cycles_total:.2f}",
                f"{100 * c2c / fetches:.0f}%",
            )
        )
    save_result(
        "memory_latency",
        format_table(
            ("bench", "mem=4", "mem=8", "mem=16", "16/4 ratio", "c2c share"),
            rows,
            title="Memory access time vs bus traffic (Section 4.2 claim)",
        ),
    )

    for name, by_latency in results.items():
        slow = by_latency[16].bus_cycles_total
        fast = by_latency[4].bus_cycles_total
        # A 4x memory-latency swing moves bus cycles by well under 2x
        # (pure-memory traffic would move ~2.6x under the cost model).
        assert slow / fast < 1.8, name
        # Latency never changes *which* transfers happen.
        counts_fast = by_latency[4].pattern_counts
        counts_slow = by_latency[16].pattern_counts
        assert counts_fast == counts_slow, name
        # Cache-to-cache carries a substantial share of block transfers.
        base = by_latency[8]
        c2c = (
            base.pattern_counts[BusPattern.C2C]
            + base.pattern_counts[BusPattern.C2C_WITH_SWAP_OUT]
        )
        swap_ins = (
            base.pattern_counts[BusPattern.SWAP_IN]
            + base.pattern_counts[BusPattern.SWAP_IN_WITH_SWAP_OUT]
        )
        assert c2c > 0.25 * (c2c + swap_ins), name
