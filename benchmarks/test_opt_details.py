"""Section 4.6's per-mechanism detail: DW reduces heap-driven swap-ins
(paper: to 10-55 %), the goal commands reduce swap-outs, and RI removes
a large fraction of invalidate bus commands (paper: 60-70 %)."""


def test_optimization_details(benchmark, workloads, save_result):
    from repro.analysis.figures import optimization_details

    detail = benchmark.pedantic(
        optimization_details, args=(workloads,), rounds=1, iterations=1
    )
    save_result("opt_details", detail.render())

    for name, ratio in detail.heap_swap_in_ratio.items():
        assert ratio < 0.9, (name, ratio)
    # The structure-creation benchmarks approach the paper's band.
    assert detail.heap_swap_in_ratio["puzzle"] < 0.3  # paper: 0.55 for Puzzle
    assert detail.heap_swap_in_ratio["tri"] < 0.7  # paper: 0.10 for Tri

    for name, ratio in detail.goal_swap_out_ratio.items():
        assert ratio <= 1.0, (name, ratio)

    ratios = detail.comm_invalidate_ratio
    for name, ratio in ratios.items():
        assert ratio < 0.96, (name, ratio)  # RI removes I commands
    assert sum(ratios.values()) / len(ratios) < 0.9
