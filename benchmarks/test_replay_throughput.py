"""Replay-kernel throughput (the BENCH_replay.json trajectory).

Runs the same workloads as ``python -m repro bench`` through the
pytest-benchmark harness and checks the structural claims — determinism
of the measured streams, parallel/serial result identity, and (where the
host has more than one CPU) the parallel sweep beating serial wall time.
Absolute refs/sec assertions stay out of the suite: they belong to the
bench report, which records the baseline alongside the measurement.
"""

from __future__ import annotations

import os

from repro.analysis.bench import (
    hot_trace,
    measure_replay,
    run_bench,
    sweep_configs,
    time_sweep,
)
from repro.trace.synthetic import generate_random_trace


def test_hot_microbenchmark(benchmark, save_result):
    trace = hot_trace()

    rate, stats = benchmark.pedantic(
        lambda: measure_replay(trace, repeats=3), rounds=1, iterations=1
    )

    total = sum(sum(row) for row in stats.refs)
    hits = sum(sum(row) for row in stats.hits)
    save_result(
        "replay_throughput",
        f"hot microbenchmark: {rate:,.0f} refs/sec "
        f"(hit ratio {hits / total:.4f}, bus {stats.bus_cycles_total})",
    )
    # The stream is deterministic: same trace, same outcome, every run.
    assert len(trace) == 400_000
    assert hits / total > 0.97
    assert rate > 0


def test_random_stream_deterministic(benchmark):
    trace = generate_random_trace(50_000, n_pes=8, seed=42)
    first = measure_replay(trace, repeats=1)[1]
    second = benchmark.pedantic(
        lambda: measure_replay(trace, repeats=1)[1], rounds=1, iterations=1
    )
    assert first.bus_cycles_total == second.bus_cycles_total
    assert first.refs == second.refs
    assert first.hits == second.hits


def test_sweep_parallel_matches_serial(benchmark):
    trace = hot_trace(100_000)
    configs = sweep_configs()

    def run_study():
        serial_time, serial = time_sweep(trace, configs, jobs=1)
        parallel_time, parallel = time_sweep(trace, configs, jobs=2)
        return serial_time, serial, parallel_time, parallel

    serial_time, serial, parallel_time, parallel = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    for left, right in zip(serial, parallel):
        assert left.refs == right.refs
        assert left.hits == right.hits
        assert left.pe_cycles == right.pe_cycles
        assert left.bus_cycles_total == right.bus_cycles_total
    if (os.cpu_count() or 1) >= 2:
        # Replay dominates the sweep, so two workers must beat one
        # whenever a second CPU exists to run them on.
        assert parallel_time < serial_time


def test_quick_bench_report():
    report = run_bench(quick=True, jobs=2, repeats=1)
    assert report["workloads"]["hot"]["speedup"] is not None
    assert report["sweep"]["results_identical"]
