"""The SM-state ablation (Section 3.1's design rationale).

The PIM protocol is Illinois plus the shared-modified state.  Without
SM, every cache-to-cache transfer of a dirty block must also write
shared memory; with KL1's high cache-to-cache rate that drives up the
busy ratio of the memory modules — the reason the state was added.
"""

from repro.analysis.formatting import format_table
from repro.core.illinois import compare_protocols


def test_sm_ablation(benchmark, workloads, save_result):
    def run_ablation():
        results = {}
        for name in ("tri", "semi", "puzzle", "pascal"):
            results[name] = compare_protocols(workloads.trace(name))
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for name, comparison in results.items():
        pim, illinois = comparison["pim"], comparison["illinois"]
        rows.append(
            (
                name,
                pim["memory_busy_cycles"],
                illinois["memory_busy_cycles"],
                f"{illinois['memory_busy_cycles'] / pim['memory_busy_cycles']:.2f}",
                pim["swap_outs"],
                illinois["swap_outs"],
            )
        )
    save_result(
        "sm_ablation",
        format_table(
            ("bench", "PIM mem busy", "Illinois mem busy", "x", "PIM swapouts",
             "Illinois swapouts"),
            rows,
            title="SM-state ablation: PIM vs Illinois protocol",
        ),
    )

    for name, comparison in results.items():
        pim, illinois = comparison["pim"], comparison["illinois"]
        # Removing SM strictly increases memory-module pressure.
        assert pim["memory_busy_cycles"] < illinois["memory_busy_cycles"], name
        assert pim["swap_outs"] < illinois["swap_outs"], name
        # The protocols see the same stream: identical hit behaviour.
        assert pim["miss_ratio"] == illinois["miss_ratio"], name
