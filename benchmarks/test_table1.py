"""Table 1: benchmark summary on eight PEs.

Paper values (full-scale workloads): 104-310 source lines, speedups
4.8-6.5 on eight PEs, 0.27-0.85 M reductions, 4.8-29 M references.
Scaled-down workloads shrink the counts; the *shape* checks below assert
what transfers: real parallel speedup for the search benchmarks, Tri
with the fewest suspensions relative to reductions, reference counts
tens of times larger than reduction counts.
"""


def test_table1(benchmark, workloads, save_result):
    from repro.analysis.tables import table1

    table = benchmark.pedantic(table1, args=(workloads,), rounds=1, iterations=1)
    save_result("table1", table.render())

    rows = {row["bench"]: row for row in table.rows}
    assert set(rows) == {"Tri", "Semi", "Puzzle", "Pascal"}

    for name, row in rows.items():
        assert row["reductions"] > 5_000, name
        # The architecture touches memory tens of times per reduction
        # (the paper: ~40 refs/reduction).
        assert 10 < row["refs"] / row["reductions"] < 120, name
        # Instructions are a large minority of references (paper: 43 %).
        assert 0.15 < row["instructions"] / row["refs"] < 0.6, name
        assert row["speedup"] > 0.8, name

    # The parallel search benchmarks show real speedup on 8 PEs.
    assert rows["Puzzle"]["speedup"] > 3.0
    assert rows["Tri"]["speedup"] > 2.0

    # Tri is the (nearly) suspension-free benchmark of the suite.
    susp_rate = {
        name: row["suspensions"] / row["reductions"] for name, row in rows.items()
    }
    assert susp_rate["Tri"] < 0.1
    # Semi and Pascal are the stream-suspension benchmarks.
    assert susp_rate["Semi"] > susp_rate["Puzzle"]
