"""Table 2: % memory references and bus cycles by storage area.

Paper (unoptimized base cache, eight PEs): instructions are 43 % of
references but only 4.5 % of bus cycles; the heap is ~34 % of references
but ~66 % of bus cycles (low locality, huge dynamic size); goal +
communication areas take ~29 % of bus cycles; the communication area is
"particularly troublesome" — under 2 % of references, over 17 % of bus
cycles.
"""


def test_table2(benchmark, workloads, save_result):
    from repro.analysis.tables import table2

    table = benchmark.pedantic(table2, args=(workloads,), rounds=1, iterations=1)
    save_result("table2", table.render())

    # The cache kills the instruction bandwidth requirement: a large
    # minority of references, a tiny share of bus cycles.
    assert table.ref_mean["inst"] > 15
    assert table.bus_mean["inst"] < 12
    assert table.bus_mean["inst"] < table.ref_mean["inst"] / 2

    # The heap's bus share exceeds its reference share (poor locality).
    assert table.bus_mean["heap"] > table.ref_mean["heap"]
    # Heap dominates data bus cycles on the structure-heavy benchmarks.
    per_bench = {row["bench"]: row for row in table.bus_rows}
    assert per_bench["Puzzle"]["heap"] > 60  # paper: 81 %
    assert per_bench["Pascal"]["heap"] > 40  # paper: 59 %

    # The communication area punches far above its reference weight.
    assert table.bus_mean["comm"] > 2 * table.ref_mean["comm"]

    # The suspension area stays marginal in both measures (paper: <3 %).
    assert table.ref_mean["susp"] < 3
    assert table.bus_mean["susp"] < 8
