"""Table 3: memory references by operation.

Paper: data writes are 36 % (single assignment writes more than
procedural code but less than backtracking Prolog's 47 %); lock/unlock
operations exceed 5 % of data references; within the heap, bindings push
lock traffic to ~10 % LR + ~10 % UW/U.
"""


def test_table3(benchmark, workloads, save_result):
    from repro.analysis.tables import table3

    table = benchmark.pedantic(table3, args=(workloads,), rounds=1, iterations=1)
    save_result("table3", table.render())

    # Reads dominate overall; writes are a strong minority of data refs.
    assert table.overall_mean["R"] > 55
    assert 20 < table.data_mean["W"] < 50  # paper: 30.7
    assert table.data_mean["R"] > table.data_mean["W"]

    # Locking is a real but small share, and every LR has its unlock.
    assert 1 < table.data_mean["LR"] < 12  # paper: 5.1
    assert abs(table.data_mean["LR"] - table.data_mean["UW+U"]) < 1.0

    # Heap bindings make the heap's lock share exceed the overall share.
    assert table.heap_mean["LR"] > table.overall_mean["LR"]

    # Per-benchmark: each row is a complete partition.
    for row in table.bench_rows:
        total = row["R"] + row["LR"] + row["W"] + row["UW+U"]
        assert abs(total - 100.0) < 0.5, row
