"""Table 4: effect of the optimized cache commands on bus traffic.

The paper's headline: all optimizations together reduce bus cycles to
0.51-0.62 of the unoptimized cache, DW ("Heap") contributing almost all
of it (0.55-0.65), the goal commands a few percent, and RI ("Comm")
nearly nothing in cycles (it removes I commands, which are cheap).
"""


def test_table4(benchmark, workloads, save_result):
    from repro.analysis.tables import table4

    table = benchmark.pedantic(table4, args=(workloads,), rounds=1, iterations=1)
    save_result("table4", table.render())

    rows = {row["bench"]: row for row in table.rows}
    for name, row in rows.items():
        # Every column is normalized and no optimization ever hurts.
        assert row["None"] == 1.0
        for column in ("Heap", "Goal", "Comm", "All"):
            assert row[column] <= 1.001, (name, column)
        # The full set lands in the paper's band, generously widened
        # for the scaled workloads (paper: 0.51-0.62).
        assert 0.25 <= row["All"] <= 0.90, name
        # "All" at least matches the best single site.
        best_single = min(row["Heap"], row["Goal"], row["Comm"])
        assert row["All"] <= best_single + 0.02, name
        # DW contributes the bulk of the saving; RI contributes least.
        assert row["Heap"] <= row["Comm"] + 0.05, name
        assert row["Comm"] > 0.90, name  # paper: 0.83-0.99

    # The heap-heavy benchmark benefits most from DW.
    assert rows["Puzzle"]["Heap"] == min(row["Heap"] for row in rows.values())
