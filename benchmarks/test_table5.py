"""Table 5: hit ratios of the no-cost lock operations.

Paper: LR hits 0.74-0.96 of the time, almost all of those into
exclusive blocks (zero bus cycles), and 0.976-0.999 of unlocks find no
waiter (no UL broadcast) — the three-state lock protocol makes locking
nearly free.
"""


def test_table5(benchmark, workloads, save_result):
    from repro.analysis.tables import table5

    table = benchmark.pedantic(table5, args=(workloads,), rounds=1, iterations=1)
    save_result("table5", table.render())

    rows = {row["bench"]: row for row in table.rows}
    for name, row in rows.items():
        # Unlocks essentially never find a waiter (paper: >= 0.976).
        assert row["no_waiter"] >= 0.95, name
        # Exclusive hits are the bulk of all LR hits.
        assert row["lr_exclusive"] <= row["lr_hit"], name
        if row["lr_hit"] > 0:
            assert row["lr_exclusive"] / row["lr_hit"] > 0.6, name

    # The compute-heavy benchmarks lock mostly-local data: high ratios.
    assert rows["Puzzle"]["lr_hit"] > 0.85  # paper: 0.959
    assert rows["Tri"]["lr_hit"] > 0.6  # paper: 0.743
