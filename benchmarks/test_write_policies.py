"""Section 3's write-policy arguments, on real KL1 traces.

The paper chooses copy-back over write-through because logic programs'
data-write ratio (~36 %) makes per-word write traffic prohibitive, and
invalidation over broadcast update because single-assignment data is
shared narrowly.  Both claims are checked against the captured
benchmark streams.
"""

from repro.analysis.formatting import format_table
from repro.core.config import OptimizationConfig, SimulationConfig


def test_write_policies(benchmark, workloads, save_result):
    names = ("tri", "semi", "puzzle", "pascal")
    policies = ("pim", "write_through", "write_update")

    def run_study():
        results = {}
        for name in names:
            results[name] = {
                policy: workloads.replay(
                    name,
                    SimulationConfig(
                        protocol=policy, opts=OptimizationConfig.none()
                    ),
                )
                for policy in policies
            }
        return results

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = []
    for name, by_policy in results.items():
        rows.append(
            (
                name,
                by_policy["pim"].bus_cycles_total,
                by_policy["write_through"].bus_cycles_total,
                by_policy["write_update"].bus_cycles_total,
                by_policy["pim"].memory_busy_cycles,
                by_policy["write_through"].memory_busy_cycles,
            )
        )
    save_result(
        "write_policies",
        format_table(
            ("bench", "copyback bus", "w-through bus", "w-update bus",
             "copyback mem", "w-through mem"),
            rows,
            title="Write-policy ablation (unoptimized commands)",
        ),
    )

    for name, by_policy in results.items():
        copyback = by_policy["pim"]
        through = by_policy["write_through"]
        update = by_policy["write_update"]
        # Copy-back needs less bus than either write-through variant.
        assert copyback.bus_cycles_total < through.bus_cycles_total, name
        assert copyback.bus_cycles_total < update.bus_cycles_total, name
        # And an order less memory-module pressure.
        assert (
            copyback.memory_busy_cycles < 0.5 * through.memory_busy_cycles
        ), name
        # Invalidation vs update is close on raw cycles for these sharing
        # patterns; update must not *win* meaningfully (the paper's point:
        # broadcast buys nothing for single-assignment data).
        assert update.bus_cycles_total > 0.85 * through.bus_cycles_total, name
