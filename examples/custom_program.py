"""Run your own FGHC program on the simulated machine.

This example implements a stream-parallel prime sieve (the classic
committed-choice process network): a generator streams integers into a
growing pipeline of filter processes, one per prime found.  It shows the
full public workflow:

1. write FGHC source,
2. run it on a :class:`~repro.machine.machine.KL1Machine` over the PIM
   cache (execution-driven),
3. inspect the answer, the suspension behaviour and the cache stats,
4. replay the captured trace against other cache geometries.

Usage::

    python examples/custom_program.py [limit]
"""

import sys

from repro.core.config import CacheConfig, MachineConfig, SimulationConfig
from repro.core.replay import replay
from repro.machine.machine import KL1Machine

SIEVE = """
% primes(N, Ps): Ps is the list of primes up to N, via a pipeline of
% filter processes -- each prime spawns a filter on the stream.
primes(N, Ps) :- gen(2, N, S), sift(S, Ps).

gen(I, N, S) :- I > N | S = [].
gen(I, N, S) :- I =< N | S = [I|S2], I1 := I + 1, gen(I1, N, S2).

sift([], Ps) :- Ps = [].
sift([P|S], Ps) :- Ps = [P|Ps2], filter(P, S, S2), sift(S2, Ps2).

filter(P, [], Out) :- Out = [].
filter(P, [X|Xs], Out) :- X mod P =:= 0 | filter(P, Xs, Out).
filter(P, [X|Xs], Out) :- X mod P =\\= 0 |
    Out = [X|Out2], filter(P, Xs, Out2).

main(N, Ps) :- primes(N, Ps).
"""


def python_primes(limit):
    sieve = [True] * (limit + 1)
    result = []
    for candidate in range(2, limit + 1):
        if sieve[candidate]:
            result.append(candidate)
            for multiple in range(candidate * candidate, limit + 1, candidate):
                sieve[multiple] = False
    return result


def main() -> None:
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 100

    machine = KL1Machine(SIEVE, MachineConfig(n_pes=4, seed=1))
    result = machine.run(f"main({limit}, Ps)")
    primes = result.answer["Ps"]

    expected = python_primes(limit)
    status = "matches" if primes == expected else "MISMATCH with"
    print(f"primes up to {limit}: {len(primes)} found, {status} the sieve oracle")
    print(f"  {primes[:15]}{' ...' if len(primes) > 15 else ''}")
    print(f"\nreductions {result.reductions:,}, suspensions {result.suspensions:,} "
          "(each filter process suspends at its input stream's tail)")
    print(f"memory references {result.memory_refs:,}, "
          f"bus cycles {result.stats.bus_cycles_total:,}, "
          f"miss ratio {result.stats.miss_ratio:.4f}")

    print("\nReplaying the trace against different block sizes:")
    for block_words in (1, 2, 4, 8, 16):
        config = SimulationConfig(
            cache=CacheConfig.from_capacity(4096, block_words=block_words)
        )
        stats = replay(result.trace, config)
        bar = "#" * round(stats.bus_cycles_total / 2500)
        print(f"  {block_words:>2}-word blocks: miss {stats.miss_ratio:.4f}  "
              f"bus {stats.bus_cycles_total:>9,}  {bar}")
    print("\nThe four-word sweet spot (Figure 1's shape) shows on your own")
    print("programs, not just the paper's benchmarks.")


if __name__ == "__main__":
    main()
