"""Load balancing and the cost of parallelism (the Figure 3 story).

The paper's Section 4.5 observation: adding PEs multiplies bus traffic,
and the on-demand scheduler's goal distribution makes the communication
area a dominant traffic source — most dramatically for Tri, whose
search tree fragments into many small tasks.  This example runs Tri at
1/2/4/8 PEs and shows the per-area traffic shift plus where the stolen
goal records actually travel (the ER supplier-invalidations of
cache-to-cache goal transfer).

Usage::

    python examples/load_balancing_study.py [scale]
"""

import sys

from repro.analysis.runner import run_benchmark
from repro.trace.events import Area


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"

    print(f"Tri ({scale}) across PE counts — bus traffic and its sources\n")
    header = (
        f"{'PEs':>4} {'bus cycles':>12} {'comm %':>8} {'heap %':>8} "
        f"{'goal %':>8} {'steals (ER invalidates)':>24} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))

    base_cycles = None
    for n_pes in (1, 2, 4, 8):
        result = run_benchmark("tri", scale=scale, n_pes=n_pes)
        stats = result.stats
        shares = stats.area_bus_percentages()
        if base_cycles is None:
            base_cycles = stats.total_cycles
        speedup = base_cycles / stats.total_cycles
        print(
            f"{n_pes:>4} {stats.bus_cycles_total:>12,} "
            f"{shares[Area.COMMUNICATION]:>7.1f}% {shares[Area.HEAP]:>7.1f}% "
            f"{shares[Area.GOAL]:>7.1f}% {stats.supplier_invalidations:>24,} "
            f"{speedup:>7.1f}x"
        )

    print(
        "\nAs PEs are added, total traffic grows and the scheduler's"
        "\ncommunication-area share rises while the heap's share falls —"
        "\nthe paper's conclusion that load-balancing communication, not"
        "\nlocking, is the critical bottleneck of parallel logic machines."
    )


if __name__ == "__main__":
    main()
