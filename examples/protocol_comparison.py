"""Protocol and command ablations on one workload.

Compares, on the Puzzle benchmark's reference stream:

* the five optimization configurations of Table 4 (None / Heap / Goal /
  Comm / All), and
* the SM-state ablation — the PIM protocol against the Illinois
  protocol it extends (Section 3.1): identical hit behaviour, very
  different shared-memory pressure.

Usage::

    python examples/protocol_comparison.py [benchmark] [scale]
"""

import sys

from repro.analysis.runner import run_benchmark
from repro.core.config import TABLE4_COLUMNS, SimulationConfig
from repro.core.illinois import compare_protocols
from repro.core.replay import replay


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "puzzle"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"

    print(f"Capturing the {name!r} ({scale}) reference stream on 8 PEs ...")
    result = run_benchmark(name, scale=scale, n_pes=8)
    trace = result.trace
    print(f"{len(trace):,} references captured\n")

    print("Optimized-command ablation (Table 4's columns):")
    baseline = None
    for label, opts in TABLE4_COLUMNS:
        stats = replay(trace, SimulationConfig(opts=opts))
        if baseline is None:
            baseline = stats.bus_cycles_total
        relative = stats.bus_cycles_total / baseline
        bar = "#" * round(relative * 40)
        print(f"  {label:<5} {stats.bus_cycles_total:>10,} cycles  "
              f"{relative:.2f}  {bar}")

    print("\nSM-state ablation (PIM vs Illinois):")
    comparison = compare_protocols(trace)
    for protocol in ("pim", "illinois"):
        numbers = comparison[protocol]
        print(f"  {protocol:<8} bus {numbers['bus_cycles']:>10,}  "
              f"memory-module busy {numbers['memory_busy_cycles']:>10,}  "
              f"swap-outs {numbers['swap_outs']:>7,}")
    extra = (
        comparison["illinois"]["memory_busy_cycles"]
        / comparison["pim"]["memory_busy_cycles"]
    )
    print(f"\nWithout the SM state the shared-memory modules are "
          f"{extra:.2f}x busier — the paper's reason for the fifth state.")


if __name__ == "__main__":
    main()
