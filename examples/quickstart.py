"""Quickstart: run a paper benchmark on the PIM cache and read the dials.

Runs the Tri benchmark (triangle peg solitaire) on eight PEs with the
paper's base cache, prints the machine-level summary (Table 1's
columns), the cache behaviour, and the effect of turning the optimized
memory commands off.

Usage::

    python examples/quickstart.py [scale]

where ``scale`` is tiny (default), small, medium or paper.
"""

import sys

from repro.analysis.runner import run_benchmark, replay_trace
from repro.core.config import OptimizationConfig, SimulationConfig


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"

    print(f"Running benchmark 'tri' at scale {scale!r} on 8 PEs ...")
    result = run_benchmark("tri", scale=scale, n_pes=8)
    machine = result.machine
    stats = result.stats

    print(f"\nanswer (solution count): {machine.answer['N']}  [verified]")
    print(f"reductions:   {machine.reductions:>10,}")
    print(f"suspensions:  {machine.suspensions:>10,}")
    print(f"instructions: {machine.instructions:>10,}")
    print(f"memory refs:  {machine.memory_refs:>10,}")
    print(f"heap words:   {machine.heap_words:>10,}")
    print(f"per-PE reductions: {machine.pe_reductions}")

    print(f"\ncache: miss ratio {stats.miss_ratio:.4f}, "
          f"bus cycles {stats.bus_cycles_total:,}")
    print(f"direct-write allocations (no fetch): {stats.dw_allocations:,}")
    print(f"dirty purges (swap-outs avoided):    {stats.purges_dirty:,}")
    print(f"zero-bus lock reads:                 {stats.lr_no_bus:,}")

    print("\nReplaying the same reference stream on an unoptimized cache ...")
    baseline = replay_trace(
        result, SimulationConfig(opts=OptimizationConfig.none())
    )
    ratio = stats.bus_cycles_total / baseline.bus_cycles_total
    print(f"unoptimized bus cycles: {baseline.bus_cycles_total:,}")
    print(f"optimized / unoptimized = {ratio:.2f}  "
          "(the paper reports 0.51-0.62 at full scale)")


if __name__ == "__main__":
    main()
