"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments without the ``wheel`` package (where
PEP 660 editable installs are unavailable)::

    pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
