"""Reproduction of the ISCA 1989 PIM coherent cache for parallel logic
programming architectures (Goto, Matsumoto, Tick; ICOT).

The package is organized around three layers:

``repro.machine``
    A from-scratch KL1/FGHC abstract machine: parser, clause compiler,
    tagged heap, goal list, suspension records, on-demand scheduler, and a
    multi-PE reduction engine that emits an instrumented memory-reference
    stream across the paper's five storage areas.

``repro.core``
    The paper's contribution: a five-state (EM/EC/SM/S/INV) copy-back
    snooping cache with a separate hardware lock directory and the four
    software-controlled memory commands (direct write, exclusive read,
    read purge, read invalidate), plus the one-word-bus cost model.

``repro.analysis``
    The experiment harness regenerating every table and figure of the
    paper's evaluation section.

Quickstart::

    from repro import run_benchmark

    result = run_benchmark("tri", n_pes=8, scale="small")
    print(result.stats.bus_cycles_total)
"""

from repro.core.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.states import CacheState, LockState
from repro.core.stats import SystemStats
from repro.core.system import PIMCacheSystem
from repro.trace.events import Area, MemRef, Op
from repro.trace.buffer import TraceBuffer
from repro.analysis.runner import BenchmarkResult, run_benchmark, replay_trace

__all__ = [
    "Area",
    "BenchmarkResult",
    "BusConfig",
    "CacheConfig",
    "CacheState",
    "LockState",
    "MachineConfig",
    "MemRef",
    "Op",
    "OptimizationConfig",
    "PIMCacheSystem",
    "SimulationConfig",
    "SystemStats",
    "TraceBuffer",
    "replay_trace",
    "run_benchmark",
]

__version__ = "1.0.0"
