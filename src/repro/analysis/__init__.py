"""The experiment harness: regenerates every table and figure of the
paper's evaluation (Section 4).

Typical use::

    from repro.analysis import Workloads, tables, figures

    workloads = Workloads(scale="small")
    print(tables.table4(workloads).render())
    print(figures.figure1(workloads).render())

All experiments share the :class:`~repro.analysis.runner.Workloads`
cache, so each benchmark is emulated once per PE count and the cache
sweeps replay the captured trace.
"""

from repro.analysis import figures, tables
from repro.analysis.runner import (
    BenchmarkResult,
    Workloads,
    replay_trace,
    run_benchmark,
    unoptimized_config,
)

__all__ = [
    "BenchmarkResult",
    "Workloads",
    "figures",
    "replay_trace",
    "run_benchmark",
    "tables",
    "unoptimized_config",
]
