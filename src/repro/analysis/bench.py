"""Replay-throughput benchmark: ``python -m repro bench``.

Seeds the performance trajectory for the replay kernel.  Three workloads
bracket the design space:

``hot``
    The single-config replay microbenchmark: a hit-dominated mix of the
    ops the protocol actually sees (R with DW/ER/W, the paper's
    direct-write and exclusive-read included) over per-PE working sets
    sized to hit ~99% of the time — the regime the paper's benchmarks
    run in (their Table 2 hit ratios are 93-97%) and the regime the
    inlined hit paths in :mod:`repro.core.replay` target.
``random``
    A uniform random stream (~27% hit ratio): stresses the miss/bus
    path, where dispatch overhead is a small fraction of the work.
``tri``
    A real captured benchmark trace (full mode only; uses the
    :class:`~repro.analysis.runner.Workloads` disk cache, so only the
    first ever run pays for emulation).

Throughput is CPU time (``time.process_time``), best of N repeats, so
numbers are comparable on shared machines; the sweep section times wall
clock (``time.perf_counter``), because wall time is what
:class:`~repro.analysis.parallel.SweepPool` parallelism improves.  The
sweep timing holds a warm persistent pool per job count so pool
startup and per-worker trace loads stay out of the measurement (they
amortize across real sweep campaigns the same way), and records the
*effective* job count and pool kind so numbers stay comparable across
hosts.  On a host with a single usable CPU the serial/parallel
comparison is meaningless and is recorded as the explicit marker
``"parallel_speedup": "skipped"`` — the pooled path still runs once so
its bit-identity with serial stays checked.

The ``kernels`` section compares the interpreted dispatch-table replay
kernel against the generated (:mod:`repro.core.protocol.codegen`)
kernel on the hot workload, asserting bit-identical counters before
reporting the speedup.

Baselines were measured at the pre-rewrite commit (the growth seed) with
this same methodology, interleaved with the post-rewrite runs on one
host to cancel machine drift; they are rates, so they do not depend on
the exact reference counts used.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.replay import replay_interleaved
from repro.core.config import CacheConfig, SimulationConfig
from repro.core.replay import replay
from repro.core.stats import SystemStats
from repro.analysis.parallel import (
    SweepPool,
    default_jobs,
    run_clustered,
    run_sweep,
)
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.synthetic import generate_random_trace

logger = get_logger("analysis.bench")

#: refs/sec at the pre-rewrite baseline (if/elif dispatch, per-access
#: method calls), best-of-5 ``process_time`` medians from runs
#: interleaved with the rewritten code on the same host.
BASELINE_REFS_PER_SEC: Dict[str, float] = {
    "hot": 692_000.0,
    "random": 168_000.0,
    "tri": 595_000.0,
}

DEFAULT_OUTPUT = "BENCH_replay.json"


def hot_trace(
    n_refs: int = 400_000, n_pes: int = 8, seed: int = 3
) -> TraceBuffer:
    """The hit-dominated microbenchmark stream (deterministic)."""
    rng = random.Random(seed)
    buffer = TraceBuffer(n_pes=n_pes)
    base = 1 << 20
    ops = [Op.R] * 6 + [Op.DW] * 2 + [Op.ER, Op.W]
    areas = [Area.HEAP, Area.GOAL, Area.INSTRUCTION]
    mask = n_pes - 1
    for i in range(n_refs):
        pe = i & mask
        buffer.append(
            pe,
            ops[rng.randrange(10)],
            areas[rng.randrange(3)],
            base + (pe << 12) + rng.randrange(512),
        )
    return buffer


def measure_replay(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    repeats: int = 5,
    kernel: Optional[str] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> Tuple[float, SystemStats]:
    """Best-of-*repeats* replay throughput in refs per CPU-second.

    *kernel* pins the replay kernel (``"interpreted"``/``"generated"``)
    for the kernel-comparison section; ``None`` is the production
    ``"auto"`` selection.  ``mode="lazypim"`` measures the speculative
    batch-coherence engine instead of the per-access path.
    """
    best = float("inf")
    stats = None
    for _ in range(repeats):
        start = time.process_time()
        stats = replay(
            buffer,
            config,
            kernel=kernel,
            mode=mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        elapsed = time.process_time() - start
        best = min(best, elapsed)
    assert stats is not None
    return len(buffer) / best if best > 0 else float("inf"), stats


def sweep_configs(points: int = 4) -> List[SimulationConfig]:
    """A capacity sweep (doubling set counts), one config per point."""
    return [
        SimulationConfig(cache=CacheConfig(n_sets=64 << i))
        for i in range(points)
    ]


def _stats_key(stats: SystemStats):
    return (
        [list(row) for row in stats.refs],
        [list(row) for row in stats.hits],
        list(stats.pe_cycles),
        stats.bus_cycles_total,
    )


def time_sweep(
    buffer: TraceBuffer, configs: Sequence[SimulationConfig], jobs: int
) -> Tuple[float, List[SystemStats]]:
    """Wall-clock seconds for one full sweep at the given job count."""
    start = time.perf_counter()
    results = run_sweep(buffer, configs, jobs=jobs)
    return time.perf_counter() - start, results


def _time_pool_sweep(
    pool: SweepPool, configs: Sequence[SimulationConfig], repeats: int
) -> Tuple[float, List[SystemStats]]:
    """Best-of-*repeats* wall seconds for one sweep on a warm pool."""
    best = float("inf")
    results: List[SystemStats] = []
    for _ in range(repeats):
        start = time.perf_counter()
        results = pool.map(configs)
        best = min(best, time.perf_counter() - start)
    return best, results


def bench_sweep(
    buffer: TraceBuffer,
    configs: Sequence[SimulationConfig],
    jobs: int,
    repeats: int = 3,
) -> dict:
    """The sweep wall-time section: serial vs a warm persistent pool.

    Serial and pooled runs are both best-of-*repeats* on warm state
    (the pool is constructed and :meth:`~repro.analysis.parallel.
    SweepPool.warm`\\ ed before its timer starts), so the comparison
    measures sweep throughput, not pool startup.  One pooled job count
    per step from 2 up to the effective count is timed so the recorded
    series shows whether speedup is monotone in jobs on this host.

    ``jobs`` is clamped to the usable CPUs (``default_jobs``) and the
    point count; when that leaves fewer than 2, the serial/parallel
    comparison is recorded as ``"skipped"`` — but one pooled sweep
    still runs so the pooled path's bit-identity with serial is
    checked everywhere the bench runs.
    """
    configs = list(configs)
    host_usable = default_jobs()
    jobs_effective = max(1, min(jobs, host_usable, len(configs)))

    serial_best = float("inf")
    serial_results: List[SystemStats] = []
    for _ in range(repeats):
        start = time.perf_counter()
        serial_results = run_sweep(buffer, configs, jobs=1)
        serial_best = min(serial_best, time.perf_counter() - start)

    section: dict = {
        "points": len(configs),
        "refs": len(buffer),
        "pool": "persistent",
        "jobs_requested": jobs,
        "jobs": jobs_effective,
        "host_cpus_usable": host_usable,
        "repeats": repeats,
        "wall_seconds_serial": round(serial_best, 3),
    }

    def check_identity(results: List[SystemStats]) -> None:
        for serial, pooled in zip(serial_results, results):
            if _stats_key(serial) != _stats_key(pooled):
                raise AssertionError(
                    "parallel sweep diverged from serial results"
                )

    if jobs_effective < 2:
        with SweepPool(buffer, jobs=2) as pool:
            pool.warm()
            check_identity(pool.map(configs))
        section["wall_seconds_parallel"] = None
        section["parallel_speedup"] = "skipped"
        section["skip_reason"] = (
            "single usable CPU: a parallel sweep cannot beat serial here"
        )
        section["results_identical"] = True
        return section

    by_jobs: Dict[str, float] = {}
    parallel_best = float("inf")
    for job_count in range(2, jobs_effective + 1):
        with SweepPool(buffer, jobs=job_count) as pool:
            pool.warm()
            best, results = _time_pool_sweep(pool, configs, repeats)
        check_identity(results)
        by_jobs[str(job_count)] = round(best, 3)
        parallel_best = best
    section["wall_seconds_parallel"] = round(parallel_best, 3)
    section["wall_seconds_by_jobs"] = by_jobs
    section["parallel_speedup"] = (
        round(serial_best / parallel_best, 2) if parallel_best > 0 else None
    )
    section["results_identical"] = True
    return section


def bench_kernels(
    buffer: TraceBuffer,
    repeats: int = 3,
    config: Optional[SimulationConfig] = None,
) -> dict:
    """Interpreted vs generated replay kernel on the same trace.

    Counters are asserted bit-identical before any rate is reported —
    a fast kernel that disagrees with the reference interpretation is
    a bug, not a speedup.  When the generated kernel cannot run (no
    numpy), the section records ``"skipped"`` instead of a rate.
    """
    if config is None:
        config = SimulationConfig()
    interp_rate, interp_stats = measure_replay(
        buffer, config, repeats=repeats, kernel="interpreted"
    )
    section: dict = {
        "workload": "hot",
        "refs": len(buffer),
        "repeats": repeats,
        "protocol": config.protocol,
        "interconnect": config.interconnect,
        "interpreted_refs_per_sec": round(interp_rate),
    }
    try:
        generated_rate, generated_stats = measure_replay(
            buffer, config, repeats=repeats, kernel="generated"
        )
    except RuntimeError:
        section["generated_refs_per_sec"] = "skipped"
        section["skip_reason"] = "generated kernel unavailable (no numpy)"
        return section
    if interp_stats.as_dict() != generated_stats.as_dict():
        raise AssertionError(
            "generated kernel diverged from the interpreted reference"
        )
    section["generated_refs_per_sec"] = round(generated_rate)
    section["speedup"] = (
        round(generated_rate / interp_rate, 2) if interp_rate > 0 else None
    )
    section["results_identical"] = True
    return section


def bench_clustered(
    buffer: TraceBuffer,
    n_clusters: int = 2,
    jobs: Optional[int] = None,
    repeats: int = 3,
    interconnect: str = "bus",
) -> dict:
    """Clustered-replay throughput: interleaved serial vs per-cluster
    parallel.

    The serial side drives :class:`~repro.cluster.system.
    ClusteredSystem` one reference at a time in global trace order (the
    path an execution-driven run takes); the parallel side shards the
    trace per cluster and runs each shard through the inlined fast
    kernel, fanned out to the process pool when the host has the CPUs
    for it (``jobs=None`` uses one worker per CPU, capped at the
    cluster count — on a single-CPU host the shards run in-process,
    which is the same fast path minus the pool hand-off).  Both sides
    are timed wall-clock (parallelism is a wall-clock effect), with
    serial/parallel repeats interleaved so host drift cancels, and the
    merged counters are asserted identical before any rate is reported.
    """
    config = SimulationConfig(interconnect=interconnect).with_clusters(
        n_clusters
    )
    if jobs is None:
        jobs = min(n_clusters, default_jobs())

    serial_best = float("inf")
    parallel_best = float("inf")
    serial_result = None
    parallel_result = None
    for _ in range(repeats):
        start = time.perf_counter()
        serial_result = replay_interleaved(buffer, config)
        serial_best = min(serial_best, time.perf_counter() - start)
        start = time.perf_counter()
        parallel_result = run_clustered(buffer, config, jobs=jobs)
        parallel_best = min(parallel_best, time.perf_counter() - start)

    assert serial_result is not None and parallel_result is not None
    identical = serial_result.as_dict() == parallel_result.as_dict()
    if not identical:
        raise AssertionError(
            "per-cluster parallel replay diverged from interleaved serial"
        )
    refs = len(buffer)
    serial_rate = refs / serial_best if serial_best > 0 else float("inf")
    parallel_rate = refs / parallel_best if parallel_best > 0 else float("inf")
    network = parallel_result.network
    return {
        "clusters": n_clusters,
        "jobs": jobs,
        "refs": refs,
        "repeats": repeats,
        "refs_per_sec_serial": round(serial_rate),
        "refs_per_sec_parallel": round(parallel_rate),
        "parallel_speedup": round(parallel_rate / serial_rate, 2)
        if serial_rate > 0
        else None,
        "merge_deterministic": identical,
        "network_messages": network.messages,
        "network_stall_cycles": network.stall_cycles,
    }


def run_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    repeats: Optional[int] = None,
    recorded: Optional[dict] = None,
    overhead_bound: float = 0.95,
    clusters: int = 2,
    interconnect: str = "bus",
    mode: str = "pessimistic",
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> dict:
    """Run every benchmark section and return the report dict.

    *recorded* is a previously written report (typically the committed
    ``BENCH_replay.json``, measured before the observability layer
    existed): when given, the report grows a ``no_sink_overhead``
    section comparing today's refs/sec against the recorded rates —
    the probe layer promises zero cost while no sink is attached, and
    this is where that promise is checked (``repro bench
    --assert-overhead``).

    ``mode="lazypim"`` measures the per-workload throughput section
    through the speculative batch-coherence engine.  The kernel, sweep
    and cluster sections always run pessimistically (their identity
    cross-checks compare against paths speculation does not share), and
    the recorded-baseline / no-sink comparisons are suppressed — a
    speculative rate is not comparable with a per-access baseline.
    """
    if repeats is None:
        repeats = 3 if quick else 5
    if jobs is None:
        jobs = min(4, max(2, default_jobs()))

    workloads: Dict[str, TraceBuffer] = {
        "hot": hot_trace(200_000 if quick else 400_000),
        # Same size in both modes: the random stream's rate depends on
        # its cold-start fraction, so a shorter quick variant would not
        # be comparable with the recorded baseline rate.
        "random": generate_random_trace(200_000, n_pes=8, seed=42),
    }
    if not quick:
        from repro.analysis.runner import Workloads

        workloads["tri"] = Workloads(scale="small").trace("tri")

    base_config = SimulationConfig(interconnect=interconnect)
    bench_start = time.perf_counter()
    report: dict = {
        "benchmark": "replay",
        "quick": quick,
        "interconnect": interconnect,
        "mode": mode,
        "host_cpus": os.cpu_count() or 1,
        # Affinity-aware: what the sweep/cluster pools can actually use
        # (a cgroup-pinned container reports its quota here, not the
        # host's core count).
        "host_cpus_usable": default_jobs(),
        "repeats": repeats,
        "workloads": {},
    }
    for name, buffer in workloads.items():
        logger.info("measuring %s (%d refs, %d repeats)", name, len(buffer), repeats)
        rate, stats = measure_replay(
            buffer,
            base_config,
            repeats=repeats,
            mode=None if mode == "pessimistic" else mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        total = sum(sum(row) for row in stats.refs)
        hits = sum(sum(row) for row in stats.hits)
        # The recorded baselines were measured on the snooping bus with
        # per-access coherence; a directory run does strictly more
        # bookkeeping and a speculative run prices traffic differently,
        # so comparing against them would be noise dressed up as
        # regression.
        baseline = (
            BASELINE_REFS_PER_SEC.get(name)
            if interconnect == "bus" and mode == "pessimistic"
            else None
        )
        entry = {
            "protocol": base_config.protocol,
            "refs": len(buffer),
            "hit_ratio": round(hits / total, 4) if total else 0.0,
            "bus_cycles": stats.bus_cycles_total,
            "refs_per_sec": round(rate),
            "baseline_refs_per_sec": baseline,
            "speedup": round(rate / baseline, 2) if baseline else None,
        }
        if mode == "lazypim":
            entry["batch_commits"] = stats.batch_commits
            entry["batch_rollbacks"] = stats.batch_rollbacks
        report["workloads"][name] = entry

    logger.info("comparing replay kernels on the hot workload")
    report["kernels"] = bench_kernels(
        workloads["hot"], repeats=repeats, config=base_config
    )

    logger.info("timing the sweep (persistent pool, up to %d jobs)", jobs)
    report["sweep"] = bench_sweep(
        workloads["hot"], sweep_configs(), jobs=jobs,
        repeats=max(2, repeats - 2),
    )
    logger.info("measuring clustered replay (%d clusters)", clusters)
    report["cluster"] = bench_clustered(
        workloads["hot"], n_clusters=clusters, repeats=max(2, repeats - 2),
        interconnect=interconnect,
    )
    if recorded and mode == "pessimistic":
        report["no_sink_overhead"] = compare_no_sink_overhead(
            report, recorded, bound=overhead_bound
        )
    report["manifest"] = build_manifest(
        config=base_config,
        wall_seconds=round(time.perf_counter() - bench_start, 3),
        extra={"kind": "bench", "quick": quick, "repeats": repeats,
               "mode": mode},
    )
    return report


def compare_no_sink_overhead(
    report: dict, recorded: dict, bound: float = 0.95
) -> dict:
    """Compare fresh refs/sec against a previously recorded report.

    Returns per-workload ``{recorded, measured, ratio}`` over the
    workloads the two reports share, plus the worst ratio and whether
    it clears *bound* (the tentpole's "no-sink replay within ~5% of
    baseline" promise).  Rates are ratios of the same methodology, so
    host speed cancels only when both reports come from the same host —
    CI uses a looser bound for exactly that reason.
    """
    shared = {}
    for name, entry in report.get("workloads", {}).items():
        old = recorded.get("workloads", {}).get(name)
        if not old or not old.get("refs_per_sec"):
            continue
        ratio = entry["refs_per_sec"] / old["refs_per_sec"]
        shared[name] = {
            "recorded_refs_per_sec": old["refs_per_sec"],
            "measured_refs_per_sec": entry["refs_per_sec"],
            "ratio": round(ratio, 4),
        }
    min_ratio = min((w["ratio"] for w in shared.values()), default=None)
    return {
        "bound": bound,
        "workloads": shared,
        "min_ratio": min_ratio,
        "within_bound": (min_ratio is None) or min_ratio >= bound,
    }


def write_report(report: dict, path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_report(report: dict) -> str:
    lines = [
        f"replay benchmark ({'quick' if report['quick'] else 'full'}, "
        f"{report['host_cpus']} cpus, best of {report['repeats']})"
    ]
    for name, entry in report["workloads"].items():
        speedup = (
            f"  ({entry['speedup']:.2f}x vs baseline "
            f"{entry['baseline_refs_per_sec']:,.0f}/s)"
            if entry["speedup"]
            else ""
        )
        lines.append(
            f"  {name:>7}: {entry['refs_per_sec']:>10,} refs/sec, "
            f"hit ratio {entry['hit_ratio']:.4f}{speedup}"
        )
    kernels = report.get("kernels")
    if kernels:
        if kernels.get("generated_refs_per_sec") == "skipped":
            lines.append(
                f"  kernels: interpreted "
                f"{kernels['interpreted_refs_per_sec']:,} refs/sec; "
                f"generated skipped ({kernels.get('skip_reason', '')})"
            )
        else:
            lines.append(
                f"  kernels: interpreted "
                f"{kernels['interpreted_refs_per_sec']:,} refs/sec, "
                f"generated {kernels['generated_refs_per_sec']:,} refs/sec "
                f"({kernels['speedup']:.2f}x, results identical)"
            )
    sweep = report["sweep"]
    if sweep.get("parallel_speedup") == "skipped":
        lines.append(
            f"  sweep ({sweep['points']} points x {sweep['refs']:,} refs): "
            f"jobs=1 {sweep['wall_seconds_serial']:.2f}s; parallel timing "
            f"skipped ({sweep.get('skip_reason', 'single usable CPU')}; "
            f"pooled results still identical)"
        )
    else:
        lines.append(
            f"  sweep ({sweep['points']} points x {sweep['refs']:,} refs): "
            f"jobs=1 {sweep['wall_seconds_serial']:.2f}s, "
            f"jobs={sweep['jobs']} {sweep['wall_seconds_parallel']:.2f}s "
            f"({sweep['parallel_speedup']:.2f}x, {sweep['pool']} pool, "
            f"results identical)"
        )
    cluster = report.get("cluster")
    if cluster:
        lines.append(
            f"  clustered ({cluster['clusters']} clusters x "
            f"{cluster['refs']:,} refs): "
            f"serial {cluster['refs_per_sec_serial']:,} refs/sec, "
            f"parallel {cluster['refs_per_sec_parallel']:,} refs/sec "
            f"({cluster['parallel_speedup']:.2f}x, merge deterministic)"
        )
    overhead = report.get("no_sink_overhead")
    if overhead and overhead.get("min_ratio") is not None:
        verdict = "OK" if overhead["within_bound"] else "VIOLATED"
        lines.append(
            f"  no-sink overhead vs recorded report: worst ratio "
            f"{overhead['min_ratio']:.4f} "
            f"(bound {overhead['bound']:.2f}) {verdict}"
        )
    if report.get("host_cpus_usable", report["host_cpus"]) < 2:
        lines.append(
            "  note: single usable CPU; the parallel sweep cannot beat "
            "serial here"
        )
    return "\n".join(lines)
