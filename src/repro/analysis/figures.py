"""Regeneration of the paper's Figures 1-3 and the secondary sweeps.

Figures are returned as structured series (per-benchmark x/y points)
with a ``render()`` producing an ASCII table of the same data the
paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.formatting import format_table
from repro.analysis.runner import Workloads
from repro.analysis.tables import BENCH_ORDER
from repro.core.config import (
    BusConfig,
    CacheConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.trace.events import Area


@dataclass
class Sweep:
    """One parameter sweep: per-benchmark series over an x-axis."""

    title: str
    x_label: str
    x_values: List[object]
    #: metric name -> benchmark -> series (one value per x).
    series: Dict[str, Dict[str, List[float]]]

    def render(self) -> str:
        parts = []
        for metric, per_bench in self.series.items():
            rows = [
                [bench] + [_fmt(v) for v in values]
                for bench, values in per_bench.items()
            ]
            parts.append(
                format_table(
                    (f"{metric} \\ {self.x_label}", *map(str, self.x_values)),
                    rows,
                    title=f"{self.title} — {metric}",
                )
            )
        return "\n\n".join(parts)


def _fmt(value: float) -> str:
    if isinstance(value, float) and value < 1:
        return f"{value:.4f}"
    if isinstance(value, float):
        return f"{value:,.0f}"
    return str(value)


def figure1(
    workloads: Workloads, block_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16)
) -> Sweep:
    """Figure 1: cache block size vs miss ratio and bus traffic.

    Four-Kword, four-way caches with all optimized commands.  The paper's
    shape: miss ratio falls steadily with block size, but bus traffic is
    flat between two- and four-word blocks and *rises* above four words
    (logic programs lack the spatial locality to amortize long blocks).
    """
    miss: Dict[str, List[float]] = {}
    bus: Dict[str, List[float]] = {}
    for name in BENCH_ORDER:
        miss[name] = []
        bus[name] = []
        for block_words in block_sizes:
            cache = CacheConfig.from_capacity(
                4096, block_words=block_words, associativity=4
            )
            stats = workloads.replay(name, SimulationConfig(cache=cache))
            miss[name].append(stats.miss_ratio)
            bus[name].append(float(stats.bus_cycles_total))
    return Sweep(
        title="Figure 1: Cache Block Size vs Miss Ratio and Bus Traffic",
        x_label="block words",
        x_values=list(block_sizes),
        series={"miss ratio": miss, "bus cycles": bus},
    )


def figure2(
    workloads: Workloads,
    capacities: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192, 16384),
) -> Sweep:
    """Figure 2: cache capacity vs miss ratio and bus traffic
    (four-word blocks, four-way, all optimized commands).  The x-axis in
    the paper is total bits (directory + 5-byte data words); the
    structured result carries both."""
    miss: Dict[str, List[float]] = {}
    bus: Dict[str, List[float]] = {}
    bits: List[int] = []
    for capacity in capacities:
        bits.append(CacheConfig.from_capacity(capacity).total_bits)
    for name in BENCH_ORDER:
        miss[name] = []
        bus[name] = []
        for capacity in capacities:
            cache = CacheConfig.from_capacity(capacity)
            stats = workloads.replay(name, SimulationConfig(cache=cache))
            miss[name].append(stats.miss_ratio)
            bus[name].append(float(stats.bus_cycles_total))
    sweep = Sweep(
        title="Figure 2: Cache Capacity vs Miss Ratio and Bus Traffic",
        x_label="capacity (words)",
        x_values=list(capacities),
        series={"miss ratio": miss, "bus cycles": bus},
    )
    sweep.total_bits = bits  # type: ignore[attr-defined]
    return sweep


def figure3(
    workloads: Workloads, pe_counts: Tuple[int, ...] = (1, 2, 4, 8)
) -> Sweep:
    """Figure 3: number of PEs vs bus traffic, plus the per-area share
    shift (the paper: communication grows from ~0 to a dominant share
    while the heap's share falls as PEs are added)."""
    bus: Dict[str, List[float]] = {}
    comm_share: Dict[str, List[float]] = {}
    heap_share: Dict[str, List[float]] = {}
    for name in BENCH_ORDER:
        bus[name] = []
        comm_share[name] = []
        heap_share[name] = []
        for n_pes in pe_counts:
            stats = workloads.result(name, n_pes).stats
            assert stats is not None
            bus[name].append(float(stats.bus_cycles_total))
            shares = stats.area_bus_percentages()
            comm_share[name].append(shares[Area.COMMUNICATION])
            heap_share[name].append(shares[Area.HEAP])
    return Sweep(
        title="Figure 3: Number of PEs vs Bus Traffic",
        x_label="PEs",
        x_values=list(pe_counts),
        series={
            "bus cycles": bus,
            "comm % of bus": comm_share,
            "heap % of bus": heap_share,
        },
    )


def associativity_sweep(
    workloads: Workloads, ways: Tuple[int, ...] = (1, 2, 4, 8)
) -> Sweep:
    """Section 4.3's note: two-way caches produce more bus traffic than
    four-way; direct-mapped significantly more."""
    bus: Dict[str, List[float]] = {}
    relative: Dict[str, List[float]] = {}
    for name in BENCH_ORDER:
        bus[name] = []
        for associativity in ways:
            cache = CacheConfig.from_capacity(4096, associativity=associativity)
            stats = workloads.replay(name, SimulationConfig(cache=cache))
            bus[name].append(float(stats.bus_cycles_total))
        base = bus[name][ways.index(4)]
        relative[name] = [cycles / base for cycles in bus[name]]
    return Sweep(
        title="Associativity vs Bus Traffic (4 Kword cache)",
        x_label="ways",
        x_values=list(ways),
        series={"bus cycles": bus, "relative to 4-way": relative},
    )


def bus_width_study(workloads: Workloads) -> Sweep:
    """Section 4.4: a two-word bus reduces traffic to 62-75 % of the
    one-word bus (insensitive to benchmark)."""
    ratio: Dict[str, List[float]] = {}
    for name in BENCH_ORDER:
        narrow = workloads.replay(
            name, SimulationConfig(bus=BusConfig(width_words=1))
        ).bus_cycles_total
        wide = workloads.replay(
            name, SimulationConfig(bus=BusConfig(width_words=2))
        ).bus_cycles_total
        ratio[name] = [float(narrow), float(wide), wide / narrow]
    return Sweep(
        title="Two-word Bus vs One-word Bus",
        x_label="measure",
        x_values=["1-word cycles", "2-word cycles", "ratio"],
        series={"bus": ratio},
    )


@dataclass
class OptimizationDetail:
    """Section 4.6's per-mechanism effects."""

    #: benchmark -> heap swap-ins with DW relative to without.
    heap_swap_in_ratio: Dict[str, float]
    #: benchmark -> swap-outs with goal commands relative to without.
    goal_swap_out_ratio: Dict[str, float]
    #: benchmark -> invalidate bus commands with comm RI relative to without.
    comm_invalidate_ratio: Dict[str, float]

    def render(self) -> str:
        rows = [
            [
                name,
                f"{self.heap_swap_in_ratio[name]:.2f}",
                f"{self.goal_swap_out_ratio[name]:.2f}",
                f"{self.comm_invalidate_ratio[name]:.2f}",
            ]
            for name in self.heap_swap_in_ratio
        ]
        return format_table(
            ("benchmark", "heap swap-in (DW)", "swap-out (Goal)", "I cmds (RI)"),
            rows,
            title="Section 4.6: per-mechanism effect (ratio vs mechanism off)",
        )


def optimization_details(workloads: Workloads) -> OptimizationDetail:
    """Quantify each mechanism in isolation, as Section 4.6 does:
    DW's swap-in reduction, the goal commands' swap-out reduction, and
    RI's invalidate-command avoidance."""
    from repro.core.states import BusCommand

    heap_ratio, goal_ratio, comm_ratio = {}, {}, {}
    for name in BENCH_ORDER:
        none = workloads.replay(
            name, SimulationConfig(opts=OptimizationConfig.none())
        )
        heap = workloads.replay(
            name, SimulationConfig(opts=OptimizationConfig.heap_only())
        )
        goal = workloads.replay(
            name, SimulationConfig(opts=OptimizationConfig.goal_only())
        )
        comm = workloads.replay(
            name, SimulationConfig(opts=OptimizationConfig.comm_only())
        )
        heap_ratio[name] = heap.swap_ins / max(none.swap_ins, 1)
        goal_ratio[name] = goal.swap_outs / max(none.swap_outs, 1)
        comm_ratio[name] = comm.command_counts[BusCommand.I] / max(
            none.command_counts[BusCommand.I], 1
        )
    return OptimizationDetail(heap_ratio, goal_ratio, comm_ratio)
