"""Plain-text rendering helpers for tables and figure series."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_cell(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_millions(value: int) -> str:
    """Render a count in millions with one decimal (the paper's "13.0M")."""
    return f"{value / 1e6:.1f}M"


def format_ratio(value: float) -> str:
    return f"{value:.3f}"
