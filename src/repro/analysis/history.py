"""Bench-history regression tracking: ``repro bench --compare``.

A single ``BENCH_replay.json`` says how fast replay is *now*; catching
a regression needs *then*.  ``repro bench`` appends one schema-validated
record per run to a JSONL history file (:data:`DEFAULT_HISTORY`), each
carrying a host fingerprint, the git SHA, and the per-section rates
pulled out of the report — and ``--compare`` diffs a fresh run against
the same-host history before appending it.

The comparison is noise-aware.  Benchmarks on shared machines jitter;
a fixed percentage threshold either cries wolf on a noisy host or
sleeps through real regressions on a quiet one.  Instead the threshold
per section is ``clamp(3 x relative MAD of the same-host history,``
:data:`MIN_THRESHOLD`\\ ``,`` :data:`MAX_THRESHOLD`\\ ``)`` against the
same-host **median**: three median-absolute-deviations is the robust
analogue of a 3-sigma band, the floor keeps a short (even single-entry,
MAD = 0) history from flagging sub-percent jitter while still catching
a >=20% drop, and the ceiling keeps a wildly noisy history from
excusing anything.  Records from *other* hosts are ignored — rates are
only comparable on the machine that produced them.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.log import get_logger
from repro.obs.manifest import git_sha
from repro.obs.schema import (
    BENCH_HISTORY_SCHEMA,
    SchemaError,
    validate_bench_history,
)

logger = get_logger("analysis.history")

#: Default history file, next to ``BENCH_replay.json`` at the repo root.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Regression threshold floor: never flag a drop smaller than this.
MIN_THRESHOLD = 0.08

#: Regression threshold ceiling: flag a drop this big however noisy
#: the history is.
MAX_THRESHOLD = 0.18

#: MAD multiplier (the robust analogue of a 3-sigma band).
MAD_FACTOR = 3.0


def host_fingerprint() -> dict:
    """Identify the measuring host: names, arch, CPU count, and a hash.

    Same-host history selection keys on the ``fingerprint`` digest, so
    the inputs are things that change when rates stop being comparable
    — a different machine, architecture, or CPU allocation — and not
    things that drift between runs on one box (load, uptime, pids).
    """
    info = {
        "hostname": platform.node() or "unknown",
        "machine": platform.machine() or "unknown",
        "cpus": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")
    ).hexdigest()
    info["fingerprint"] = digest[:16]
    return info


def _report_sections(report: dict) -> Dict[str, float]:
    """Flatten a bench report's comparable rates into named sections.

    Only positive numeric rates survive — ``"skipped"`` markers and
    nulls (single-CPU hosts, missing numpy) drop out, so a record never
    claims a rate the host could not measure.
    """
    sections: Dict[str, float] = {}

    def keep(name: str, value) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if value > 0:
                sections[name] = value

    for workload, entry in report.get("workloads", {}).items():
        keep(f"workload.{workload}.refs_per_sec", entry.get("refs_per_sec"))
    kernels = report.get("kernels") or {}
    keep("kernels.interpreted_refs_per_sec",
         kernels.get("interpreted_refs_per_sec"))
    keep("kernels.generated_refs_per_sec",
         kernels.get("generated_refs_per_sec"))
    sweep = report.get("sweep") or {}
    keep("sweep.parallel_speedup", sweep.get("parallel_speedup"))
    cluster = report.get("cluster") or {}
    keep("cluster.refs_per_sec_serial", cluster.get("refs_per_sec_serial"))
    keep("cluster.refs_per_sec_parallel", cluster.get("refs_per_sec_parallel"))
    return sections


def history_record(report: dict) -> dict:
    """One appendable history record distilled from a bench report."""
    sections = _report_sections(report)
    if not sections:
        raise ValueError("bench report has no comparable rate sections")
    record = {
        "schema": BENCH_HISTORY_SCHEMA,
        "created_unix": round(time.time(), 3),
        "host": host_fingerprint(),
        "git_sha": git_sha(),
        "quick": bool(report.get("quick", False)),
        "repeats": int(report.get("repeats", 0)) or 1,
        "sections": sections,
    }
    return validate_bench_history(record)


def append_history(
    record: dict, path: Union[str, Path] = DEFAULT_HISTORY
) -> Path:
    """Validate and append one record to the history file."""
    validate_bench_history(record)
    path = Path(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: Union[str, Path] = DEFAULT_HISTORY) -> List[dict]:
    """Every validated record in the history file (empty when absent)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SchemaError(
                    f"{path}:{number}: invalid JSON ({error})"
                ) from error
            try:
                validate_bench_history(record)
            except SchemaError as error:
                raise SchemaError(f"{path}:{number}: {error}") from error
            records.append(record)
    return records


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def section_threshold(values: List[float]) -> float:
    """The noise-aware drop threshold for one section's history."""
    if not values:
        return MIN_THRESHOLD
    median = _median(values)
    if median <= 0:
        return MIN_THRESHOLD
    mad = _median([abs(value - median) for value in values])
    return min(max(MAD_FACTOR * mad / median, MIN_THRESHOLD), MAX_THRESHOLD)


def compare_to_history(
    record: dict,
    history: List[dict],
    quick: Optional[bool] = None,
) -> dict:
    """Diff one fresh record against the same-host history.

    Returns a JSON-ready verdict: per-section ``{measured, baseline,
    ratio, threshold, regressed}`` plus the overall ``regressed`` flag
    (any section below ``baseline * (1 - threshold)``).  Sections with
    no same-host history — a new section, a new machine — compare
    against nothing and never regress.  *quick* restricts the baseline
    to records with a matching quick flag (quick and full runs use
    different trace sizes, so their rates are not interchangeable);
    ``None`` uses the fresh record's own flag.
    """
    fingerprint = record["host"]["fingerprint"]
    if quick is None:
        quick = record.get("quick", False)
    prior = [
        r
        for r in history
        if r["host"]["fingerprint"] == fingerprint
        and r.get("quick", False) == quick
    ]
    sections: Dict[str, dict] = {}
    regressed = False
    for name, measured in record["sections"].items():
        values = [
            r["sections"][name] for r in prior if name in r.get("sections", {})
        ]
        if not values:
            sections[name] = {
                "measured": measured,
                "baseline": None,
                "ratio": None,
                "threshold": None,
                "regressed": False,
            }
            continue
        baseline = _median(values)
        threshold = section_threshold(values)
        ratio = measured / baseline if baseline > 0 else None
        section_regressed = (
            ratio is not None and ratio < 1.0 - threshold
        )
        if section_regressed:
            regressed = True
            logger.warning(
                "bench regression in %s: %.0f vs baseline %.0f "
                "(ratio %.4f < 1 - %.2f)",
                name, measured, baseline, ratio, threshold,
            )
        sections[name] = {
            "measured": measured,
            "baseline": round(baseline, 2),
            "ratio": round(ratio, 4) if ratio is not None else None,
            "threshold": round(threshold, 4),
            "regressed": section_regressed,
        }
    return {
        "host_fingerprint": fingerprint,
        "quick": quick,
        "baseline_records": len(prior),
        "sections": sections,
        "regressed": regressed,
    }


def format_comparison(comparison: dict) -> str:
    """Human-readable ``repro bench --compare`` verdict."""
    count = comparison["baseline_records"]
    lines = [
        f"bench history: {count} same-host baseline record"
        f"{'s' if count != 1 else ''} "
        f"(host {comparison['host_fingerprint']}, "
        f"{'quick' if comparison['quick'] else 'full'})"
    ]
    for name, entry in sorted(comparison["sections"].items()):
        if entry["baseline"] is None:
            lines.append(f"  {name}: {entry['measured']:,.0f} (no baseline yet)")
            continue
        verdict = "REGRESSED" if entry["regressed"] else "ok"
        lines.append(
            f"  {name}: {entry['measured']:,.0f} vs median "
            f"{entry['baseline']:,.0f} (ratio {entry['ratio']:.4f}, "
            f"threshold -{entry['threshold'] * 100:.0f}%) {verdict}"
        )
    lines.append(
        "verdict: REGRESSED" if comparison["regressed"] else "verdict: clean"
    )
    return "\n".join(lines)
