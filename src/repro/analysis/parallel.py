"""Parallel parameter sweeps over a shared reference trace.

A sweep replays one captured trace against many cache configurations
(Tables 2-5 and every figure do exactly this).  Each replay is
independent, so the points fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

The trace is the bulky part — hundreds of thousands of references — so
it is shipped to the workers once, through the
:mod:`repro.trace.io` file format, instead of being pickled into every
task: the pool initializer loads the file into a module global and each
task carries only its :class:`~repro.core.config.SimulationConfig`.
This works under both the ``fork`` and ``spawn`` start methods.

Callers that sweep repeatedly (the benchmark harness, figure scripts
iterating on a parameter grid) should hold a :class:`SweepPool` open:
the worker processes — and the per-worker trace load — are paid for
once at pool construction and amortized over every subsequent
:meth:`SweepPool.map`.  A bare :func:`run_sweep` call builds and tears
down a pool internally, which is convenient for one-shot sweeps but
was mistaken for free by the benchmark: pool startup dominated the
sweep itself and ``parallel_speedup`` came out below 1.

Results are plain :class:`~repro.core.stats.SystemStats` objects (they
pickle cleanly) in the same order as the configurations passed in, and
are bit-identical to a serial :func:`~repro.core.replay.replay_many` —
replay is deterministic given (trace, config).
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.cluster.replay import replay_shard, split_trace
from repro.cluster.system import ClusterStats
from repro.core.config import SimulationConfig
from repro.core.replay import replay
from repro.core.stats import SystemStats
from repro.core.system import PIMCacheSystem
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest, config_fingerprint
from repro.obs.telemetry import (
    DEFAULT_CHUNK_REFS,
    DEFAULT_INTERVAL_SECONDS,
    SweepTelemetry,
    heartbeat,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.io import read_trace, write_trace

logger = get_logger("analysis.parallel")

#: Trace loaded once per worker process by :func:`_init_worker`.
_worker_trace: Optional[TraceBuffer] = None

#: Heartbeat queue handed to workers by :func:`_init_worker` (None when
#: the sweep runs without telemetry — the zero-overhead default).
_worker_queue = None
_worker_chunk: int = DEFAULT_CHUNK_REFS
_worker_interval: float = DEFAULT_INTERVAL_SECONDS
_worker_points_done: int = 0
#: Replay-kernel selection pinned at pool construction and shipped to
#: every worker through the initializer.  Workers must NOT read
#: ``REPRO_REPLAY_KERNEL`` themselves: a pool respawned after a
#: :class:`SweepWorkerError` can start its workers in an environment
#: that has changed since the original pool was built, and sweep
#: results have to be a pure function of the pool's construction.
_worker_kernel: Optional[str] = None


def _init_worker(
    trace_path: str,
    queue=None,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    kernel: Optional[str] = None,
) -> None:
    global _worker_trace, _worker_queue, _worker_chunk, _worker_interval
    global _worker_kernel
    _worker_trace = read_trace(trace_path)
    _worker_queue = queue
    _worker_chunk = chunk_refs
    _worker_interval = interval_seconds
    _worker_kernel = kernel


def _replay_one(config: SimulationConfig) -> SystemStats:
    assert _worker_trace is not None, "worker initializer did not run"
    return replay(_worker_trace, config, kernel=_worker_kernel or "auto")


def _put_heartbeat(record: dict) -> None:
    """Ship one heartbeat; telemetry loss must never kill a sweep."""
    queue = _worker_queue
    if queue is None:
        return
    try:
        queue.put(record)
    except (OSError, EOFError, BrokenPipeError):  # collector went away
        pass


def _replay_point(
    trace: TraceBuffer, config: SimulationConfig, point: int
) -> SystemStats:
    """Replay one sweep point in telemetry-sized chunks.

    Identical counters to a single :func:`~repro.core.replay.replay`
    call — every deferred kernel fold settles per call, and the system
    carries all state across segments (the same mechanism as the
    windowed kernel tier, which the tests assert).  Between chunks the
    worker emits a heartbeat when :data:`_worker_interval` has elapsed,
    plus a final ``done`` record when the point completes.
    """
    global _worker_points_done
    kernel = _worker_kernel or "auto"
    if _worker_queue is None:
        return replay(trace, config, kernel=kernel)
    worker = os.getpid()
    system = PIMCacheSystem(config, trace.n_pes)
    stats = system.stats
    total = len(trace)
    seq = 0
    mark_time = time.perf_counter()
    mark_done = 0
    mark_refs = 0
    mark_hits = 0
    done = 0
    for start in range(0, total, _worker_chunk):
        done = min(start + _worker_chunk, total)
        replay(trace.slice(start, done), system=system, kernel=kernel)
        now = time.perf_counter()
        if now - mark_time < _worker_interval and done < total:
            continue
        refs_now = sum(sum(row) for row in stats.refs)
        hits_now = sum(sum(row) for row in stats.hits)
        delta_refs = refs_now - mark_refs
        delta_hits = hits_now - mark_hits
        _put_heartbeat(
            heartbeat(
                worker=worker,
                seq=seq,
                point=point,
                points_done=_worker_points_done,
                refs_done=done,
                refs_total=total,
                refs_per_sec=(done - mark_done) / max(now - mark_time, 1e-9),
                miss_ratio=(
                    (delta_refs - delta_hits) / delta_refs if delta_refs else 0.0
                ),
                done=done >= total,
            )
        )
        seq += 1
        mark_time, mark_done = now, done
        mark_refs, mark_hits = refs_now, hits_now
    if total == 0:
        _put_heartbeat(
            heartbeat(worker, 0, point, _worker_points_done, 0, 0, 0.0, 0.0,
                      done=True)
        )
    _worker_points_done += 1
    return stats


def _replay_one_indexed(task) -> SystemStats:
    """Pool task: ``(point_index, config)`` with heartbeat streaming."""
    index, config = task
    assert _worker_trace is not None, "worker initializer did not run"
    return _replay_point(_worker_trace, config, index)


def _warm_task(_index: int) -> int:
    """No-op pool task: proves a worker is up with its trace loaded."""
    assert _worker_trace is not None, "worker initializer did not run"
    return len(_worker_trace)


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: one per *usable* CPU.

    ``os.sched_getaffinity`` sees cgroup/taskset restrictions, so a
    container pinned to one core gets 1 here even when the host machine
    has more — ``os.cpu_count`` reports the host and oversubscribes.
    Platforms without affinity support fall back to ``os.cpu_count``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class SweepWorkerError(RuntimeError):
    """A sweep worker died mid-task (OOM-kill, SIGKILL, segfault).

    The executor's own :class:`BrokenProcessPool` says only that *some*
    process vanished; this wraps it with what the caller needs to act —
    how many configs were in flight, and that the pool has already
    respawned its workers (:meth:`SweepPool.respawn`) so a retried
    :meth:`SweepPool.map` runs with the construction-time kernel
    selection and is bit-identical to an undisturbed sweep.
    Sweeps that must survive worker death mid-*point* belong on the
    checkpointing job service (``repro serve``), which retries from the
    last checkpoint; this error's message points there.
    """

    def __init__(self, jobs: int, n_configs: int):
        super().__init__(
            f"a sweep worker process died while mapping {n_configs} "
            f"config(s) over {jobs} worker(s); the pool has respawned "
            "its workers, so the map may be retried. For runs that "
            "should survive worker death mid-point, submit through the "
            "checkpointing job service (repro serve) instead."
        )
        self.jobs = jobs
        self.n_configs = n_configs


class SweepPool:
    """A persistent worker pool serving many sweeps over one trace.

    The expensive parts of a parallel sweep — spawning worker
    processes and loading the trace into each — happen once, at
    construction, and amortize over every :meth:`map` call::

        with SweepPool(trace, jobs=4) as pool:
            pool.warm()                 # spawn + load now, not mid-timing
            for grid in parameter_grids:
                results = pool.map(grid)

    ``jobs<=1`` degrades to a poolless serial mode (``kind ==
    "serial"``): the trace is loaded in-process once and :meth:`map`
    replays directly, so callers need no special casing on single-CPU
    hosts.  Results always come back in input order and are
    bit-identical to serial replay (replay is deterministic given
    (trace, config)).

    The pool owns its temp trace file (when constructed from an
    in-memory buffer) and its workers; use it as a context manager or
    call :meth:`close`.
    """

    def __init__(
        self,
        trace: Union[TraceBuffer, str, Path],
        jobs: Optional[int] = None,
        telemetry: Optional[SweepTelemetry] = None,
        kernel: Optional[str] = None,
    ):
        if jobs is None:
            jobs = default_jobs()
        self.jobs = max(1, jobs)
        self.telemetry = telemetry
        # Pin the replay-kernel selection now: workers (original AND
        # respawned — see :meth:`respawn`) get it through the pool
        # initializer instead of reading ``REPRO_REPLAY_KERNEL`` from
        # whatever environment they happen to start in later.
        self.kernel = (
            kernel
            if kernel is not None
            else os.environ.get("REPRO_REPLAY_KERNEL")
        )
        self._tmp_path: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._trace: Optional[TraceBuffer] = None
        self._initargs: Optional[tuple] = None
        if self.jobs <= 1:
            self._trace = (
                read_trace(trace) if isinstance(trace, (str, Path)) else trace
            )
            return
        if isinstance(trace, (str, Path)):
            trace_path = str(trace)
        else:
            fd, self._tmp_path = tempfile.mkstemp(
                suffix=".trace", prefix="repro-sweep-"
            )
            os.close(fd)
            write_trace(trace, self._tmp_path)
            trace_path = self._tmp_path
        if telemetry is not None:
            # A Manager queue proxy pickles into initargs under both
            # fork and spawn, unlike a bare multiprocessing.Queue.
            self._initargs = (
                trace_path,
                telemetry.queue,
                telemetry.chunk_refs,
                telemetry.interval_seconds,
                self.kernel,
            )
        else:
            self._initargs = (
                trace_path,
                None,
                DEFAULT_CHUNK_REFS,
                DEFAULT_INTERVAL_SECONDS,
                self.kernel,
            )
        self._pool = self._spawn_pool()

    def _spawn_pool(self) -> ProcessPoolExecutor:
        assert self._initargs is not None
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_worker,
            initargs=self._initargs,
        )

    def respawn(self) -> None:
        """Rebuild the worker processes after a :class:`SweepWorkerError`.

        The replacement workers initialize from the pool's
        construction-time state — same trace file, same telemetry
        queue, same pinned kernel selection — so a retried
        :meth:`map` is bit-identical to what the dead pool would have
        produced.  (Reading ``REPRO_REPLAY_KERNEL`` at respawn time
        instead used to let an environment change between the original
        spawn and the retry silently switch kernels mid-sweep.)
        Serial pools have no workers and need no respawn.
        """
        if self._initargs is None:
            return
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._spawn_pool()

    @property
    def kind(self) -> str:
        """``"persistent"`` when backed by worker processes, else
        ``"serial"`` (the ``jobs<=1`` in-process mode)."""
        return "persistent" if self._pool is not None else "serial"

    def warm(self) -> None:
        """Spawn every worker and block until each has its trace loaded.

        The executor spawns workers lazily, one per submitted task, so
        without this the first :meth:`map` pays the startup cost.
        Submitting ``jobs`` tasks forces the full spawn (each submit
        grows the pool while it is below ``max_workers``); waiting on
        them proves every initializer ran.  Serial pools are warm by
        construction.
        """
        if self._pool is not None:
            futures = [
                self._pool.submit(_warm_task, index)
                for index in range(self.jobs)
            ]
            for future in futures:
                future.result()

    def map(self, configs: Sequence[SimulationConfig]) -> List[SystemStats]:
        """Replay the pool's trace against every config, in input order."""
        configs = list(configs)
        if self._pool is not None:
            try:
                if self.telemetry is not None:
                    return list(
                        self._pool.map(_replay_one_indexed, enumerate(configs))
                    )
                return list(self._pool.map(_replay_one, configs))
            except BrokenProcessPool as error:
                # Replace the dead workers before surfacing the error:
                # a caller that catches SweepWorkerError and retries
                # map() gets a working pool with the construction-time
                # kernel selection, not a stale broken executor.
                self.respawn()
                raise SweepWorkerError(self.jobs, len(configs)) from error
        assert self._trace is not None
        kernel = self.kernel or "auto"
        if self.telemetry is None:
            return [
                replay(self._trace, config, kernel=kernel)
                for config in configs
            ]
        # Serial mode streams heartbeats too — same records, emitted
        # from the parent process itself through the module globals.
        global _worker_queue, _worker_chunk, _worker_interval, _worker_kernel
        _worker_queue = self.telemetry.queue
        _worker_chunk = self.telemetry.chunk_refs
        _worker_interval = self.telemetry.interval_seconds
        _worker_kernel = self.kernel
        try:
            return [
                _replay_point(self._trace, config, index)
                for index, config in enumerate(configs)
            ]
        finally:
            _worker_queue = None
            _worker_kernel = None

    def close(self) -> None:
        """Shut the workers down and delete the pool's temp trace file."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._tmp_path is not None:
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass
            self._tmp_path = None
        self._trace = None

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_sweep(
    trace: Union[TraceBuffer, str, Path],
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
    pool: Optional[SweepPool] = None,
    telemetry: Optional[SweepTelemetry] = None,
) -> List[SystemStats]:
    """Replay *trace* against every config, farming points out to *jobs*
    worker processes.

    *trace* may be an in-memory :class:`TraceBuffer` (written to a
    temporary file for shipment) or a path to an already-written trace
    file (e.g. straight out of the :class:`~repro.analysis.runner.
    Workloads` disk cache, skipping the extra write).

    ``jobs=None`` uses one worker per usable CPU; ``jobs<=1`` (or a
    single config) runs serially in-process with no pool at all.
    Results come back in input order and match a serial run bit for
    bit.

    Passing an open :class:`SweepPool` as *pool* serves the sweep from
    its already-warm workers (*trace*, *jobs* and *telemetry* are
    ignored — the pool fixed them at construction).  Without one, a
    pool is built and torn down for this call alone; callers sweeping
    repeatedly should hold their own.

    *telemetry* (a :class:`~repro.obs.telemetry.SweepTelemetry`) makes
    each worker stream heartbeat/progress records while it replays;
    without it workers replay through the unchunked fast path.
    """
    configs = list(configs)
    if pool is not None:
        return pool.map(configs)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, len(configs)) if configs else 1
    logger.info("sweeping %d configs across %d workers", len(configs), jobs)
    if jobs <= 1 and telemetry is None:
        if isinstance(trace, (str, Path)):
            trace = read_trace(trace)
        return [replay(trace, config) for config in configs]
    with SweepPool(trace, jobs=jobs, telemetry=telemetry) as sweep_pool:
        return sweep_pool.map(configs)


def run_sweep_report(
    trace: Union[TraceBuffer, str, Path],
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
    trace_cache_key: Optional[str] = None,
    telemetry: Optional[SweepTelemetry] = None,
) -> dict:
    """:func:`run_sweep` plus provenance: a JSON-ready report.

    Each sweep point carries its own config fingerprint (so a point can
    be matched back to its configuration from the report alone) and the
    report as a whole carries a ``repro.obs/manifest/v1`` manifest
    keyed on the *first* configuration — the sweep's baseline.  When
    the sweep streamed *telemetry*, the fleet summary (heartbeat count,
    points completed, stall episodes) lands in the manifest extra.

    An empty config list yields a well-formed empty report: zero
    points, a schema-valid manifest with a null config (there is no
    baseline to key on), and a real wall time.
    """
    configs = list(configs)
    start = time.perf_counter()
    results = (
        run_sweep(trace, configs, jobs=jobs, telemetry=telemetry)
        if configs
        else []
    )
    wall = time.perf_counter() - start
    extra = {"kind": "sweep", "n_points": len(configs)}
    if telemetry is not None:
        extra["telemetry"] = telemetry.summary()
    manifest = build_manifest(
        config=configs[0] if configs else None,
        trace_cache_key=trace_cache_key,
        wall_seconds=round(wall, 3),
        extra=extra,
    )
    return {
        "manifest": manifest,
        "wall_seconds": round(wall, 3),
        "points": [
            {
                "config_hash": config_fingerprint(config),
                "stats": stats.as_dict(),
            }
            for config, stats in zip(configs, results)
        ],
    }


def _replay_cluster_task(task):
    """Pool task: replay one cluster's shard."""
    shard, config, pes_per_cluster, cluster_index, kernel = task
    return replay_shard(
        shard, config, pes_per_cluster, cluster_index, kernel=kernel
    )


def run_clustered(
    trace: Union[TraceBuffer, str, Path],
    config: SimulationConfig,
    n_pes: Optional[int] = None,
    jobs: Optional[int] = None,
) -> ClusterStats:
    """Clustered replay with per-cluster shards fanned out to the pool.

    The trace splits into one shard per cluster
    (:func:`repro.cluster.replay.split_trace`); each shard replays
    through the inlined fast kernel in its own worker process.  The
    merge is deterministic by construction: clusters share no state, so
    each shard's result is a pure function of (shard, config,
    cluster index), and results are folded in cluster-index order
    (:meth:`~concurrent.futures.Executor.map` preserves input order)
    regardless of which worker finished first.  ``jobs<=1`` (or a
    single cluster) replays the shards serially in-process —
    bit-identical to the pooled run, which the determinism tests
    assert.
    """
    if isinstance(trace, (str, Path)):
        trace = read_trace(trace)
    pes = n_pes if n_pes is not None else trace.n_pes
    n_clusters = config.cluster.n_clusters
    shards = split_trace(trace, pes, n_clusters)
    pes_per_cluster = pes // n_clusters
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, n_clusters)
    logger.info(
        "clustered replay: %d clusters across %d workers", n_clusters, jobs
    )
    # Resolve the kernel selection in the parent, exactly once: worker
    # processes must not consult their own environment (same rule as
    # :class:`SweepPool`).
    kernel = os.environ.get("REPRO_REPLAY_KERNEL") or "auto"
    if jobs <= 1 or n_clusters == 1:
        results = [
            replay_shard(shard, config, pes_per_cluster, index, kernel=kernel)
            for index, shard in enumerate(shards)
        ]
    else:
        # Unlike a sweep — one big trace replayed many times — each
        # shard is shipped to exactly one task, so the shards travel as
        # pickled task arguments (columnar arrays pickle as raw bytes,
        # milliseconds for typical traces) rather than through a
        # temp-file hand-off.
        tasks = [
            (shard, config, pes_per_cluster, index, kernel)
            for index, shard in enumerate(shards)
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_replay_cluster_task, tasks))
    return ClusterStats(
        [stats for stats, _ in results], [net for _, net in results]
    )


def merge_stats(parts: Sequence[SystemStats]) -> SystemStats:
    """Aggregate per-trace results into one :class:`SystemStats`.

    Thin wrapper over :meth:`SystemStats.merged` for sweep callers that
    split one workload family (e.g. the same benchmark at several
    scales) across processes and want combined counters back.
    """
    return SystemStats.merged(parts)
