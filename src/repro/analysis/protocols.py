"""Cross-protocol comparison: one trace, every registered protocol.

The protocol registry makes protocol ablations cheap; this module turns
them into a table.  :func:`protocol_comparison` replays one captured
trace under each requested protocol and collects the headline counters;
:func:`format_protocol_comparison` renders them with the shared ASCII
table formatter.  Used by ``repro compare`` and the report's protocol
matrix section.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.formatting import format_table
from repro.core.config import SimulationConfig
from repro.core.illinois import compare_protocols
from repro.core.protocol import protocol_names
from repro.trace.buffer import TraceBuffer

#: Columns of the comparison table: (header, stats key, formatter).
_COLUMNS = (
    ("bus cycles", "bus_cycles", "{:,}".format),
    ("mem busy", "memory_busy_cycles", "{:,}".format),
    ("swap outs", "swap_outs", "{:,}".format),
    ("c2c", "c2c_transfers", "{:,}".format),
    ("miss ratio", "miss_ratio", "{:.4f}".format),
)


def protocol_comparison(
    buffer: TraceBuffer,
    base: Optional[SimulationConfig] = None,
    protocols: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Replay *buffer* under each protocol (default: the full registry)."""
    if protocols is None:
        protocols = protocol_names()
    return compare_protocols(buffer, base, protocols)


def format_protocol_comparison(
    comparison: Dict[str, Dict[str, float]],
    title: str = "Cross-protocol comparison",
) -> str:
    """Render a :func:`protocol_comparison` result as an ASCII table.

    Adds a ``vs pim`` column (bus-cycle ratio against the ``pim`` row)
    whenever the comparison includes the paper's protocol.
    """
    reference = comparison.get("pim")
    headers = ["protocol"] + [header for header, _, _ in _COLUMNS]
    if reference:
        headers.append("bus vs pim")
    rows = []
    for name, entry in comparison.items():
        row = [name] + [fmt(entry[key]) for _, key, fmt in _COLUMNS]
        if reference:
            row.append(
                "{:.2f}x".format(
                    entry["bus_cycles"] / max(reference["bus_cycles"], 1)
                )
            )
        rows.append(tuple(row))
    return format_table(tuple(headers), rows, title=title)
