"""Cross-protocol comparison: one trace, every registered protocol.

The protocol registry makes protocol ablations cheap; this module turns
them into a table.  :func:`protocol_comparison` replays one captured
trace under each requested protocol and collects the headline counters
— through the flat replay kernel on a single-bus config, or through
:func:`repro.cluster.replay.replay_clustered` (adding the inter-cluster
network columns) when the base config partitions the machine.
:func:`format_protocol_comparison` renders them with the shared ASCII
table formatter and :func:`comparison_report` emits the machine-readable
JSON form (schema ``repro.obs/comparison/v1``, validated by
:func:`repro.obs.schema.validate_comparison`).  Used by ``repro
compare`` and the report's protocol matrix section.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.formatting import format_table
from repro.cluster.replay import replay_clustered
from repro.core.config import SimulationConfig
from repro.core.illinois import compare_protocols, protocol_config
from repro.core.protocol import protocol_names
from repro.obs.manifest import build_manifest
from repro.obs.schema import COMPARISON_SCHEMA
from repro.trace.buffer import TraceBuffer

#: Columns of the comparison table: (header, stats key, formatter).
_COLUMNS = (
    ("bus cycles", "bus_cycles", "{:,}".format),
    ("mem busy", "memory_busy_cycles", "{:,}".format),
    ("swap outs", "swap_outs", "{:,}".format),
    ("c2c", "c2c_transfers", "{:,}".format),
    ("miss ratio", "miss_ratio", "{:.4f}".format),
)

#: Extra columns present when the comparison ran on a clustered machine.
_NETWORK_COLUMNS = (
    ("net msgs", "network_messages", "{:,}".format),
    ("net stall", "network_stall_cycles", "{:,}".format),
)

#: Extra columns present when the comparison ran in speculative mode.
_SPECULATIVE_COLUMNS = (
    ("commits", "batch_commits", "{:,}".format),
    ("rollbacks", "batch_rollbacks", "{:,}".format),
)


def protocol_comparison(
    buffer: TraceBuffer,
    base: Optional[SimulationConfig] = None,
    protocols: Optional[Sequence[str]] = None,
    n_pes: Optional[int] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Replay *buffer* under each protocol (default: the full registry).

    A *base* config with ``cluster.n_clusters > 1`` runs each protocol
    through the clustered replay path instead and adds
    ``network_messages`` / ``network_stall_cycles`` per row.

    ``mode="lazypim"`` routes every replay through the speculative
    batch-coherence engine (docs/SPECULATIVE.md) and adds
    ``batch_commits`` / ``batch_rollbacks`` per row.
    """
    if protocols is None:
        protocols = protocol_names()
    if base is None or base.cluster.n_clusters == 1:
        return compare_protocols(
            buffer,
            base,
            protocols,
            mode=mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
    results: Dict[str, Dict[str, float]] = {}
    for name in protocols:
        clustered = replay_clustered(
            buffer,
            protocol_config(name, base),
            n_pes,
            mode=mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        stats = clustered.stats
        row = {
            "bus_cycles": stats.bus_cycles_total,
            "memory_busy_cycles": stats.memory_busy_cycles,
            "swap_outs": stats.swap_outs,
            "c2c_transfers": stats.c2c_transfers,
            "miss_ratio": stats.miss_ratio,
            "network_messages": clustered.network.messages,
            "network_stall_cycles": clustered.network.stall_cycles,
        }
        if mode == "lazypim":
            row["batch_commits"] = stats.batch_commits
            row["batch_rollbacks"] = stats.batch_rollbacks
        results[name] = row
    return results


def _columns_for(comparison: Dict[str, Dict[str, float]]):
    first = next(iter(comparison.values()), {})
    columns = _COLUMNS
    if "network_messages" in first:
        columns = columns + _NETWORK_COLUMNS
    if "batch_commits" in first:
        columns = columns + _SPECULATIVE_COLUMNS
    return columns


def format_protocol_comparison(
    comparison: Dict[str, Dict[str, float]],
    title: str = "Cross-protocol comparison",
) -> str:
    """Render a :func:`protocol_comparison` result as an ASCII table.

    Adds a ``vs pim`` column (bus-cycle ratio against the ``pim`` row)
    whenever the comparison includes the paper's protocol, and the
    network columns whenever the rows carry them.
    """
    columns = _columns_for(comparison)
    reference = comparison.get("pim")
    headers = ["protocol"] + [header for header, _, _ in columns]
    if reference:
        headers.append("bus vs pim")
    rows = []
    for name, entry in comparison.items():
        row = [name] + [fmt(entry[key]) for _, key, fmt in columns]
        if reference:
            row.append(
                "{:.2f}x".format(
                    entry["bus_cycles"] / max(reference["bus_cycles"], 1)
                )
            )
        rows.append(tuple(row))
    return format_table(tuple(headers), rows, title=title)


def comparison_report(
    comparison: Dict[str, Dict[str, float]],
    base: Optional[SimulationConfig] = None,
    extra: Optional[dict] = None,
) -> dict:
    """The machine-readable form of a comparison (``repro compare
    --json``): schema-tagged rows plus a provenance manifest."""
    return {
        "schema": COMPARISON_SCHEMA,
        "clusters": base.cluster.n_clusters if base is not None else None,
        "rows": [
            {"protocol": name, **entry} for name, entry in comparison.items()
        ],
        "manifest": build_manifest(
            config=base, extra={"kind": "comparison", **(extra or {})}
        ),
    }
