"""One-shot report generator: every table, figure and ablation in a
single markdown document.

Used by ``python -m repro report`` and by EXPERIMENTS.md regeneration::

    from repro.analysis.report import generate_report
    text = generate_report(scale="small")
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import figures as figures_module
from repro.analysis import tables as tables_module
from repro.analysis.formatting import format_table
from repro.analysis.protocols import (
    format_protocol_comparison,
    protocol_comparison,
)
from repro.analysis.runner import Workloads
from repro.cluster.replay import replay_clustered
from repro.core.config import OptimizationConfig, SimulationConfig
from repro.core.illinois import compare_protocols

#: The experiments in presentation order: (title, builder taking Workloads).
_SECTIONS = (
    ("Table 1 — benchmark summary", tables_module.table1),
    ("Table 2 — references and bus cycles by area", tables_module.table2),
    ("Table 3 — references by operation", tables_module.table3),
    ("Table 4 — effect of the optimized commands", tables_module.table4),
    ("Table 5 — lock-protocol hit ratios", tables_module.table5),
    ("Figure 1 — block size sweep", figures_module.figure1),
    ("Figure 2 — capacity sweep", figures_module.figure2),
    ("Figure 3 — PE count sweep", figures_module.figure3),
    ("Associativity sweep", figures_module.associativity_sweep),
    ("Bus width study", figures_module.bus_width_study),
    ("Per-mechanism effects (Section 4.6)", figures_module.optimization_details),
)


def _sm_ablation_section(workloads: Workloads) -> str:
    rows = []
    for name in tables_module.BENCH_ORDER:
        comparison = compare_protocols(workloads.trace(name))
        pim, illinois = comparison["pim"], comparison["illinois"]
        rows.append(
            (
                name,
                pim["memory_busy_cycles"],
                illinois["memory_busy_cycles"],
                f"{illinois['memory_busy_cycles'] / max(pim['memory_busy_cycles'], 1):.2f}x",
            )
        )
    return format_table(
        ("bench", "PIM mem busy", "Illinois mem busy", "penalty"),
        rows,
        title="SM-state ablation: shared-memory pressure without SM",
    )


def _protocol_matrix_section(workloads: Workloads) -> str:
    """Every registered protocol on one representative trace."""
    name = tables_module.BENCH_ORDER[0]
    comparison = protocol_comparison(workloads.trace(name))
    return format_protocol_comparison(
        comparison,
        title=f"Protocol matrix on `{name}` (every registered protocol)",
    )


def _cluster_traffic_section(workloads: Workloads, n_clusters: int = 2) -> str:
    """Inter- vs intra-cluster traffic on one representative trace.

    Replays the trace on a clustered machine and tabulates, per
    cluster, how many bus transactions stayed on the local bus versus
    crossing the inter-cluster network — plus the stall cycles that
    crossing cost and the sending link's occupancy.
    """
    name = tables_module.BENCH_ORDER[0]
    buffer = workloads.trace(name)
    clustered = replay_clustered(
        buffer, SimulationConfig().with_clusters(n_clusters)
    )
    rows = []
    for stats, net in zip(
        clustered.per_cluster, clustered.network_per_cluster
    ):
        bus_ops = sum(stats.pattern_counts)
        inter = net.messages
        elapsed = max(stats.pe_cycles) if stats.pe_cycles else 0
        rows.append(
            (
                f"c{net.cluster}",
                f"{stats.total_refs:,}",
                f"{bus_ops - inter:,}",
                f"{inter:,}",
                f"{inter / max(bus_ops, 1):.1%}",
                f"{net.stall_cycles:,}",
                f"{net.link_busy_cycles / max(elapsed, 1):.1%}",
            )
        )
    total_stats, total_net = clustered.stats, clustered.network
    total_ops = sum(total_stats.pattern_counts)
    total_elapsed = max(total_stats.pe_cycles) if total_stats.pe_cycles else 0
    rows.append(
        (
            "total",
            f"{total_stats.total_refs:,}",
            f"{total_ops - total_net.messages:,}",
            f"{total_net.messages:,}",
            f"{total_net.messages / max(total_ops, 1):.1%}",
            f"{total_net.stall_cycles:,}",
            f"{total_net.link_busy_cycles / max(total_elapsed * n_clusters, 1):.1%}",
        )
    )
    return format_table(
        (
            "cluster", "refs", "intra bus ops", "inter msgs", "inter %",
            "net stall", "link occ",
        ),
        rows,
        title=(
            f"Inter- vs intra-cluster traffic on `{name}` "
            f"({n_clusters} clusters)"
        ),
    )


def _write_policy_section(workloads: Workloads) -> str:
    rows = []
    for name in tables_module.BENCH_ORDER:
        copyback = workloads.replay(
            name, SimulationConfig(opts=OptimizationConfig.none())
        )
        through = workloads.replay(
            name,
            SimulationConfig(
                protocol="write_through", opts=OptimizationConfig.none()
            ),
        )
        rows.append(
            (
                name,
                copyback.bus_cycles_total,
                through.bus_cycles_total,
                f"{through.bus_cycles_total / max(copyback.bus_cycles_total, 1):.2f}x",
            )
        )
    return format_table(
        ("bench", "copy-back bus", "write-through bus", "penalty"),
        rows,
        title="Write-policy ablation: the copy-back choice (Section 3)",
    )


def generate_report(
    scale: str = "small", workloads: Optional[Workloads] = None
) -> str:
    """Build the full experiment report as markdown-flavoured text."""
    if workloads is None:
        workloads = Workloads(scale=scale)
    parts = [
        "# PIM cache reproduction — full experiment report",
        "",
        f"Workload scale: `{scale}`.  All numbers regenerated by this run;",
        "paper-vs-measured commentary lives in EXPERIMENTS.md.",
        "",
    ]
    for title, builder in _SECTIONS:
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(builder(workloads).render())
        parts.append("```")
        parts.append("")
    parts.append("## SM-state ablation")
    parts.append("")
    parts.append("```")
    parts.append(_sm_ablation_section(workloads))
    parts.append("```")
    parts.append("")
    parts.append("## Write-policy ablation")
    parts.append("")
    parts.append("```")
    parts.append(_write_policy_section(workloads))
    parts.append("```")
    parts.append("")
    parts.append("## Protocol matrix")
    parts.append("")
    parts.append("```")
    parts.append(_protocol_matrix_section(workloads))
    parts.append("```")
    parts.append("")
    parts.append("## Cluster traffic")
    parts.append("")
    parts.append("```")
    parts.append(_cluster_traffic_section(workloads))
    parts.append("```")
    parts.append("")
    return "\n".join(parts)
