"""Workload execution and trace caching for the experiment harness.

Every experiment in the paper derives from the same few workload runs:
each benchmark executed on ``n`` PEs, producing (a) execution-driven
cache statistics and (b) a reference trace.  :class:`Workloads` memoizes
those runs so Tables 2-5 and Figures 1-2 all reuse one 8-PE trace per
benchmark, and Figure 3 adds the 1/2/4-PE runs — mirroring how the
paper's emulator/simulator pair was amortized across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.config import MachineConfig, OptimizationConfig, SimulationConfig
from repro.core.replay import replay
from repro.core.stats import SystemStats
from repro.machine.machine import KL1Machine, MachineResult
from repro.trace.buffer import TraceBuffer


@dataclass
class BenchmarkResult:
    """One benchmark execution: machine-level result plus cache stats."""

    name: str
    scale: str
    n_pes: int
    machine: MachineResult
    #: Execution-driven cache statistics (base config, all commands on).
    stats: Optional[SystemStats]
    #: The captured reference stream, replayable against other configs.
    trace: Optional[TraceBuffer]
    #: Static source lines (Table 1's "lines" column).
    source_lines: int


def run_benchmark(
    name: str,
    scale: str = "small",
    n_pes: int = 8,
    sim_config: Optional[SimulationConfig] = None,
    machine_config: Optional[MachineConfig] = None,
    verify: bool = True,
) -> BenchmarkResult:
    """Execute one benchmark and return its results.

    The default simulation config is the paper's base model with all
    optimized commands honoured.  ``verify=True`` checks the program's
    answer against the benchmark's Python oracle and raises on mismatch.
    """
    from repro.programs import get as get_benchmark

    benchmark = get_benchmark(name)
    if machine_config is None:
        machine_config = MachineConfig(n_pes=n_pes, seed=1)
    elif machine_config.n_pes != n_pes:
        machine_config = replace(machine_config, n_pes=n_pes)
    if sim_config is None:
        sim_config = SimulationConfig()
    machine = KL1Machine(benchmark.source, machine_config, sim_config)
    result = machine.run(benchmark.query(scale))
    if verify:
        got = result.answer.get(benchmark.answer_var)
        expected = benchmark.expected[scale]
        if got != expected:
            raise AssertionError(
                f"benchmark {name}/{scale} computed {got!r}, expected {expected!r}"
            )
    return BenchmarkResult(
        name=name,
        scale=scale,
        n_pes=n_pes,
        machine=result,
        stats=result.stats,
        trace=result.trace,
        source_lines=machine.program.source_lines,
    )


def replay_trace(
    result_or_trace, config: SimulationConfig, n_pes: Optional[int] = None
) -> SystemStats:
    """Replay a benchmark's trace against another cache configuration."""
    trace = (
        result_or_trace.trace
        if isinstance(result_or_trace, BenchmarkResult)
        else result_or_trace
    )
    if trace is None:
        raise ValueError("no trace captured; run with capture_trace=True")
    return replay(trace, config, n_pes=n_pes)


class Workloads:
    """Memoized benchmark runs shared across experiments."""

    def __init__(self, scale: str = "small", seed: int = 1):
        self.scale = scale
        self.seed = seed
        self._cache: Dict[Tuple[str, int], BenchmarkResult] = {}
        self._replays: Dict[Tuple[str, int, SimulationConfig], SystemStats] = {}

    def result(self, name: str, n_pes: int = 8) -> BenchmarkResult:
        key = (name, n_pes)
        if key not in self._cache:
            self._cache[key] = run_benchmark(
                name,
                scale=self.scale,
                n_pes=n_pes,
                machine_config=MachineConfig(n_pes=n_pes, seed=self.seed),
            )
        return self._cache[key]

    def trace(self, name: str, n_pes: int = 8) -> TraceBuffer:
        trace = self.result(name, n_pes).trace
        assert trace is not None
        return trace

    def replay(
        self, name: str, config: SimulationConfig, n_pes: int = 8
    ) -> SystemStats:
        key = (name, n_pes, config)
        if key not in self._replays:
            self._replays[key] = replay(self.trace(name, n_pes), config)
        return self._replays[key]


def unoptimized_config() -> SimulationConfig:
    """The conventional-cache config used by Tables 2 and 3."""
    return SimulationConfig(opts=OptimizationConfig.none())
