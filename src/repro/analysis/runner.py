"""Workload execution and trace caching for the experiment harness.

Every experiment in the paper derives from the same few workload runs:
each benchmark executed on ``n`` PEs, producing (a) execution-driven
cache statistics and (b) a reference trace.  :class:`Workloads` memoizes
those runs so Tables 2-5 and Figures 1-2 all reuse one 8-PE trace per
benchmark, and Figure 3 adds the 1/2/4-PE runs — mirroring how the
paper's emulator/simulator pair was amortized across experiments.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.config import MachineConfig, OptimizationConfig, SimulationConfig
from repro.core.replay import replay
from repro.core.stats import SystemStats
from repro.machine.machine import KL1Machine, MachineResult
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest
from repro.trace.buffer import TraceBuffer
from repro.trace.io import TraceFormatError, read_trace, write_trace

logger = get_logger("analysis.runner")

#: Bump when the emulator or scheduler changes the reference streams it
#: emits: the version is part of every cache file name, so stale traces
#: from an older emulator are simply never read again.
TRACE_CACHE_VERSION = 1

#: Default size cap of the disk trace cache.  Long job-fleet sessions
#: capture many (scale, PE-count, seed, cluster) streams; without a
#: bound the cache grows monotonically.  Override (in bytes) with
#: ``REPRO_TRACE_CACHE_BYTES``; 0 disables pruning.
DEFAULT_TRACE_CACHE_BYTES = 512 * 1024 * 1024


def trace_cache_dir() -> Optional[Path]:
    """Directory for cached traces, or None when caching is disabled.

    Controlled by ``REPRO_TRACE_CACHE``: unset uses
    ``~/.cache/repro/traces`` (``$XDG_CACHE_HOME`` honoured), ``0`` /
    ``off`` disables the cache, anything else is used as the directory.
    """
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "no", "none"):
            return None
        return Path(env).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro" / "traces"


def trace_cache_limit_bytes() -> int:
    """The cache size cap in bytes (0 = unbounded)."""
    env = os.environ.get("REPRO_TRACE_CACHE_BYTES")
    if env is None or not env.strip():
        return DEFAULT_TRACE_CACHE_BYTES
    try:
        return max(0, int(env))
    except ValueError:
        logger.warning(
            "ignoring non-integer REPRO_TRACE_CACHE_BYTES=%r", env
        )
        return DEFAULT_TRACE_CACHE_BYTES


def _cache_entries(root: Path):
    """(mtime, size, path) of every cached trace, oldest-access first.

    mtime doubles as last-use time: :meth:`Workloads._load_trace` bumps
    it on every hit, so sorting by mtime is LRU order.
    """
    entries = []
    for path in root.glob("*.trace"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()
    return entries


def trace_cache_stats() -> dict:
    """Current disk-cache occupancy, for ``repro cache --stats``."""
    root = trace_cache_dir()
    if root is None or not root.is_dir():
        return {
            "dir": str(root) if root is not None else None,
            "enabled": root is not None,
            "files": 0,
            "total_bytes": 0,
            "limit_bytes": trace_cache_limit_bytes(),
        }
    entries = _cache_entries(root)
    return {
        "dir": str(root),
        "enabled": True,
        "files": len(entries),
        "total_bytes": sum(size for _, size, _ in entries),
        "limit_bytes": trace_cache_limit_bytes(),
    }


def prune_trace_cache(max_bytes: Optional[int] = None) -> dict:
    """Evict least-recently-used traces until the cache fits *max_bytes*
    (default: :func:`trace_cache_limit_bytes`).  Returns what happened.
    """
    root = trace_cache_dir()
    if max_bytes is None:
        max_bytes = trace_cache_limit_bytes()
    removed = 0
    removed_bytes = 0
    if root is not None and root.is_dir() and max_bytes > 0:
        entries = _cache_entries(root)
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            removed_bytes += size
        if removed:
            logger.info(
                "trace cache pruned: %d file(s), %d bytes", removed,
                removed_bytes,
            )
    stats = trace_cache_stats()
    stats["removed"] = removed
    stats["removed_bytes"] = removed_bytes
    return stats


@dataclass
class BenchmarkResult:
    """One benchmark execution: machine-level result plus cache stats."""

    name: str
    scale: str
    n_pes: int
    machine: MachineResult
    #: Execution-driven cache statistics (base config, all commands on).
    stats: Optional[SystemStats]
    #: The captured reference stream, replayable against other configs.
    trace: Optional[TraceBuffer]
    #: Static source lines (Table 1's "lines" column).
    source_lines: int
    #: Run provenance (``repro.obs/manifest/v1``): config hash, seed,
    #: git SHA, interpreter, wall time.
    manifest: Optional[dict] = None


def run_benchmark(
    name: str,
    scale: str = "small",
    n_pes: int = 8,
    sim_config: Optional[SimulationConfig] = None,
    machine_config: Optional[MachineConfig] = None,
    verify: bool = True,
) -> BenchmarkResult:
    """Execute one benchmark and return its results.

    The default simulation config is the paper's base model with all
    optimized commands honoured.  ``verify=True`` checks the program's
    answer against the benchmark's Python oracle and raises on mismatch.
    """
    from repro.programs import get as get_benchmark

    benchmark = get_benchmark(name)
    if machine_config is None:
        machine_config = MachineConfig(n_pes=n_pes, seed=1)
    elif machine_config.n_pes != n_pes:
        machine_config = replace(machine_config, n_pes=n_pes)
    if sim_config is None:
        sim_config = SimulationConfig()
    logger.info("emulating %s/%s on %d PEs", name, scale, n_pes)
    machine = KL1Machine(benchmark.source, machine_config, sim_config)
    result = machine.run(benchmark.query(scale))
    if verify:
        got = result.answer.get(benchmark.answer_var)
        expected = benchmark.expected[scale]
        if got != expected:
            raise AssertionError(
                f"benchmark {name}/{scale} computed {got!r}, expected {expected!r}"
            )
    logger.debug(
        "%s/%s: %d reductions, %d refs, %.2fs",
        name, scale, result.reductions, result.memory_refs, result.wall_seconds,
    )
    manifest = build_manifest(
        config=sim_config,
        seed=machine_config.seed,
        wall_seconds=round(result.wall_seconds, 3),
        extra={
            "kind": "benchmark-run",
            "benchmark": name,
            "scale": scale,
            "n_pes": n_pes,
            "reductions": result.reductions,
            "memory_refs": result.memory_refs,
        },
    )
    return BenchmarkResult(
        name=name,
        scale=scale,
        n_pes=n_pes,
        machine=result,
        stats=result.stats,
        trace=result.trace,
        source_lines=machine.program.source_lines,
        manifest=manifest,
    )


def replay_trace(
    result_or_trace, config: SimulationConfig, n_pes: Optional[int] = None
) -> SystemStats:
    """Replay a benchmark's trace against another cache configuration."""
    trace = (
        result_or_trace.trace
        if isinstance(result_or_trace, BenchmarkResult)
        else result_or_trace
    )
    if trace is None:
        raise ValueError("no trace captured; run with capture_trace=True")
    return replay(trace, config, n_pes=n_pes)


class Workloads:
    """Memoized benchmark runs shared across experiments.

    Traces are additionally cached on disk, keyed by every knob that can
    change the captured reference stream — and *only* those:

    * :data:`TRACE_CACHE_VERSION` (emulator/scheduler changes),
    * benchmark name, ``scale``, ``n_pes``, machine ``seed``,
    * ``gc_threshold_words`` (collections rewrite the heap, changing
      every reference after them),
    * ``n_clusters`` (cluster-affinity goal scheduling reorders work,
      so a clustered capture is a different stream).

    The simulation side — protocol, cache geometry, bus width, the
    optimized-command toggles — is deliberately absent: the reference
    stream does not depend on it (that independence is the premise of
    trace replay), so one cached trace serves every protocol and
    geometry sweep.  The two non-default knobs append readable suffixes
    rather than reformatting the whole key, keeping existing cache
    files valid.

    Repeated pytest / benchmark invocations thus skip re-emulation —
    the expensive part — and go straight to replay.  Only :meth:`trace`
    consults the disk cache; :meth:`result` needs the machine-level
    outcome and always emulates (then refreshes the cached trace).
    """

    def __init__(
        self,
        scale: str = "small",
        seed: int = 1,
        gc_threshold_words: Optional[int] = None,
        n_clusters: int = 1,
    ):
        self.scale = scale
        self.seed = seed
        self.gc_threshold_words = gc_threshold_words
        self.n_clusters = n_clusters
        self._cache: Dict[Tuple[str, int], BenchmarkResult] = {}
        self._traces: Dict[Tuple[str, int], TraceBuffer] = {}
        self._replays: Dict[Tuple[str, int, SimulationConfig], SystemStats] = {}

    def cache_key(self, name: str, n_pes: int = 8) -> str:
        """The disk-cache key (file stem) of one workload's trace —
        recorded in manifests so results name the stream they used."""
        key = (
            f"v{TRACE_CACHE_VERSION}-{name}-{self.scale}-"
            f"{n_pes}pe-seed{self.seed}"
        )
        if self.gc_threshold_words is not None:
            key += f"-gc{self.gc_threshold_words}"
        if self.n_clusters != 1:
            key += f"-c{self.n_clusters}"
        return key

    def _sim_config(self) -> Optional[SimulationConfig]:
        """Capture-time simulation config (None: run_benchmark default).

        Only the cluster topology matters here — it feeds the
        scheduler; everything else about the config cannot reach the
        trace.
        """
        if self.n_clusters == 1:
            return None
        return SimulationConfig().with_clusters(self.n_clusters)

    def result(self, name: str, n_pes: int = 8) -> BenchmarkResult:
        key = (name, n_pes)
        if key not in self._cache:
            result = run_benchmark(
                name,
                scale=self.scale,
                n_pes=n_pes,
                sim_config=self._sim_config(),
                machine_config=MachineConfig(
                    n_pes=n_pes,
                    seed=self.seed,
                    gc_threshold_words=self.gc_threshold_words,
                ),
            )
            if result.manifest is not None:
                result.manifest["trace_cache_key"] = self.cache_key(name, n_pes)
            self._cache[key] = result
            if result.trace is not None:
                self._traces[key] = result.trace
                self._store_trace(name, n_pes, result.trace)
        return self._cache[key]

    def trace(self, name: str, n_pes: int = 8) -> TraceBuffer:
        key = (name, n_pes)
        trace = self._traces.get(key)
        if trace is None:
            trace = self._load_trace(name, n_pes)
        if trace is None:
            trace = self.result(name, n_pes).trace
            assert trace is not None
        self._traces[key] = trace
        return trace

    def trace_path(self, name: str, n_pes: int = 8) -> Optional[Path]:
        """Path of the cached trace file (materializing it if needed),
        or None when the disk cache is disabled.  Lets
        :func:`repro.analysis.parallel.run_sweep` ship the existing file
        to workers instead of re-serializing the buffer."""
        path = self._cache_path(name, n_pes)
        if path is None:
            return None
        if not path.exists():
            self._store_trace(name, n_pes, self.trace(name, n_pes))
        return path if path.exists() else None

    def _cache_path(self, name: str, n_pes: int) -> Optional[Path]:
        root = trace_cache_dir()
        if root is None:
            return None
        return root / (self.cache_key(name, n_pes) + ".trace")

    def _load_trace(self, name: str, n_pes: int) -> Optional[TraceBuffer]:
        path = self._cache_path(name, n_pes)
        if path is None or not path.exists():
            return None
        try:
            trace = read_trace(path)
            logger.info("trace cache hit: %s (%d refs)", path.name, len(trace))
            # Touch so LRU pruning sees this file as recently used.
            try:
                os.utime(path)
            except OSError:
                pass
            return trace
        except (TraceFormatError, OSError, EOFError):
            logger.warning("discarding unreadable cached trace %s", path)
            # A truncated or stale file is re-generated, never fatal.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store_trace(self, name: str, n_pes: int, trace: TraceBuffer) -> None:
        path = self._cache_path(name, n_pes)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            os.close(fd)
            write_trace(trace, tmp)
            os.replace(tmp, path)  # atomic: readers never see a partial file
            logger.debug("trace cached: %s (%d refs)", path.name, len(trace))
            prune_trace_cache()  # keep the cache under its size cap
        except OSError:
            pass  # a read-only cache dir degrades to no caching

    def replay(
        self, name: str, config: SimulationConfig, n_pes: int = 8
    ) -> SystemStats:
        key = (name, n_pes, config)
        if key not in self._replays:
            self._replays[key] = replay(self.trace(name, n_pes), config)
        return self._replays[key]


def unoptimized_config() -> SimulationConfig:
    """The conventional-cache config used by Tables 2 and 3."""
    return SimulationConfig(opts=OptimizationConfig.none())
