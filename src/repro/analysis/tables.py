"""Regeneration of the paper's Tables 1-5.

Each ``tableN`` function takes a :class:`~repro.analysis.runner.Workloads`
cache and returns a small result object carrying both the structured
numbers and a ``render()`` method producing the paper-shaped ASCII
table.  EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.formatting import format_millions, format_table
from repro.analysis.runner import Workloads, unoptimized_config
from repro.core.config import TABLE4_COLUMNS, SimulationConfig
from repro.trace.events import Area

BENCH_ORDER = ("tri", "semi", "puzzle", "pascal")

#: Column order used by Table 2 (the paper's area columns).
AREA_COLUMNS = ("inst", "data", "heap", "goal", "susp", "comm")

_AREA_KEYS = {
    "inst": Area.INSTRUCTION,
    "heap": Area.HEAP,
    "goal": Area.GOAL,
    "susp": Area.SUSPENSION,
    "comm": Area.COMMUNICATION,
}


def _mean(values: List[float]) -> float:
    return statistics.fmean(values)


def _sigma(values: List[float]) -> float:
    return statistics.pstdev(values)


# ----------------------------------------------------------------------
# Table 1 — benchmark summary
# ----------------------------------------------------------------------


@dataclass
class Table1:
    """Per-benchmark high-level characteristics on eight PEs."""

    rows: List[Dict[str, object]]

    def render(self) -> str:
        return format_table(
            ("bench", "lines", "sec.", "su", "reduct", "susp", "instr", "ref"),
            [
                (
                    row["bench"],
                    row["lines"],
                    f"{row['seconds']:.1f}",
                    f"{row['speedup']:.1f}",
                    row["reductions"],
                    row["suspensions"],
                    format_millions(row["instructions"]),
                    format_millions(row["refs"]),
                )
                for row in self.rows
            ],
            title="Table 1: Short Summary of Benchmarks on Eight PEs",
        )


def table1(workloads: Workloads) -> Table1:
    """Table 1: lines, emulation time, relative speedup on 8 PEs,
    reductions, suspensions, instructions, memory references.

    Speedup is simulated-cycle speedup (one-PE cycles / eight-PE cycles)
    — the paper used emulator wall-clock on the host Symmetry, which has
    no analogue here.
    """
    rows = []
    for name in BENCH_ORDER:
        eight = workloads.result(name, 8)
        one = workloads.result(name, 1)
        assert eight.stats is not None and one.stats is not None
        speedup = one.stats.total_cycles / max(eight.stats.total_cycles, 1)
        rows.append(
            {
                "bench": name.capitalize(),
                "lines": eight.source_lines,
                "seconds": eight.machine.wall_seconds,
                "speedup": speedup,
                "reductions": eight.machine.reductions,
                "suspensions": eight.machine.suspensions,
                "instructions": eight.machine.instructions,
                "refs": eight.machine.memory_refs,
            }
        )
    return Table1(rows)


# ----------------------------------------------------------------------
# Table 2 — references and bus cycles by area
# ----------------------------------------------------------------------


@dataclass
class Table2:
    """Percent of memory references / bus cycles by storage area, for an
    unoptimized base cache."""

    ref_mean: Dict[str, float]
    ref_sigma: Dict[str, float]
    ref_data_mean: Dict[str, float]
    bus_mean: Dict[str, float]
    bus_sigma: Dict[str, float]
    bus_data_mean: Dict[str, float]
    bus_rows: List[Dict[str, object]]

    def render(self) -> str:
        def srow(label, values):
            return [label] + [
                f"{values[c]:.2f}" if c in values else "-" for c in AREA_COLUMNS
            ]

        rows = [
            srow("E(i+d) ref%", self.ref_mean),
            srow("sigma ref%", self.ref_sigma),
            srow("E(data) ref%", self.ref_data_mean),
            srow("E(i+d) bus%", self.bus_mean),
            srow("sigma bus%", self.bus_sigma),
            srow("E(data) bus%", self.bus_data_mean),
        ]
        for row in self.bus_rows:
            rows.append(
                [row["bench"]]
                + [f"{row[c]:.2f}" for c in AREA_COLUMNS]
            )
        return format_table(
            ("", *AREA_COLUMNS),
            rows,
            title="Table 2: % Memory References and Bus Cycles by Area",
        )


def _area_percentages(stats) -> Dict[str, float]:
    percentages = stats.area_ref_percentages()
    values = {k: percentages[a] for k, a in _AREA_KEYS.items()}
    values["data"] = 100.0 - values["inst"]
    return values


def _bus_percentages(stats) -> Dict[str, float]:
    percentages = stats.area_bus_percentages()
    values = {k: percentages[a] for k, a in _AREA_KEYS.items()}
    values["data"] = 100.0 - values["inst"]
    return values


def table2(workloads: Workloads) -> Table2:
    """Table 2: reference and bus-cycle shares per area (no optimized
    commands; the optimized commands exist precisely to attack the
    shares this table exposes)."""
    config = unoptimized_config()
    ref_rows, bus_rows, named_bus = [], [], []
    for name in BENCH_ORDER:
        stats = workloads.replay(name, config)
        ref_rows.append(_area_percentages(stats))
        bus = _bus_percentages(stats)
        bus_rows.append(bus)
        named_bus.append({"bench": name.capitalize(), **bus})

    def aggregate(rows, fn):
        return {c: fn([row[c] for row in rows]) for c in AREA_COLUMNS}

    def data_only(rows):
        # Shares within the data areas only (the paper's E(data) row).
        out = {}
        for column in ("heap", "goal", "susp", "comm"):
            out[column] = _mean(
                [100.0 * row[column] / row["data"] for row in rows if row["data"]]
            )
        return out

    return Table2(
        ref_mean=aggregate(ref_rows, _mean),
        ref_sigma=aggregate(ref_rows, _sigma),
        ref_data_mean=data_only(ref_rows),
        bus_mean=aggregate(bus_rows, _mean),
        bus_sigma=aggregate(bus_rows, _sigma),
        bus_data_mean=data_only(bus_rows),
        bus_rows=named_bus,
    )


# ----------------------------------------------------------------------
# Table 3 — references by operation
# ----------------------------------------------------------------------

OP_COLUMNS = ("R", "LR", "W", "UW+U")


@dataclass
class Table3:
    """Percent of memory references by operation class."""

    overall_mean: Dict[str, float]
    overall_sigma: Dict[str, float]
    data_mean: Dict[str, float]
    data_sigma: Dict[str, float]
    heap_mean: Dict[str, float]
    heap_sigma: Dict[str, float]
    bench_rows: List[Dict[str, object]]

    def render(self) -> str:
        rows = [
            ["E(inst+data)"] + [f"{self.overall_mean[c]:.2f}" for c in OP_COLUMNS],
            ["sigma(i+d)"] + [f"{self.overall_sigma[c]:.2f}" for c in OP_COLUMNS],
            ["E(data)"] + [f"{self.data_mean[c]:.2f}" for c in OP_COLUMNS],
            ["sigma(data)"] + [f"{self.data_sigma[c]:.2f}" for c in OP_COLUMNS],
            ["E(heap)"] + [f"{self.heap_mean[c]:.2f}" for c in OP_COLUMNS],
            ["sigma(heap)"] + [f"{self.heap_sigma[c]:.2f}" for c in OP_COLUMNS],
        ]
        for row in self.bench_rows:
            rows.append([row["bench"]] + [f"{row[c]:.2f}" for c in OP_COLUMNS])
        return format_table(
            ("operation", *OP_COLUMNS),
            rows,
            title="Table 3: Percentage of Memory References by Operation",
        )


def table3(workloads: Workloads) -> Table3:
    """Table 3: operation mix (reads, lock-reads, writes, unlocks).

    DW counts as a write and ER/RP/RI count as reads — Table 3 reports
    what the *software* issues, independent of controller demotion.
    """
    overall, data, heap, bench_rows = [], [], [], []
    for name in BENCH_ORDER:
        stats = workloads.result(name, 8).stats
        assert stats is not None
        overall.append(stats.op_ref_percentages())
        data_row = stats.op_ref_percentages(data_only=True)
        data.append(data_row)
        heap.append(stats.heap_op_percentages())
        bench_rows.append({"bench": name.capitalize(), **data_row})

    def aggregate(rows, fn):
        return {c: fn([row[c] for row in rows]) for c in OP_COLUMNS}

    return Table3(
        overall_mean=aggregate(overall, _mean),
        overall_sigma=aggregate(overall, _sigma),
        data_mean=aggregate(data, _mean),
        data_sigma=aggregate(data, _sigma),
        heap_mean=aggregate(heap, _mean),
        heap_sigma=aggregate(heap, _sigma),
        bench_rows=bench_rows,
    )


# ----------------------------------------------------------------------
# Table 4 — effect of the optimized commands
# ----------------------------------------------------------------------


@dataclass
class Table4:
    """Bus cycles relative to the unoptimized cache, per optimization
    site (None / Heap / Goal / Comm / All)."""

    columns: List[str]
    rows: List[Dict[str, object]]
    #: Raw bus-cycle counts backing the ratios.
    raw: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def render(self) -> str:
        return format_table(
            ("benchmark", *self.columns),
            [
                [row["bench"]] + [f"{row[c]:.2f}" for c in self.columns]
                for row in self.rows
            ],
            title=(
                "Table 4: Effect of Optimized Cache Commands in Reducing "
                "Bus Traffic (bus cycles relative to no-opt)"
            ),
        )


def table4(workloads: Workloads) -> Table4:
    """Table 4: replay each benchmark's trace under the five
    optimization configurations and normalize to "None"."""
    columns = [label for label, _ in TABLE4_COLUMNS]
    rows, raw = [], {}
    for name in BENCH_ORDER:
        cycles = {}
        for label, opts in TABLE4_COLUMNS:
            stats = workloads.replay(name, SimulationConfig(opts=opts))
            cycles[label] = stats.bus_cycles_total
        base = cycles["None"]
        raw[name] = cycles
        rows.append(
            {
                "bench": name.capitalize(),
                **{label: cycles[label] / base for label in columns},
            }
        )
    return Table4(columns=columns, rows=rows, raw=raw)


# ----------------------------------------------------------------------
# Table 5 — lock protocol hit ratios
# ----------------------------------------------------------------------


@dataclass
class Table5:
    """The no-cost lock operation ratios of the three-state protocol."""

    rows: List[Dict[str, object]]

    def render(self) -> str:
        benches = [row["bench"] for row in self.rows]
        metrics = (
            ("LR hit-ratio", "lr_hit"),
            ("LR hit-to-Exclusive", "lr_exclusive"),
            ("U,UW hit-to-No-waiter", "no_waiter"),
        )
        table_rows = []
        for label, key in metrics:
            table_rows.append(
                [label] + [f"{row[key]:.3f}" for row in self.rows]
            )
        return format_table(
            ("", *benches),
            table_rows,
            title="Table 5: Hit Ratios of No Cost Lock Operations",
        )


def table5(workloads: Workloads) -> Table5:
    """Table 5: from the execution-driven base runs — LR hit ratio, LR
    hits landing in exclusive blocks (zero bus), and unlocks finding no
    waiter (no UL broadcast)."""
    rows = []
    for name in BENCH_ORDER:
        stats = workloads.result(name, 8).stats
        assert stats is not None
        rows.append(
            {
                "bench": name.capitalize(),
                "lr_hit": stats.lr_hit_ratio,
                "lr_exclusive": stats.lr_hit_to_exclusive_ratio,
                "no_waiter": stats.unlock_no_waiter_ratio,
            }
        )
    return Table5(rows)
