"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Execute a named paper benchmark or an FGHC source file on the
    simulated machine and print the machine/cache summary.
``tables``
    Regenerate the paper's Tables 1-5.
``figures``
    Regenerate the paper's Figures 1-3 and the secondary sweeps.
``trace``
    Record a benchmark's reference stream to a file, replay a trace
    file against a chosen cache geometry, or ``convert`` a flat trace
    into the streamable chunked container (``docs/SERVE.md``).
``listing``
    Show the compiled abstract-machine code of a program.
``bench``
    Measure replay throughput and sweep wall time, writing
    ``BENCH_replay.json``; ``--assert-overhead`` turns it into the
    no-sink overhead gate, and ``--compare`` diffs the run against the
    same-host ``BENCH_history.jsonl`` records (appending the new one)
    with a noise-aware regression threshold.
``metrics``
    Replay a benchmark or trace and print the cycle ledger — every PE
    cycle attributed to hit service, bus issue/wait/occupancy, lock
    spinning or network stalls, asserted to sum exactly to the PE
    clocks; ``--json`` emits the ``repro.obs/metrics/v1`` record,
    ``--openmetrics`` writes an OpenMetrics text exposition.
``sweep``
    Run a capacity sweep over worker processes with live fleet
    telemetry: ``--progress`` streams per-worker heartbeat lines, and
    the JSON report records the fleet summary in its manifest.
``profile``
    Replay a benchmark or trace file with the protocol probe attached
    and write the full observability bundle (Perfetto trace, windowed
    metrics, event stream, hotness histogram, manifest).
``events``
    Print (or export) the structured protocol event stream of a replay.
``protocols``
    List the registered coherence protocols, or render one spec's
    LOCKE-style transition table with ``--spec NAME``.
``compare``
    Replay one trace under several registered protocols and print the
    cross-protocol comparison table (``--json`` emits the
    schema-validated ``repro.obs/comparison/v1`` record instead).
``serve``
    The async simulation job service (``docs/SERVE.md``): ``submit``
    enqueues config + trace into a directory-backed ledger, ``run``
    drives queued jobs in supervised worker processes that checkpoint
    on chunk boundaries and retry from the last checkpoint when killed,
    ``status`` polls the ledger and windowed heartbeats, ``result``
    prints a finished job's stats + provenance manifest.
``cache``
    Inspect (``--stats``) or LRU-prune (``--prune``) the ``Workloads``
    disk trace cache; the size cap comes from
    ``REPRO_TRACE_CACHE_BYTES``.

``run``, ``compare`` and ``bench`` accept ``--clusters K`` to simulate
a hierarchical machine: K cluster buses joined by the
:mod:`repro.cluster` inter-cluster network.  Replay-driving commands
(and ``verify``) accept ``--interconnect`` to swap the coherence
transport between the snooping bus and the home-node directory
(``docs/INTERCONNECT.md``); ``repro protocols --spec NAME
--interconnect directory`` renders the derived directory table.

Global ``-v``/``-vv`` and ``-q`` control library logging (the
:mod:`repro.obs.log` hierarchy); they go before the subcommand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import figures as figures_module
from repro.analysis import tables as tables_module
from repro.analysis.runner import Workloads, run_benchmark
from repro.core.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.interconnect import interconnect_names, is_interconnect_registered
from repro.core.protocol import get_protocol, is_registered, protocol_names
from repro.core.replay import replay
from repro.machine.compiler import compile_program
from repro.machine.machine import KL1Machine
from repro.obs.log import configure as configure_logging
from repro.programs import names as benchmark_names
from repro.trace.io import read_trace, write_trace

TABLES = {
    "1": tables_module.table1,
    "2": tables_module.table2,
    "3": tables_module.table3,
    "4": tables_module.table4,
    "5": tables_module.table5,
}

FIGURES = {
    "1": figures_module.figure1,
    "2": figures_module.figure2,
    "3": figures_module.figure3,
    "assoc": figures_module.associativity_sweep,
    "width": figures_module.bus_width_study,
    "details": figures_module.optimization_details,
}


def _sim_config(args) -> SimulationConfig:
    cache = CacheConfig.from_capacity(
        args.capacity, block_words=args.block_words, associativity=args.ways
    )
    opts = OptimizationConfig.none() if args.no_opt else OptimizationConfig.all()
    config = SimulationConfig(
        cache=cache,
        bus=BusConfig(width_words=args.bus_width),
        opts=opts,
        protocol=args.protocol,
        interconnect=getattr(args, "interconnect", "bus"),
    )
    return _apply_clusters(config, args)


def _apply_clusters(config: SimulationConfig, args) -> SimulationConfig:
    clusters = getattr(args, "clusters", 1)
    if clusters and clusters > 1:
        config = config.with_clusters(
            clusters, hop_cycles=getattr(args, "hop_cycles", 4)
        )
    return config


def _add_cache_options(
    parser: argparse.ArgumentParser, protocol: bool = True
) -> None:
    parser.add_argument("--capacity", type=int, default=4096,
                        help="cache data capacity in words (default 4096)")
    parser.add_argument("--block-words", type=int, default=4,
                        help="cache block size in words (default 4)")
    parser.add_argument("--ways", type=int, default=4,
                        help="set associativity (default 4)")
    parser.add_argument("--bus-width", type=int, default=1,
                        help="bus width in words (default 1)")
    if protocol:
        parser.add_argument("--protocol", default="pim",
                            choices=list(protocol_names()),
                            help="registered coherence protocol "
                                 "(see `repro protocols`)")
    parser.add_argument("--no-opt", action="store_true",
                        help="demote DW/ER/RP/RI to plain reads and writes")
    parser.add_argument("--interconnect", default="bus",
                        help="registered interconnect backend "
                             "(see `repro protocols`; default bus)")


def _add_cluster_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clusters", type=int, default=1,
                        help="partition the PEs into K clusters joined by "
                             "an inter-cluster network (default 1: one bus)")
    parser.add_argument("--hop-cycles", type=int, default=4,
                        help="inter-cluster latency per ring hop "
                             "(default 4; needs --clusters > 1)")


def _add_mode_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mode", default="pessimistic",
                        choices=["pessimistic", "lazypim"],
                        help="coherence execution mode: per-access "
                             "(pessimistic, the default) or speculative "
                             "batch coherence (lazypim; "
                             "docs/SPECULATIVE.md)")
    parser.add_argument("--batch-refs", type=int, default=None,
                        help="lazypim: references per speculative batch "
                             "(default 256)")
    parser.add_argument("--signature-bits", type=int, default=None,
                        help="lazypim: read/write signature width in "
                             "bits, a power of two (default 256)")


def _mode_kwargs(args) -> dict:
    """The replay-mode keyword arguments of a mode-aware command."""
    return {
        "mode": getattr(args, "mode", "pessimistic"),
        "batch_refs": getattr(args, "batch_refs", None),
        "signature_bits": getattr(args, "signature_bits", None),
    }


def _print_run_summary(result) -> None:
    machine = result if hasattr(result, "reductions") else result.machine
    print(f"answer:        {machine.answer}")
    print(f"reductions:    {machine.reductions:,}")
    print(f"suspensions:   {machine.suspensions:,}")
    print(f"instructions:  {machine.instructions:,}")
    print(f"memory refs:   {machine.memory_refs:,}")
    print(f"heap words:    {machine.heap_words:,}")
    print(f"per-PE load:   {machine.pe_reductions}")
    if machine.gc_collections:
        print(f"collections:   {machine.gc_collections} "
              f"({machine.gc_words_reclaimed:,} words reclaimed)")
    stats = machine.stats
    if stats is not None:
        print(f"miss ratio:    {stats.miss_ratio:.4f}")
        print(f"bus cycles:    {stats.bus_cycles_total:,}")
        print(f"sim cycles:    {stats.total_cycles:,}")
    network = getattr(machine, "network", None)
    if network is not None:
        print(f"clusters:      {network.n_clusters}  "
              f"net msgs: {network.messages:,}  "
              f"net stall: {network.stall_cycles:,} cycles")


def _print_speculative_replay(trace, config, args) -> None:
    """Replay *trace* through the batch-coherence engine and print the
    speculative counters.

    Machine execution is access-driven, so ``run --mode lazypim``
    defines speculation as a property of the recorded reference stream:
    the run itself is simulated per-access, then its trace is replayed
    speculatively (docs/SPECULATIVE.md).
    """
    kwargs = _mode_kwargs(args)
    if config.cluster.n_clusters > 1:
        from repro.cluster.replay import replay_clustered

        stats = replay_clustered(trace, config, **kwargs).stats
    else:
        stats = replay(trace, config, **kwargs)
    print(f"speculative replay ({args.mode}) of the recorded trace:")
    print(f"  commits:    {stats.batch_commits:,}   "
          f"rollbacks: {stats.batch_rollbacks:,}")
    print(f"  settles:    {stats.signature_settles:,}   "
          f"elided invalidations: {stats.batch_elided_invalidations:,}")
    print(f"  bus cycles: {stats.bus_cycles_total:,}")


def cmd_run(args) -> int:
    machine_config = MachineConfig(
        n_pes=args.pes, seed=args.seed, gc_threshold_words=args.gc
    )
    if args.program in benchmark_names():
        result = run_benchmark(
            args.program,
            scale=args.scale,
            n_pes=args.pes,
            sim_config=_sim_config(args),
            machine_config=machine_config,
        )
        print(f"benchmark {args.program!r} at scale {args.scale!r} "
              f"on {args.pes} PEs  [answer verified]")
        _print_run_summary(result)
        if args.mode == "lazypim":
            _print_speculative_replay(result.trace, _sim_config(args), args)
        if args.output:
            write_trace(result.trace, args.output)
            print(f"trace written: {args.output} ({len(result.trace):,} refs)")
        return 0
    path = Path(args.program)
    if not path.exists():
        print(f"error: {args.program!r} is neither a benchmark "
              f"({', '.join(benchmark_names())}) nor a file", file=sys.stderr)
        return 2
    if not args.query:
        print("error: running a source file requires --query", file=sys.stderr)
        return 2
    machine = KL1Machine(path.read_text(), machine_config, _sim_config(args))
    result = machine.run(args.query)
    _print_run_summary(result)
    if args.mode == "lazypim" and result.trace is not None:
        _print_speculative_replay(result.trace, _sim_config(args), args)
    if args.output and result.trace is not None:
        write_trace(result.trace, args.output)
        print(f"trace written: {args.output} ({len(result.trace):,} refs)")
    return 0


def cmd_tables(args) -> int:
    workloads = Workloads(scale=args.scale)
    which = args.which.split(",") if args.which else list(TABLES)
    for key in which:
        builder = TABLES.get(key)
        if builder is None:
            print(f"error: unknown table {key!r} (choose from 1-5)",
                  file=sys.stderr)
            return 2
        print(builder(workloads).render())
        print()
    return 0


def cmd_figures(args) -> int:
    workloads = Workloads(scale=args.scale)
    which = args.which.split(",") if args.which else list(FIGURES)
    for key in which:
        builder = FIGURES.get(key)
        if builder is None:
            print(f"error: unknown figure {key!r} "
                  f"(choose from {', '.join(FIGURES)})", file=sys.stderr)
            return 2
        print(builder(workloads).render())
        print()
    return 0


def cmd_trace(args) -> int:
    if args.trace_command == "record":
        result = run_benchmark(args.benchmark, scale=args.scale, n_pes=args.pes)
        write_trace(result.trace, args.output)
        print(f"{args.benchmark}/{args.scale} on {args.pes} PEs: "
              f"{len(result.trace):,} refs -> {args.output}")
        return 0
    if args.trace_command == "convert":
        from repro.trace.io import is_chunked_trace, write_trace_chunked

        if is_chunked_trace(args.file):
            print(f"error: {args.file} is already a chunked trace",
                  file=sys.stderr)
            return 2
        buffer = read_trace(args.file)
        refs = write_trace_chunked(buffer, args.output, chunk_refs=args.chunk)
        n_chunks = -(-refs // args.chunk) if refs else 0
        print(f"converted {refs:,} refs into {n_chunks} chunk(s) "
              f"of <= {args.chunk:,} refs -> {args.output}")
        return 0
    buffer = read_trace(args.file)
    stats = replay(buffer, _sim_config(args), **_mode_kwargs(args))
    print(f"replayed {stats.total_refs:,} refs from {args.file}")
    print(f"miss ratio:  {stats.miss_ratio:.4f}")
    print(f"bus cycles:  {stats.bus_cycles_total:,}")
    print(f"swap-ins:    {stats.swap_ins:,}   swap-outs: {stats.swap_outs:,}")
    print(f"c2c:         {stats.c2c_transfers:,}")
    if args.mode == "lazypim":
        print(f"commits:     {stats.batch_commits:,}   "
              f"rollbacks: {stats.batch_rollbacks:,}")
        print(f"settles:     {stats.signature_settles:,}   "
              f"elided invalidations: {stats.batch_elided_invalidations:,}")
    return 0


def cmd_cache(args) -> int:
    from repro.analysis.runner import prune_trace_cache, trace_cache_stats

    if args.prune:
        stats = prune_trace_cache(args.max_bytes)
        print(f"pruned: {stats['removed']} trace(s), "
              f"{stats['removed_bytes']:,} bytes reclaimed")
    else:
        stats = trace_cache_stats()
    if not stats["enabled"]:
        print("trace cache: disabled (REPRO_TRACE_CACHE=off)")
        return 0
    limit = stats["limit_bytes"]
    print(f"trace cache: {stats['dir']}")
    print(f"  files:  {stats['files']}")
    print(f"  bytes:  {stats['total_bytes']:,}")
    print(f"  limit:  {'unbounded' if limit == 0 else f'{limit:,}'}"
          "  (REPRO_TRACE_CACHE_BYTES)")
    return 0


def _serve_trace_source(args):
    """Resolve a serve-submit source into a TraceBuffer or a path."""
    if args.benchmark:
        workloads = Workloads(scale=args.scale)
        return workloads.trace(args.benchmark, args.pes), args.pes
    return args.trace, (args.pes if args.pes else None)


def cmd_serve(args) -> int:
    from repro.serve.jobs import JobError, JobServer, JobStore

    store = JobStore(args.store)
    if args.serve_command == "submit":
        trace, pes = _serve_trace_source(args)
        try:
            job_id = store.submit(
                _sim_config(args),
                trace,
                n_pes=pes,
                chunk_refs=args.chunk,
                checkpoint_every=args.checkpoint_every,
                max_retries=args.max_retries,
                kernel=None if args.kernel == "auto" else args.kernel,
                seed=args.seed,
                mode=None if args.mode == "pessimistic" else args.mode,
                batch_refs=args.batch_refs,
                signature_bits=args.signature_bits,
            )
        except JobError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        record = store.job(job_id)
        print(f"submitted: {job_id}")
        print(f"  trace:  {record['trace']} ({record['n_pes']} PEs)")
        print(f"  chunks: {record['chunk_refs']:,} refs, checkpoint every "
              f"{record['checkpoint_every']}, {record['max_retries']} retries")
        return 0
    if args.serve_command == "run":
        server = JobServer(store)
        if args.job:
            finished = [server.run_job(args.job)["id"]]
        else:
            finished = server.run_pending()
        if not finished:
            print("no queued or checkpointed jobs")
            return 0
        failed = 0
        for job_id in finished:
            record = store.job(job_id)
            line = f"{job_id}: {record['state']}"
            if record["retries"]:
                line += f" (retries: {record['retries']})"
            if record["state"] == "failed":
                failed += 1
                line += f" — {record['error']['detail']}"
            print(line)
        return 1 if failed else 0
    if args.serve_command == "status":
        records = [store.job(args.job)] if args.job else store.jobs()
        if not records:
            print("no jobs submitted")
            return 0
        for record in records:
            print(f"{record['id']}: {record['state']} "
                  f"(retries {record['retries']}/{record['max_retries']})")
            if record["error"]:
                print(f"  error: [{record['error']['kind']}] "
                      f"{record['error']['detail']}")
            beats = store.heartbeats(record["id"])
            if beats:
                last = beats[-1]
                total = last["refs_total"] or 0
                done = last["refs_done"]
                pct = f" ({100 * done / total:.1f}%)" if total else ""
                print(f"  progress: {done:,}/{total:,} refs{pct}, "
                      f"window miss ratio {last['miss_ratio']:.4f}, "
                      f"{len(beats)} heartbeat(s)")
        return 0
    # result
    import json

    record = store.job(args.job)
    result = store.result(args.job)
    if result is None:
        print(f"error: job {args.job!r} has no result yet "
              f"(state: {record['state']})", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_listing(args) -> int:
    if args.program in benchmark_names():
        from repro.programs import get

        source = get(args.program).source
    else:
        path = Path(args.program)
        if not path.exists():
            print(f"error: no such benchmark or file: {args.program!r}",
                  file=sys.stderr)
            return 2
        source = path.read_text()
    print(compile_program(source).listing())
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(scale=args.scale)
    if args.output:
        Path(args.output).write_text(text)
        print(f"report written: {args.output}")
    else:
        print(text)
    return 0


def cmd_bench(args) -> int:
    import json

    from repro.analysis import bench

    if args.repeats is not None and args.repeats < 1:
        print("error: --repeats must be at least 1", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 2:
        print("error: --jobs must be at least 2 (the sweep is timed "
              "against a serial jobs=1 run)", file=sys.stderr)
        return 2
    if args.clusters < 2 or 8 % args.clusters != 0:
        print("error: --clusters must be 2, 4 or 8 (the clustered section "
              "shards the 8-PE hot trace)", file=sys.stderr)
        return 2
    # The previously written report (if any) is the no-sink-overhead
    # reference; read it before write_report replaces it.
    recorded = None
    recorded_path = Path(args.output)
    if recorded_path.exists():
        try:
            recorded = json.loads(recorded_path.read_text())
        except (OSError, ValueError):
            recorded = None
    if args.assert_overhead is not None and recorded is None:
        print(f"error: --assert-overhead needs an existing recorded "
              f"report at {args.output}", file=sys.stderr)
        return 2
    report = bench.run_bench(
        quick=args.quick,
        jobs=args.jobs,
        repeats=args.repeats,
        recorded=recorded,
        overhead_bound=(
            args.assert_overhead if args.assert_overhead is not None else 0.95
        ),
        clusters=args.clusters,
        interconnect=args.interconnect,
        mode=args.mode,
        batch_refs=args.batch_refs,
        signature_bits=args.signature_bits,
    )
    print(bench.format_report(report))
    path = bench.write_report(report, args.output)
    print(f"benchmark report written: {path}")
    regressed = False
    if args.history or args.compare:
        from repro.analysis import history as history_module

        history_path = args.history or history_module.DEFAULT_HISTORY
        record = history_module.history_record(report)
        if args.compare:
            # Compare against what's already there, then append — the
            # fresh run must not be its own baseline.
            prior = history_module.load_history(history_path)
            comparison = history_module.compare_to_history(record, prior)
            print(history_module.format_comparison(comparison))
            regressed = comparison["regressed"]
        history_module.append_history(record, history_path)
        print(f"bench history appended: {history_path}")
    if args.assert_overhead is not None:
        overhead = report.get("no_sink_overhead") or {}
        if not overhead.get("within_bound", False):
            print(f"error: no-sink overhead bound violated: worst ratio "
                  f"{overhead.get('min_ratio')} < {args.assert_overhead}",
                  file=sys.stderr)
            return 1
    if args.assert_sweep:
        sweep = report.get("sweep") or {}
        speedup = sweep.get("parallel_speedup")
        if speedup == "skipped":
            # Explicitly recorded as untimeable (single usable CPU);
            # identity was still checked, so there is nothing to fail.
            print("note: sweep speedup assertion skipped "
                  f"({sweep.get('skip_reason', 'single usable CPU')})")
        elif not isinstance(speedup, (int, float)) or speedup < 1.0:
            print(f"error: sweep parallel_speedup {speedup} < 1.0 — the "
                  f"persistent pool must not lose to serial on a "
                  f"multi-CPU host", file=sys.stderr)
            return 1
    if regressed:
        print("error: bench regressed against the same-host history "
              "(see the comparison above)", file=sys.stderr)
        return 1
    return 0


def _replay_source(args):
    """Resolve a profile/events source into (buffer, name, pes, key).

    ``--benchmark`` goes through the :class:`Workloads` trace cache
    (recording its cache key for the manifest); ``--trace`` reads a
    recorded trace file.
    """
    if args.benchmark:
        workloads = Workloads(scale=args.scale)
        buffer = workloads.trace(args.benchmark, args.pes)
        name = f"{args.benchmark}-{args.scale}-{args.pes}pe"
        return buffer, name, args.pes, workloads.cache_key(
            args.benchmark, args.pes
        )
    buffer = read_trace(args.trace)
    pes = args.pes if args.pes else buffer.n_pes
    return buffer, Path(args.trace).stem, pes, None


def cmd_profile(args) -> int:
    from repro.obs.profile import profile_trace, write_profile

    buffer, name, pes, cache_key = _replay_source(args)
    result = profile_trace(
        buffer,
        config=_sim_config(args),
        n_pes=pes,
        window=args.window,
        event_capacity=args.events,
        top_blocks=args.top,
        trace_cache_key=cache_key,
    )
    paths = write_profile(result, args.out_dir, name)
    stats = result.stats
    print(f"profiled {stats.total_refs:,} refs on {pes} PEs "
          f"in {result.wall_seconds:.2f}s")
    busy = (stats.bus_cycles_total / stats.total_cycles
            if stats.total_cycles else 0.0)
    print(f"miss ratio:  {stats.miss_ratio:.4f}   "
          f"bus utilization: {busy:.4f}")
    dropped = (f" ({result.events_dropped:,} dropped)"
               if result.events_dropped else "")
    print(f"events:      {result.events_emitted:,} emitted{dropped}, "
          f"{len(result.windows)} windows of {args.window:,} refs")
    for kind in ("trace", "windows", "events", "hotness", "manifest"):
        print(f"  {kind:>9}: {paths[kind]}")
    print("open the .trace.json in https://ui.perfetto.dev "
          "(or chrome://tracing)")
    return 0


def cmd_metrics(args) -> int:
    import json

    from repro.obs.metrics import (
        MetricsRegistry,
        cycle_ledger,
        format_ledger,
        metrics_record,
        write_openmetrics,
    )
    from repro.obs.manifest import build_manifest
    from repro.obs.schema import validate_metrics

    buffer, name, pes, cache_key = _replay_source(args)
    config = _sim_config(args)
    import time as time_module

    started = time_module.perf_counter()
    if config.cluster.n_clusters > 1:
        from repro.analysis.parallel import run_clustered

        clustered = run_clustered(buffer, config, n_pes=pes, jobs=1)
        stats, network = clustered.stats, clustered.network
    else:
        stats = replay(buffer, config, n_pes=pes, kernel=args.kernel)
        network = None
    wall = time_module.perf_counter() - started
    ledger = cycle_ledger(stats, network=network)
    if args.openmetrics:
        registry = MetricsRegistry()
        ledger.to_registry(
            registry,
            source=name,
            protocol=config.protocol,
            kernel=args.kernel,
        )
        path = write_openmetrics(registry, args.openmetrics)
        print(f"openmetrics written: {path}")
    if args.json or args.output:
        record = metrics_record(
            ledger,
            manifest=build_manifest(
                config=config,
                trace_cache_key=cache_key,
                wall_seconds=round(wall, 3),
                command="metrics",
                extra={"kind": "metrics", "source": name, "refs": len(buffer),
                       "n_pes": pes, "kernel": args.kernel},
            ),
        )
        validate_metrics(record)
        text = json.dumps(record, indent=2)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"metrics written: {args.output}")
        else:
            print(text)
        return 0
    print(f"cycle ledger for {name} ({len(buffer):,} refs, {pes} PEs, "
          f"{config.protocol}, kernel={args.kernel})")
    print(format_ledger(ledger))
    return 0


def cmd_sweep(args) -> int:
    import json

    from repro.analysis.parallel import default_jobs, run_sweep_report
    from repro.core.config import CacheConfig as _CacheConfig
    from repro.obs.telemetry import SweepTelemetry, format_heartbeat

    if args.points < 1:
        print("error: --points must be at least 1", file=sys.stderr)
        return 2
    buffer, name, pes, cache_key = _replay_source(args)
    configs = [
        SimulationConfig(
            cache=_CacheConfig(n_sets=64 << i), protocol=args.protocol
        )
        for i in range(args.points)
    ]
    jobs = args.jobs if args.jobs is not None else default_jobs()
    on_heartbeat = None
    if args.progress:
        def on_heartbeat(record):
            print(format_heartbeat(record), flush=True)
    with SweepTelemetry(
        interval_seconds=args.interval,
        chunk_refs=args.chunk,
        on_heartbeat=on_heartbeat,
        use_processes=jobs > 1,
    ) as telemetry:
        report = run_sweep_report(
            buffer,
            configs,
            jobs=jobs,
            trace_cache_key=cache_key,
            telemetry=telemetry,
        )
    summary = report["manifest"]["extra"]["telemetry"]
    print(f"sweep of {name}: {len(configs)} points x {len(buffer):,} refs "
          f"on {min(jobs, len(configs))} worker(s) "
          f"in {report['wall_seconds']:.2f}s")
    print(f"telemetry: {summary['heartbeats']} heartbeats, "
          f"{summary['points_completed']} points completed, "
          f"{summary['stall_events']} stall warnings")
    for config, point in zip(configs, report["points"]):
        stats = point["stats"]
        print(f"  {config.cache.n_sets:>5} sets: "
              f"miss ratio {stats['miss_ratio']:.4f}, "
              f"bus {stats['bus_cycles_total']:,} cycles "
              f"[{point['config_hash']}]")
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"sweep report written: {args.output}")
    return 0


def cmd_events(args) -> int:
    from repro.obs.events import EVENT_KIND_NAMES
    from repro.obs.probe import ProtocolProbe
    from repro.obs.sink import CollectorSink, write_events_jsonl
    from repro.obs.windows import windowed_replay

    buffer, name, pes, _ = _replay_source(args)
    sink = CollectorSink()
    windowed_replay(
        buffer, _sim_config(args), n_pes=pes, probe=ProtocolProbe(sink)
    )
    events = sink.events
    if args.kind:
        wanted = {k.strip().lower() for k in args.kind.split(",")}
        unknown = wanted - set(EVENT_KIND_NAMES)
        if unknown:
            print(f"error: unknown event kind(s) {', '.join(sorted(unknown))} "
                  f"(choose from {', '.join(EVENT_KIND_NAMES)})",
                  file=sys.stderr)
            return 2
        events = [e for e in events if EVENT_KIND_NAMES[e.kind] in wanted]
    if args.output:
        path = write_events_jsonl(events, args.output)
        print(f"{len(events):,} events written: {path}")
        return 0
    shown = events if args.limit <= 0 else events[: args.limit]
    for event in shown:
        print(event.format())
    if len(shown) < len(events):
        print(f"... {len(events) - len(shown):,} more "
              f"(raise --limit or use -o to export all)")
    return 0


def cmd_protocols(args) -> int:
    from repro.analysis.formatting import format_table

    if args.spec:
        try:
            spec = get_protocol(args.spec)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        print(spec.render_table())
        if getattr(args, "interconnect", "bus") == "directory":
            from repro.core.protocol import build_directory_spec

            print()
            print(build_directory_spec(spec).render_table())
        print()
        print(spec.description)
        return 0
    rows = []
    for name in protocol_names():
        summary = get_protocol(name).summary()
        rows.append((
            summary["name"],
            summary["title"],
            summary["write_policy"],
            "yes" if summary["write_allocate"] else "no",
            ",".join(summary["silent_store_states"]) or "-",
            "yes" if summary["dirty_transfer_copyback"] else "no",
        ))
    print(format_table(
        ("name", "title", "write policy", "allocate",
         "silent stores", "dirty c2c copyback"),
        rows,
        title="Registered coherence protocols "
              "(`repro protocols --spec NAME` for the transition table)",
    ))
    return 0


def cmd_compare(args) -> int:
    import json

    from repro.analysis.protocols import (
        comparison_report,
        format_protocol_comparison,
        protocol_comparison,
    )
    from repro.obs.schema import validate_comparison

    if args.protocol:
        protocols = [p.strip() for p in args.protocol.split(",") if p.strip()]
        unknown = [p for p in protocols if not is_registered(p)]
        if unknown:
            print(f"error: unknown protocol(s) {', '.join(unknown)} "
                  f"(choose from {', '.join(protocol_names())})",
                  file=sys.stderr)
            return 2
    else:
        protocols = None
    buffer, name, pes, cache_key = _replay_source(args)
    cache = CacheConfig.from_capacity(
        args.capacity, block_words=args.block_words, associativity=args.ways
    )
    opts = OptimizationConfig.none() if args.no_opt else OptimizationConfig.all()
    base = _apply_clusters(
        SimulationConfig(
            cache=cache,
            bus=BusConfig(width_words=args.bus_width),
            opts=opts,
            interconnect=getattr(args, "interconnect", "bus"),
        ),
        args,
    )
    comparison = protocol_comparison(
        buffer, base, protocols, n_pes=pes, **_mode_kwargs(args)
    )
    if args.json or args.output:
        report = comparison_report(
            comparison,
            base=base,
            extra={"source": name, "refs": len(buffer), "pes": pes,
                   "trace_cache_key": cache_key, "mode": args.mode},
        )
        validate_comparison(report)
        text = json.dumps(report, indent=2)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"comparison written: {args.output}")
        else:
            print(text)
        return 0
    print(format_protocol_comparison(
        comparison,
        title=f"Cross-protocol comparison on {name} "
              f"({len(buffer):,} refs, {pes} PEs)",
    ))
    return 0


def cmd_verify(args) -> int:
    import json
    import time

    from repro.obs.manifest import build_manifest
    from repro.obs.schema import VERIFY_SCHEMA, validate_verify
    from repro.verify import ModelCheckOptions, check_protocol, run_fuzz
    from repro.verify.model import broken_demo_spec

    if args.all and args.protocol:
        print("error: --all and --protocol are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.protocol:
        names = [p.strip() for p in args.protocol.split(",") if p.strip()]
        unknown = [p for p in names if not is_registered(p)]
        if unknown:
            print(f"error: unknown protocol(s) {', '.join(unknown)} "
                  f"(choose from {', '.join(protocol_names())})",
                  file=sys.stderr)
            return 2
    else:
        names = list(protocol_names())
    try:
        cluster_counts = tuple(
            int(k) for k in args.clusters.split(",") if k.strip()
        )
    except ValueError:
        print(f"error: --clusters expects comma-separated integers, "
              f"got {args.clusters!r}", file=sys.stderr)
        return 2

    started = time.time()
    results = []
    fuzz_report = None
    clean = True
    try:
        if args.demo_broken:
            # Demonstrate the counterexample printer on a spec whose
            # supplier table drops a dirty state without copyback.
            results.append(check_protocol(broken_demo_spec()))
            clean = results[-1].clean  # False by construction
        else:
            if not args.fuzz_only:
                options = ModelCheckOptions(
                    n_pes=args.pes,
                    n_blocks=args.blocks,
                    block_words=args.words,
                    max_states=args.max_states,
                    interconnect=args.interconnect or "bus",
                )
                for name in names:
                    result = check_protocol(name, options)
                    results.append(result)
                    clean = clean and result.clean
            if args.fuzz or args.fuzz_only:
                modes = (
                    ("pessimistic", "lazypim")
                    if args.mode == "both"
                    else (args.mode,)
                )
                fuzz_report = run_fuzz(
                    seed=args.seed,
                    budget=args.budget,
                    n_pes=args.fuzz_pes,
                    refs_per_case=args.refs_per_case,
                    cluster_counts=cluster_counts,
                    protocols=names if args.protocol else None,
                    interconnect=args.interconnect,
                    modes=modes,
                )
                clean = clean and fuzz_report.clean
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    wall = time.time() - started

    if args.json or args.output:
        report = {
            "schema": VERIFY_SCHEMA,
            "clean": clean,
            "model_check": [r.as_dict() for r in results] or None,
            "fuzz": fuzz_report.as_dict() if fuzz_report else None,
            "manifest": build_manifest(
                seed=args.seed,
                wall_seconds=wall,
                command="verify",
                extra={"kind": "verify"},
            ),
        }
        validate_verify(report)
        text = json.dumps(report, indent=2)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"verification report written: {args.output}")
        else:
            print(text)
        return 0 if clean else 1
    for result in results:
        print(result.render())
    if fuzz_report is not None:
        print(fuzz_report.render())
    verdict = "clean" if clean else "FAILED"
    print(f"verify: {verdict} in {wall:.1f}s")
    return 0 if clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIM coherent cache reproduction (ISCA 1989)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="library log level: -v INFO, -vv DEBUG "
                             "(goes before the subcommand)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only log errors")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run a benchmark or an FGHC source file"
    )
    run_parser.add_argument("program",
                            help="benchmark name (tri/semi/puzzle/pascal) or .fghc path")
    run_parser.add_argument("--query", help="query goal for source files")
    run_parser.add_argument("--scale", default="small",
                            choices=["tiny", "small", "medium", "paper"])
    run_parser.add_argument("--pes", type=int, default=8)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--gc", type=int, default=None,
                            help="per-PE heap words triggering stop-and-copy GC")
    run_parser.add_argument("--output", "-o", help="write the trace to a file")
    _add_cache_options(run_parser)
    _add_cluster_options(run_parser)
    _add_mode_options(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    tables_parser = commands.add_parser("tables", help="regenerate Tables 1-5")
    tables_parser.add_argument("--scale", default="small",
                               choices=["tiny", "small", "medium", "paper"])
    tables_parser.add_argument("--which", help="comma-separated subset, e.g. 2,4")
    tables_parser.set_defaults(handler=cmd_tables)

    figures_parser = commands.add_parser("figures",
                                         help="regenerate Figures 1-3 and sweeps")
    figures_parser.add_argument("--scale", default="small",
                                choices=["tiny", "small", "medium", "paper"])
    figures_parser.add_argument("--which",
                                help="comma-separated subset of "
                                     "1,2,3,assoc,width,details")
    figures_parser.set_defaults(handler=cmd_figures)

    trace_parser = commands.add_parser("trace", help="record or replay traces")
    trace_commands = trace_parser.add_subparsers(dest="trace_command",
                                                 required=True)
    record = trace_commands.add_parser("record")
    record.add_argument("benchmark", choices=list(benchmark_names()))
    record.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "paper"])
    record.add_argument("--pes", type=int, default=8)
    record.add_argument("--output", "-o", required=True)
    record.set_defaults(handler=cmd_trace)
    replay_parser = trace_commands.add_parser("replay")
    replay_parser.add_argument("file")
    _add_cache_options(replay_parser)
    _add_mode_options(replay_parser)
    replay_parser.set_defaults(handler=cmd_trace)
    convert = trace_commands.add_parser(
        "convert",
        help="convert a flat trace file into the streamable chunked "
             "container",
    )
    convert.add_argument("file", help="flat trace file to convert")
    convert.add_argument("--output", "-o", required=True)
    convert.add_argument("--chunk", type=int, default=65536,
                         help="references per chunk (default 65536)")
    convert.set_defaults(handler=cmd_trace)

    serve_parser = commands.add_parser(
        "serve",
        help="the async simulation job service: submit jobs to a "
             "directory-backed ledger, run them in supervised workers "
             "that checkpoint and survive being killed, poll status "
             "and fetch results (docs/SERVE.md)",
    )
    serve_parser.add_argument("--store", default="serve",
                              help="job-store directory (default ./serve)")
    serve_commands = serve_parser.add_subparsers(dest="serve_command",
                                                 required=True)
    submit = serve_commands.add_parser(
        "submit", help="enqueue one simulation (config + trace)"
    )
    submit_source = submit.add_mutually_exclusive_group(required=True)
    submit_source.add_argument("--benchmark",
                               choices=list(benchmark_names()),
                               help="simulate a paper benchmark's trace "
                                    "(via the trace cache)")
    submit_source.add_argument("--trace",
                               help="simulate a recorded trace file "
                                    "(flat or chunked)")
    submit.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "paper"])
    submit.add_argument("--pes", type=int, default=8,
                        help="PE count (with --trace, 0 means the "
                             "trace's own)")
    submit.add_argument("--chunk", type=int, default=8192,
                        help="references per replay chunk — the "
                             "heartbeat cadence (default 8192)")
    submit.add_argument("--checkpoint-every", type=int, default=4,
                        help="chunks between checkpoints (default 4)")
    submit.add_argument("--max-retries", type=int, default=2,
                        help="worker deaths tolerated before the job "
                             "fails (default 2)")
    submit.add_argument("--kernel", default="auto",
                        choices=["auto", "generated", "interpreted"],
                        help="replay kernel (default auto)")
    submit.add_argument("--seed", type=int, default=None,
                        help="seed recorded in the provenance manifest")
    _add_cache_options(submit)
    _add_cluster_options(submit)
    _add_mode_options(submit)
    submit.set_defaults(handler=cmd_serve)
    serve_run = serve_commands.add_parser(
        "run", help="run queued/checkpointed jobs under the supervisor"
    )
    serve_run.add_argument("job", nargs="?",
                           help="one job id (default: all pending)")
    serve_run.set_defaults(handler=cmd_serve)
    serve_status = serve_commands.add_parser(
        "status", help="show the ledger (or one job's progress)"
    )
    serve_status.add_argument("job", nargs="?",
                              help="one job id (default: all jobs)")
    serve_status.set_defaults(handler=cmd_serve)
    serve_result = serve_commands.add_parser(
        "result", help="print a finished job's result record"
    )
    serve_result.add_argument("job")
    serve_result.set_defaults(handler=cmd_serve)

    cache_parser = commands.add_parser(
        "cache",
        help="inspect or prune the Workloads disk trace cache",
    )
    cache_parser.add_argument("--stats", action="store_true",
                              help="print cache occupancy (the default "
                                   "action, spelled out for scripts)")
    cache_parser.add_argument("--prune", action="store_true",
                              help="evict least-recently-used traces "
                                   "until the cache fits the limit")
    cache_parser.add_argument("--max-bytes", type=int, default=None,
                              help="with --prune, override the limit "
                                   "(default REPRO_TRACE_CACHE_BYTES)")
    cache_parser.set_defaults(handler=cmd_cache)

    listing_parser = commands.add_parser(
        "listing", help="show a program's compiled abstract-machine code"
    )
    listing_parser.add_argument("program")
    listing_parser.set_defaults(handler=cmd_listing)

    report_parser = commands.add_parser(
        "report", help="regenerate the full experiment report"
    )
    report_parser.add_argument("--scale", default="small",
                               choices=["tiny", "small", "medium", "paper"])
    report_parser.add_argument("--output", "-o",
                               help="write to a file instead of stdout")
    report_parser.set_defaults(handler=cmd_report)

    bench_parser = commands.add_parser(
        "bench", help="measure replay throughput and sweep wall time"
    )
    bench_parser.add_argument("--quick", action="store_true",
                              help="smaller workloads, no emulated trace "
                                   "(CI smoke mode)")
    bench_parser.add_argument("--jobs", type=int, default=None,
                              help="worker count for the parallel sweep "
                                   "(default: min(4, cpus), at least 2)")
    bench_parser.add_argument("--repeats", type=int, default=None,
                              help="repeats per measurement "
                                   "(default: 5, or 3 with --quick)")
    bench_parser.add_argument("--output", "-o", default="BENCH_replay.json",
                              help="report path (default BENCH_replay.json)")
    bench_parser.add_argument("--assert-overhead", type=float, nargs="?",
                              const=0.95, default=None, metavar="RATIO",
                              help="fail (exit 1) if any workload's refs/sec "
                                   "drops below RATIO (default 0.95) of the "
                                   "recorded report at --output")
    bench_parser.add_argument("--assert-sweep", action="store_true",
                              help="fail (exit 1) if the persistent-pool "
                                   "sweep is slower than serial "
                                   "(parallel_speedup < 1.0) on a "
                                   "multi-CPU host")
    bench_parser.add_argument("--clusters", type=int, default=2,
                              help="cluster count for the clustered-replay "
                                   "section (default 2)")
    bench_parser.add_argument("--interconnect", default="bus",
                              help="interconnect backend the replay "
                                   "measurements run under (default bus)")
    bench_parser.add_argument("--compare", action="store_true",
                              help="diff this run against the same-host "
                                   "bench history (noise-aware threshold) "
                                   "before appending it; exit 1 on "
                                   "regression")
    bench_parser.add_argument("--history", metavar="PATH", default=None,
                              help="history JSONL path (default "
                                   "BENCH_history.jsonl; appended whenever "
                                   "given or --compare is set)")
    _add_mode_options(bench_parser)
    bench_parser.set_defaults(handler=cmd_bench)

    profile_parser = commands.add_parser(
        "profile",
        help="replay with the protocol probe attached and write the "
             "observability bundle",
    )
    profile_source = profile_parser.add_mutually_exclusive_group(required=True)
    profile_source.add_argument("--benchmark",
                                choices=list(benchmark_names()),
                                help="profile a paper benchmark's trace "
                                     "(via the trace cache)")
    profile_source.add_argument("--trace", help="profile a recorded trace file")
    profile_parser.add_argument("--scale", default="small",
                                choices=["tiny", "small", "medium", "paper"])
    profile_parser.add_argument("--pes", type=int, default=8,
                                help="PE count (with --trace, 0 means "
                                     "the trace's own)")
    profile_parser.add_argument("--window", type=int, default=4096,
                                help="references per metrics window "
                                     "(default 4096)")
    profile_parser.add_argument("--events", type=int, default=65536,
                                help="event ring capacity; oldest events "
                                     "drop past this (default 65536)")
    profile_parser.add_argument("--top", type=int, default=20,
                                help="blocks kept in the hotness report "
                                     "(default 20)")
    profile_parser.add_argument("--out-dir", default="profile",
                                help="artifact directory (default ./profile)")
    _add_cache_options(profile_parser)
    profile_parser.set_defaults(handler=cmd_profile)

    metrics_parser = commands.add_parser(
        "metrics",
        help="replay and print the cycle ledger (every PE cycle "
             "attributed, sums checked against the PE clocks)",
    )
    metrics_source = metrics_parser.add_mutually_exclusive_group(required=True)
    metrics_source.add_argument("--benchmark",
                                choices=list(benchmark_names()),
                                help="meter a paper benchmark's trace "
                                     "(via the trace cache)")
    metrics_source.add_argument("--trace",
                                help="meter a recorded trace file")
    metrics_parser.add_argument("--scale", default="small",
                                choices=["tiny", "small", "medium", "paper"])
    metrics_parser.add_argument("--pes", type=int, default=8,
                                help="PE count (with --trace, 0 means "
                                     "the trace's own)")
    metrics_parser.add_argument("--kernel", default="auto",
                                choices=["auto", "generated", "interpreted"],
                                help="replay kernel (default auto; ignored "
                                     "with --clusters > 1)")
    metrics_parser.add_argument("--json", action="store_true",
                                help="emit the schema-validated "
                                     "repro.obs/metrics/v1 JSON instead of "
                                     "the table")
    metrics_parser.add_argument("--output", "-o",
                                help="write the JSON record to a file "
                                     "(implies --json)")
    metrics_parser.add_argument("--openmetrics", metavar="PATH",
                                help="also write an OpenMetrics text "
                                     "exposition of the ledger")
    _add_cache_options(metrics_parser)
    _add_cluster_options(metrics_parser)
    metrics_parser.set_defaults(handler=cmd_metrics)

    sweep_parser = commands.add_parser(
        "sweep",
        help="run a capacity sweep over worker processes with live "
             "fleet telemetry",
    )
    sweep_source = sweep_parser.add_mutually_exclusive_group(required=True)
    sweep_source.add_argument("--benchmark",
                              choices=list(benchmark_names()),
                              help="sweep a paper benchmark's trace "
                                   "(via the trace cache)")
    sweep_source.add_argument("--trace", help="sweep a recorded trace file")
    sweep_parser.add_argument("--scale", default="small",
                              choices=["tiny", "small", "medium", "paper"])
    sweep_parser.add_argument("--pes", type=int, default=8,
                              help="PE count (with --trace, 0 means "
                                   "the trace's own)")
    sweep_parser.add_argument("--points", type=int, default=4,
                              help="capacity points, doubling set counts "
                                   "from 64 (default 4)")
    sweep_parser.add_argument("--protocol", default="pim",
                              choices=list(protocol_names()),
                              help="coherence protocol for every point")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="worker processes (default: one per "
                                   "usable CPU; 1 = in-process)")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print a line per worker heartbeat")
    sweep_parser.add_argument("--interval", type=float, default=0.5,
                              help="seconds between worker heartbeats "
                                   "(default 0.5)")
    sweep_parser.add_argument("--chunk", type=int, default=32768,
                              help="references per worker replay chunk — "
                                   "the heartbeat check cadence "
                                   "(default 32768)")
    sweep_parser.add_argument("--output", "-o",
                              help="write the JSON sweep report "
                                   "(points + telemetry manifest)")
    sweep_parser.set_defaults(handler=cmd_sweep)

    events_parser = commands.add_parser(
        "events", help="print or export a replay's protocol event stream"
    )
    events_source = events_parser.add_mutually_exclusive_group(required=True)
    events_source.add_argument("--benchmark",
                               choices=list(benchmark_names()),
                               help="replay a paper benchmark's trace")
    events_source.add_argument("--trace", help="replay a recorded trace file")
    events_parser.add_argument("--scale", default="small",
                               choices=["tiny", "small", "medium", "paper"])
    events_parser.add_argument("--pes", type=int, default=8)
    events_parser.add_argument("--kind",
                               help="comma-separated filter: transition, bus, "
                                    "demotion, purge, lock")
    events_parser.add_argument("--limit", type=int, default=50,
                               help="events printed (0 = all; default 50)")
    events_parser.add_argument("--output", "-o",
                               help="write JSONL instead of printing")
    _add_cache_options(events_parser)
    events_parser.set_defaults(handler=cmd_events)

    protocols_parser = commands.add_parser(
        "protocols", help="list the registered coherence protocols"
    )
    protocols_parser.add_argument("--spec", metavar="NAME",
                                  help="render one protocol's transition "
                                       "table instead of the listing")
    protocols_parser.add_argument("--interconnect", default="bus",
                                  help="with --spec, 'directory' also "
                                       "renders the derived home-node "
                                       "directory table (default bus)")
    protocols_parser.set_defaults(handler=cmd_protocols)

    compare_parser = commands.add_parser(
        "compare",
        help="replay one trace under several protocols and compare",
    )
    compare_source = compare_parser.add_mutually_exclusive_group(required=True)
    compare_source.add_argument("--benchmark",
                                choices=list(benchmark_names()),
                                help="compare on a paper benchmark's trace "
                                     "(via the trace cache)")
    compare_source.add_argument("--trace",
                                help="compare on a recorded trace file")
    compare_parser.add_argument("--scale", default="small",
                                choices=["tiny", "small", "medium", "paper"])
    compare_parser.add_argument("--pes", type=int, default=8,
                                help="PE count (with --trace, 0 means "
                                     "the trace's own)")
    compare_parser.add_argument("--protocol", metavar="A,B,...",
                                help="comma-separated protocols to compare "
                                     "(default: every registered protocol)")
    compare_parser.add_argument("--json", action="store_true",
                                help="emit the schema-validated "
                                     "repro.obs/comparison/v1 JSON instead "
                                     "of the table")
    compare_parser.add_argument("--output", "-o",
                                help="write the JSON comparison to a file "
                                     "(implies --json)")
    _add_cache_options(compare_parser, protocol=False)
    _add_cluster_options(compare_parser)
    _add_mode_options(compare_parser)
    compare_parser.set_defaults(handler=cmd_compare)

    verify_parser = commands.add_parser(
        "verify",
        help="model-check the protocol specs and differentially fuzz "
             "every replay path against a flat-memory oracle",
    )
    verify_parser.add_argument("--all", action="store_true",
                               help="model-check every registered protocol "
                                    "(the default; spelled out for scripts)")
    verify_parser.add_argument("--protocol", metavar="A,B,...",
                               help="comma-separated protocols to verify "
                                    "(default: every registered protocol)")
    verify_parser.add_argument("--fuzz", action="store_true",
                               help="also run the differential fuzzer "
                                    "after model checking")
    verify_parser.add_argument("--fuzz-only", action="store_true",
                               help="skip model checking, only fuzz")
    verify_parser.add_argument("--seed", type=int, default=0,
                               help="fuzzer base seed (default 0)")
    verify_parser.add_argument("--budget", type=int, default=10_000,
                               help="fuzzer reference budget "
                                    "(default 10000)")
    verify_parser.add_argument("--pes", type=int, default=2,
                               help="model-check PE count (default 2)")
    verify_parser.add_argument("--blocks", type=int, default=1,
                               help="model-check blocks per cache "
                                    "(default 1)")
    verify_parser.add_argument("--words", type=int, default=2,
                               help="model-check words per block, a power "
                                    "of two (default 2)")
    verify_parser.add_argument("--max-states", type=int, default=200_000,
                               help="abort the state enumeration past this "
                                    "many states (default 200000)")
    verify_parser.add_argument("--fuzz-pes", type=int, default=4,
                               help="fuzzer PE count (default 4)")
    verify_parser.add_argument("--refs-per-case", type=int, default=2_000,
                               help="references per fuzz case "
                                    "(default 2000)")
    verify_parser.add_argument("--clusters", default="1,2",
                               metavar="K,K,...",
                               help="cluster counts the fuzzer cross-checks "
                                    "(default 1,2)")
    verify_parser.add_argument("--interconnect", default=None,
                               help="force one interconnect backend in "
                                    "both the model check and the fuzzer "
                                    "(default: check the bus, rotate the "
                                    "fuzz variants)")
    verify_parser.add_argument("--mode", default="pessimistic",
                               choices=["pessimistic", "lazypim", "both"],
                               help="execution mode(s) the fuzzer rotates "
                                    "over — 'lazypim' adds the speculative "
                                    "batch-coherence cases including a "
                                    "forced-conflict rollback drill "
                                    "(default pessimistic)")
    verify_parser.add_argument("--demo-broken", action="store_true",
                               help="model-check a deliberately broken pim "
                                    "variant and print its counterexample "
                                    "(exits 1)")
    verify_parser.add_argument("--json", action="store_true",
                               help="emit the schema-validated "
                                    "repro.obs/verify/v1 JSON instead of "
                                    "text")
    verify_parser.add_argument("--output", "-o",
                               help="write the JSON report to a file "
                                    "(implies --json)")
    verify_parser.set_defaults(handler=cmd_verify)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose, args.quiet)
    # Every subcommand that takes --interconnect shares one friendly
    # unknown-name error (mirrors the unknown-protocol message).
    backend = getattr(args, "interconnect", None)
    if backend is not None and not is_interconnect_registered(backend):
        print(f"error: unknown interconnect {backend!r} "
              f"(choose from {', '.join(interconnect_names())})",
              file=sys.stderr)
        return 2
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
