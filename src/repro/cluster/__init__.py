"""Hierarchical multi-cluster simulation (the paper's full PIM target).

The paper's machine is clusters of ~8 PEs — each cluster a snooping bus
of coherent caches — joined by an inter-cluster network (Section 1).
The rest of this repository models one cluster; this package scales it
out: :class:`~repro.cluster.system.ClusteredSystem` partitions the PEs
into K independent cluster buses (one
:class:`~repro.core.system.PIMCacheSystem` each, any registered
protocol) and charges references whose block's *home* cluster differs
from the issuing PE's through an explicit
:class:`~repro.cluster.network.ClusterNetwork`.

See ``docs/CLUSTER.md`` for the model, its deliberate simplifications
relative to a directory-coherent hierarchy, and the determinism
argument that makes per-cluster parallel replay exact.
"""

from repro.cluster.network import ClusterNetwork, NetworkStats
from repro.cluster.replay import (
    replay_clustered,
    replay_interleaved,
    replay_shard,
    split_trace,
)
from repro.cluster.system import (
    ClusterCacheSystem,
    ClusterStats,
    ClusteredSystem,
    cluster_system,
    merged_system_stats,
)

__all__ = [
    "ClusterCacheSystem",
    "ClusterNetwork",
    "ClusterStats",
    "ClusteredSystem",
    "NetworkStats",
    "cluster_system",
    "merged_system_stats",
    "replay_clustered",
    "replay_interleaved",
    "replay_shard",
    "split_trace",
]
