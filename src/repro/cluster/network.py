"""The inter-cluster network: links, hops, FIFO queueing, forwarding.

Each cluster owns one full-duplex link into the network.  An outbound
message waits for the link to free (FIFO, tracked as a busy-until
timeline exactly like the cluster bus's ``bus_free_at``), is serialized
at :attr:`~repro.core.config.ClusterConfig.link_width_words` words per
cycle, then crosses :meth:`~repro.core.config.ClusterConfig.ring_hops`
hops of :attr:`~repro.core.config.ClusterConfig.hop_cycles` each to the
home cluster's directory.

Three message classes, mirroring what a home-node directory must
forward between cluster buses:

* **fetch forward** — a miss on a remote-homed block.  The request (one
  address word) travels to the home directory, which services it from
  its memory bank; the reply carries the block back.  The issuing PE
  stalls for the full round trip (the local bus pattern the miss
  charged already covers the memory-bank latency itself).
* **write forward** — a write-through store to a remote-homed word
  (address + data).  Posted: the PE stalls only until the message is on
  the link; delivery latency is accounted but not charged to the PE.
* **invalidate forward** — an invalidation broadcast crossing the
  boundary so remote-cluster copies die too.  Posted, one address word.

Swap-out write-backs (victim traffic) are drained asynchronously by the
cluster's memory interface and charged no network stall — the victim
block's home is unrelated to the address that caused the eviction, and
the paper's timing model already hides swap-out writes behind the
subsequent fetch.

Everything here is integer arithmetic over state owned by one cluster,
so a cluster's network charges depend only on that cluster's own
reference subsequence — the property that makes per-cluster parallel
replay bit-identical to an interleaved run (see docs/CLUSTER.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import ClusterConfig


class NetworkStats:
    """Counters of one cluster's network interface (or a merged view)."""

    __slots__ = (
        "cluster",
        "n_clusters",
        "fetch_forwards",
        "write_forwards",
        "inval_forwards",
        "messages",
        "words_sent",
        "words_received",
        "queue_wait_cycles",
        "latency_cycles",
        "stall_cycles",
        "link_busy_cycles",
        "forwards_by_home",
    )

    def __init__(self, cluster: int, n_clusters: int):
        #: Cluster index this interface belongs to (-1 for a merged view).
        self.cluster = cluster
        self.n_clusters = n_clusters
        self.fetch_forwards = 0
        self.write_forwards = 0
        self.inval_forwards = 0
        #: All outbound messages (the three forward classes summed).
        self.messages = 0
        #: Words serialized onto this cluster's outbound link.
        self.words_sent = 0
        #: Words delivered back by fetch replies (the home's link).
        self.words_received = 0
        #: Cycles messages spent queued behind the outbound link FIFO.
        self.queue_wait_cycles = 0
        #: End-to-end transport cycles of every message (posted included).
        self.latency_cycles = 0
        #: Cycles actually added to issuing-PE clocks.
        self.stall_cycles = 0
        #: Cycles the outbound link spent serializing messages.
        self.link_busy_cycles = 0
        #: Outbound messages by destination (home) cluster.
        self.forwards_by_home: List[int] = [0] * n_clusters

    _SUM_FIELDS = (
        "fetch_forwards",
        "write_forwards",
        "inval_forwards",
        "messages",
        "words_sent",
        "words_received",
        "queue_wait_cycles",
        "latency_cycles",
        "stall_cycles",
        "link_busy_cycles",
    )

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Accumulate *other* into this instance (returns self)."""
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if len(other.forwards_by_home) > len(self.forwards_by_home):
            self.forwards_by_home.extend(
                [0] * (len(other.forwards_by_home) - len(self.forwards_by_home))
            )
            self.n_clusters = len(self.forwards_by_home)
        for home, count in enumerate(other.forwards_by_home):
            self.forwards_by_home[home] += count
        return self

    @classmethod
    def merged(cls, parts: Sequence["NetworkStats"]) -> "NetworkStats":
        """Fold per-cluster interfaces into one machine-wide aggregate."""
        if not parts:
            raise ValueError("cannot merge an empty list of network stats")
        total = cls(-1, parts[0].n_clusters)
        for part in parts:
            total.merge(part)
        return total

    def as_dict(self) -> dict:
        return {
            "cluster": self.cluster,
            "n_clusters": self.n_clusters,
            "fetch_forwards": self.fetch_forwards,
            "write_forwards": self.write_forwards,
            "inval_forwards": self.inval_forwards,
            "messages": self.messages,
            "words_sent": self.words_sent,
            "words_received": self.words_received,
            "queue_wait_cycles": self.queue_wait_cycles,
            "latency_cycles": self.latency_cycles,
            "stall_cycles": self.stall_cycles,
            "link_busy_cycles": self.link_busy_cycles,
            "forwards_by_home": list(self.forwards_by_home),
        }

    def __repr__(self) -> str:
        return (
            f"NetworkStats(cluster={self.cluster}, "
            f"messages={self.messages}, stall={self.stall_cycles})"
        )


class ClusterNetwork:
    """One cluster's interface onto the inter-cluster network."""

    __slots__ = ("config", "cluster_index", "block_words", "link_free_at", "stats")

    def __init__(self, config: ClusterConfig, cluster_index: int, block_words: int):
        self.config = config
        self.cluster_index = cluster_index
        self.block_words = block_words
        #: Outbound-link timeline: the cycle at which the link frees.
        self.link_free_at = 0
        self.stats = NetworkStats(cluster_index, config.n_clusters)

    def _serialize(self, words: int) -> int:
        width = self.config.link_width_words
        return -(-words // width)

    def _send(self, now: int, home: int, words: int) -> "tuple[int, int, int]":
        """Queue *words* onto the outbound link at cycle *now*.

        Returns ``(wait, serialize, hop_latency)``: cycles queued behind
        the FIFO, cycles serializing onto the link, and one-way hop
        transit to *home*.  The message is considered issued the cycle
        after *now* (matching the bus model's ``pe_clock + 1`` start).
        """
        stats = self.stats
        serialize = self._serialize(words)
        issue = now + 1
        start = issue if issue > self.link_free_at else self.link_free_at
        wait = start - issue
        self.link_free_at = start + serialize
        hops = self.config.ring_hops(self.cluster_index, home)
        hop_latency = hops * self.config.hop_cycles
        stats.messages += 1
        stats.words_sent += words
        stats.queue_wait_cycles += wait
        stats.link_busy_cycles += serialize
        stats.latency_cycles += hop_latency + serialize
        stats.forwards_by_home[home] += 1
        return wait, serialize, hop_latency

    def fetch_forward(self, now: int, home: int) -> int:
        """Round-trip block fetch through *home*'s directory.

        Returns the cycles the issuing PE stalls beyond *now*: issue +
        queue wait + request transit, then block reply transit back
        (the reply rides the home cluster's link; only its latency is
        charged here, keeping this cluster's state self-contained).
        """
        stats = self.stats
        wait, serialize, hop_latency = self._send(now, home, 1)
        reply = self._serialize(self.block_words)
        stats.fetch_forwards += 1
        stats.words_received += self.block_words
        stats.latency_cycles += hop_latency + reply
        stall = 1 + wait + serialize + hop_latency + hop_latency + reply
        stats.stall_cycles += stall
        return stall

    def write_forward(self, now: int, home: int) -> int:
        """Posted write-through to a remote home (address + data word).

        Returns the cycles the PE stalls: only until the message is
        accepted onto the link — delivery completes asynchronously.
        """
        wait, serialize, _ = self._send(now, home, 2)
        self.stats.write_forwards += 1
        stall = 1 + wait + serialize
        self.stats.stall_cycles += stall
        return stall

    def inval_forward(self, now: int, home: int) -> int:
        """Posted invalidation forward to a remote home (one word)."""
        wait, serialize, _ = self._send(now, home, 1)
        self.stats.inval_forwards += 1
        stall = 1 + wait + serialize
        self.stats.stall_cycles += stall
        return stall

    def occupancy(self, elapsed: Optional[int] = None) -> float:
        """Fraction of elapsed cycles the outbound link was busy."""
        if elapsed is None:
            elapsed = self.link_free_at
        busy = self.stats.link_busy_cycles
        return busy / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"ClusterNetwork(cluster={self.cluster_index}, "
            f"link_free_at={self.link_free_at}, "
            f"messages={self.stats.messages})"
        )
