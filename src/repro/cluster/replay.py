"""Replay paths for clustered systems: interleaved, sharded, merged.

Two serial paths with identical counters:

* :func:`replay_interleaved` drives :meth:`ClusteredSystem.access` one
  reference at a time in trace order — the ordering-faithful reference
  path (and the serial baseline the clustered benchmark measures).
* :func:`replay_clustered` splits the trace into per-cluster shards
  (:func:`split_trace`) and runs each shard through the inlined fast
  kernel of :func:`repro.core.replay.replay` with a caller-built
  :class:`~repro.cluster.system.ClusterCacheSystem`.

They agree bit-for-bit because clusters share no mutable state: a
cluster's counters are a function of its own PEs' references *in their
own relative order*, which sharding preserves.  That same argument
makes the shard results independent of worker scheduling, so
:func:`repro.analysis.parallel.run_clustered` can fan shards out over
the process pool and merge deterministically (shards are merged in
cluster-index order regardless of completion order).
"""

from __future__ import annotations

from array import array
from itertools import compress
from typing import List, Optional

from repro.cluster.system import ClusterCacheSystem, ClusterStats, ClusteredSystem
from repro.core.config import SimulationConfig
from repro.core.replay import replay, replay_access_driven
from repro.trace.buffer import TraceBuffer

try:  # optional: vectorizes the split when the host has it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None


def split_trace(
    buffer: TraceBuffer, n_pes: int, n_clusters: int
) -> List[TraceBuffer]:
    """Partition *buffer* into per-cluster shards.

    Each shard holds the references of one cluster's PEs, in their
    original relative order, with PE indices renumbered to
    cluster-local (``pe - cluster * pes_per_cluster``).

    The split is on the parallel fast path (it runs once per clustered
    replay, over the full trace), so it avoids a per-reference Python
    loop.  With numpy available the columns are filtered with boolean
    masks over zero-copy views of the column arrays; otherwise the PE
    column — a signed-byte array — is viewed as ``bytes`` and two
    256-entry :meth:`bytes.translate` tables turn it into a 0/1
    membership mask and a cluster-local renumbering at C speed, with
    :func:`itertools.compress` selecting each column.  Both paths
    produce identical shards (a regression test holds them together).
    """
    if n_pes % n_clusters != 0:
        raise ValueError(
            f"n_pes ({n_pes}) must divide evenly into {n_clusters} clusters"
        )
    pes_per_cluster = n_pes // n_clusters
    if _np is not None:
        return _split_trace_numpy(buffer, pes_per_cluster, n_clusters)
    return _split_trace_compress(buffer, pes_per_cluster, n_clusters)


def _split_trace_numpy(
    buffer: TraceBuffer, pes_per_cluster: int, n_clusters: int
) -> List[TraceBuffer]:
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    pe = _np.frombuffer(pe_col, dtype=_np.int8)
    op = _np.frombuffer(op_col, dtype=_np.int8)
    area = _np.frombuffer(area_col, dtype=_np.int8)
    addr = _np.frombuffer(addr_col, dtype=_np.int64)
    flags = _np.frombuffer(flags_col, dtype=_np.int8)
    shards = []
    for cluster in range(n_clusters):
        lo = cluster * pes_per_cluster
        mask = (pe >= lo) & (pe < lo + pes_per_cluster)
        shard = TraceBuffer(pes_per_cluster)
        shard._pe = array("b", (pe[mask] - lo).tobytes())
        shard._op = array("b", op[mask].tobytes())
        shard._area = array("b", area[mask].tobytes())
        shard._addr = array("q", addr[mask].tobytes())
        shard._flags = array("b", flags[mask].tobytes())
        shards.append(shard)
    return shards


def _split_trace_compress(
    buffer: TraceBuffer, pes_per_cluster: int, n_clusters: int
) -> List[TraceBuffer]:
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    pe_bytes = pe_col.tobytes()
    shards = []
    for cluster in range(n_clusters):
        lo = cluster * pes_per_cluster
        hi = lo + pes_per_cluster
        member = bytes(1 if lo <= p < hi else 0 for p in range(256))
        renumber = bytes(p - lo if lo <= p < hi else 0 for p in range(256))
        mask = pe_bytes.translate(member)
        shard = TraceBuffer(pes_per_cluster)
        shard._pe = array("b", compress(pe_bytes.translate(renumber), mask))
        shard._op = array("b", compress(op_col, mask))
        shard._area = array("b", compress(area_col, mask))
        shard._addr = array("q", compress(addr_col, mask))
        shard._flags = array("b", compress(flags_col, mask))
        shards.append(shard)
    return shards


def replay_shard(
    shard: TraceBuffer,
    config: SimulationConfig,
    pes_per_cluster: int,
    cluster_index: int,
    kernel: Optional[str] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> "tuple[SystemStats, NetworkStats]":
    """Replay one cluster's shard through the fast kernel.

    Returns ``(stats, network_stats)`` — both picklable, so this is
    also the unit of work :func:`repro.analysis.parallel.run_clustered`
    ships to pool workers.  *kernel* is forwarded to
    :func:`repro.core.replay.replay` (``None`` is the production
    ``"auto"`` selection; tests pin ``"interpreted"`` vs
    ``"generated"`` to hold the two loops identical on shards too).
    *mode* selects the coherence execution mode per shard: under
    ``"lazypim"`` each cluster runs its own independent speculative
    batch engine over its shard — speculation is a per-bus mechanism,
    so per-cluster batching is the faithful clustered composition.
    """
    system = ClusterCacheSystem(config, pes_per_cluster, cluster_index)
    stats = replay(
        shard,
        system=system,
        kernel=kernel,
        mode=mode,
        batch_refs=batch_refs,
        signature_bits=signature_bits,
    )
    return stats, system.network.stats


def replay_clustered(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    kernel: Optional[str] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> ClusterStats:
    """Serial per-cluster fast-kernel replay with deterministic merge."""
    if config is None:
        config = SimulationConfig()
    pes = n_pes if n_pes is not None else buffer.n_pes
    n_clusters = config.cluster.n_clusters
    shards = split_trace(buffer, pes, n_clusters)
    pes_per_cluster = pes // n_clusters
    per_cluster = []
    networks = []
    for cluster_index, shard in enumerate(shards):
        stats, network = replay_shard(
            shard,
            config,
            pes_per_cluster,
            cluster_index,
            kernel=kernel,
            mode=mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        per_cluster.append(stats)
        networks.append(network)
    return ClusterStats(per_cluster, networks)


def replay_interleaved(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    check_invariants_every: Optional[int] = None,
    values=None,
    on_result=None,
) -> ClusterStats:
    """Reference-at-a-time replay through :meth:`ClusteredSystem.access`.

    The ordering-faithful serial path: every reference dispatches in
    global trace order, exactly as an execution-driven run would issue
    them.  Counter-identical to :func:`replay_clustered` (the property
    tests assert it), but one dispatch per reference — this is the
    "serial" side of the clustered benchmark's speedup comparison.

    ``values`` and ``on_result`` are forwarded to
    :func:`repro.core.replay.replay_access_driven`; the differential
    oracle uses them to inject write values and check every read against
    its per-cluster flat-memory reference model.
    """
    if config is None:
        config = SimulationConfig()
    pes = n_pes if n_pes is not None else buffer.n_pes
    system = ClusteredSystem(config, pes)
    replay_access_driven(
        buffer,
        system,
        values=values,
        on_result=on_result,
        check_invariants_every=check_invariants_every,
    )
    return system.cluster_stats()
