"""Clustered cache systems: K independent buses behind one facade.

:class:`ClusterCacheSystem` is one cluster: a standard
:class:`~repro.core.system.PIMCacheSystem` over the cluster's local PEs
whose dispatch-table handlers are wrapped (exactly the
:meth:`~repro.core.system.PIMCacheSystem.attach_probe` pattern) so that
accesses to blocks homed in *another* cluster charge the inter-cluster
network.  The wrapper diffs ``pattern_counts`` across the handler call —
the same counters every replay path maintains — so the charge is
identical whether the access came through :meth:`access`, the windowed
observer, or the inlined fast replay kernel (which bypasses wrappers
only for bus-free cache hits, and a hit never generates a pattern).

:class:`ClusteredSystem` partitions ``n_pes`` PEs contiguously into the
K clusters of ``config.cluster`` and routes each access to the owning
cluster's system.  Clusters are *fully independent*: cross-cluster
coherence is modelled by the home-node directory's forward accounting
(LazyPIM-style boundary bookkeeping), not by mutating remote cluster
state — the substitution that makes sharded per-cluster replay
bit-identical to an interleaved run and therefore parallelizable with a
deterministic merge (docs/CLUSTER.md states the argument precisely).

With ``K == 1`` no wrapping is installed and the facade delegates to a
bare, untouched ``PIMCacheSystem`` — counter-for-counter identical to
the flat model, which the golden tests pin down bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.states import BusPattern
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.cluster.network import ClusterNetwork, NetworkStats
from repro.obs.events import EventKind

_SWAP_IN = int(BusPattern.SWAP_IN)
_SWAP_IN_WITH_SWAP_OUT = int(BusPattern.SWAP_IN_WITH_SWAP_OUT)
_WRITE_THROUGH = int(BusPattern.WRITE_THROUGH)
_INVALIDATION = int(BusPattern.INVALIDATION)


def merged_system_stats(parts: Sequence[SystemStats]) -> SystemStats:
    """Machine-wide view of per-cluster stats.

    Scalar counters sum exactly as :meth:`SystemStats.merge` does, but
    the per-PE clocks *concatenate* in cluster order — the clusters run
    side by side, they are not sequential work on the same PEs.  A
    single part is returned as-is (live, zero-copy).
    """
    if len(parts) == 1:
        return parts[0]
    total = SystemStats.merged(list(parts))
    pe_cycles = [cycles for part in parts for cycles in part.pe_cycles]
    total.pe_cycles[:] = pe_cycles
    total.n_pes = len(pe_cycles)
    return total


class ClusterStats:
    """Per-cluster and merged counters of one clustered run."""

    def __init__(
        self,
        per_cluster: List[SystemStats],
        network_per_cluster: List[NetworkStats],
    ):
        self.per_cluster = per_cluster
        self.network_per_cluster = network_per_cluster
        self.stats = merged_system_stats(per_cluster)
        self.network = NetworkStats.merged(network_per_cluster)

    @property
    def n_clusters(self) -> int:
        return len(self.per_cluster)

    def as_dict(self) -> dict:
        """JSON-ready form: merged stats plus the network breakdown."""
        return {
            "n_clusters": self.n_clusters,
            "stats": self.stats.as_dict(),
            "network": self.network.as_dict(),
            "network_per_cluster": [
                n.as_dict() for n in self.network_per_cluster
            ],
        }

    def __repr__(self) -> str:
        return (
            f"ClusterStats(n_clusters={self.n_clusters}, "
            f"refs={self.stats.total_refs}, "
            f"network_messages={self.network.messages})"
        )


class ClusterCacheSystem(PIMCacheSystem):
    """One cluster's bus: a ``PIMCacheSystem`` with a network interface.

    ``n_pes`` here is the cluster's *local* PE count; ``cluster_index``
    places it in the machine.  Addresses are global — the home policy in
    ``config.cluster`` decides which references cross the boundary.
    """

    __slots__ = ("cluster_index", "network")

    def __init__(
        self, config: SimulationConfig, n_pes: int, cluster_index: int = 0
    ):
        super().__init__(config, n_pes)
        cluster = config.cluster
        if not 0 <= cluster_index < cluster.n_clusters:
            raise ValueError(
                f"cluster_index {cluster_index} outside "
                f"[0, {cluster.n_clusters})"
            )
        self.cluster_index = cluster_index
        self.network = ClusterNetwork(
            cluster, cluster_index, config.cache.block_words
        )
        if cluster.n_clusters > 1:
            self._install_network_wrappers()

    def _install_network_wrappers(self) -> None:
        """Wrap every distinct dispatch handler with the network charge.

        The wrapped table becomes the system's *base* table, so a probe
        attached later wraps the network-charging handlers (its BUS /
        TRANSITION events keep their meaning) and detaching restores the
        network-charging table, never the unclustered one.
        """
        home_of = self.config.cluster.home_of
        my_cluster = self.cluster_index
        network = self.network
        stats = self.stats
        pattern_counts = self.stats.pattern_counts
        pe_cycles = self._pe_cycles
        fetch_forward = network.fetch_forward
        write_forward = network.write_forward
        inval_forward = network.inval_forward
        wrappers: Dict[object, object] = {}

        def wrap(handler):
            wrapped = wrappers.get(handler)
            if wrapped is None:
                def wrapped(
                    pe, sop, area, address, block, value=0, flags=0,
                    _handler=handler,
                ):
                    home = home_of(block)
                    if home == my_cluster:
                        return _handler(pe, sop, area, address, block, value, flags)
                    fetches0 = (
                        pattern_counts[_SWAP_IN]
                        + pattern_counts[_SWAP_IN_WITH_SWAP_OUT]
                    )
                    writes0 = pattern_counts[_WRITE_THROUGH]
                    invals0 = pattern_counts[_INVALIDATION]
                    dir0 = (
                        stats.directory_forwards
                        + stats.directory_invalidations
                    )
                    result = _handler(pe, sop, area, address, block, value, flags)
                    if result[0] == BLOCKED:
                        return result
                    fetches = (
                        pattern_counts[_SWAP_IN]
                        + pattern_counts[_SWAP_IN_WITH_SWAP_OUT]
                        - fetches0
                    )
                    writes = pattern_counts[_WRITE_THROUGH] - writes0
                    invals = pattern_counts[_INVALIDATION] - invals0
                    # Each third-party message the home-node directory
                    # sent for a remote-homed block also crosses the
                    # ring (zero under the bus backend).
                    dir_msgs = (
                        stats.directory_forwards
                        + stats.directory_invalidations
                        - dir0
                    )
                    if not (fetches or writes or invals or dir_msgs):
                        return result
                    now = pe_cycles[pe]
                    stall = 0
                    for _ in range(fetches):
                        stall += fetch_forward(now + stall, home)
                    for _ in range(writes):
                        stall += write_forward(now + stall, home)
                    for _ in range(invals + dir_msgs):
                        stall += inval_forward(now + stall, home)
                    pe_cycles[pe] = now + stall
                    probe = self._probe
                    if probe is not None:
                        probe._emit(
                            EventKind.NETWORK, now + stall, pe, sop, area,
                            address,
                            f"forward->c{home} "
                            f"f={fetches} w={writes} i={invals}"
                            + (f" d={dir_msgs}" if dir_msgs else ""),
                            stall,
                        )
                    return result

                wrappers[handler] = wrapped
            return wrapped

        self._op_table = [
            [wrap(handler) for handler in row] for row in self._base_op_table
        ]
        self._base_op_table = self._op_table


class ClusteredSystem:
    """K cluster buses plus the network, behind the system interface.

    Exposes the surface the machine layer drives (``access``, ``stats``,
    ``flush_all``, ``check_invariants``, ``is_waiting``, ``track_data``)
    so :class:`~repro.machine.machine.KL1Machine` can substitute it for
    a flat ``PIMCacheSystem`` untouched.  Global PE indices map to
    ``(cluster, local PE)`` by contiguous partition — PEs ``[0, P)`` are
    cluster 0, ``[P, 2P)`` cluster 1, and so on.
    """

    def __init__(self, config: SimulationConfig, n_pes: int):
        n_clusters = config.cluster.n_clusters
        if n_pes % n_clusters != 0:
            raise ValueError(
                f"n_pes ({n_pes}) must divide evenly into "
                f"{n_clusters} clusters"
            )
        self.config = config
        self.n_pes = n_pes
        self.n_clusters = n_clusters
        self.pes_per_cluster = n_pes // n_clusters
        self.track_data = config.track_data
        self.systems = [
            ClusterCacheSystem(config, self.pes_per_cluster, index)
            for index in range(n_clusters)
        ]

    # -- the PIMCacheSystem surface the machine layer drives -----------

    def access(
        self, pe: int, op: int, area: int, address: int,
        value: int = 0, flags: int = 0,
    ):
        cluster, local_pe = divmod(pe, self.pes_per_cluster)
        return self.systems[cluster].access(
            local_pe, op, area, address, value, flags
        )

    def is_waiting(self, pe: int) -> bool:
        cluster, local_pe = divmod(pe, self.pes_per_cluster)
        return self.systems[cluster].is_waiting(local_pe)

    def line_state(self, pe: int, address: int):
        cluster, local_pe = divmod(pe, self.pes_per_cluster)
        return self.systems[cluster].line_state(local_pe, address)

    def flush_all(self, silent: bool = False) -> int:
        return sum(system.flush_all(silent) for system in self.systems)

    def check_invariants(self) -> None:
        for system in self.systems:
            system.check_invariants()

    @property
    def stats(self) -> SystemStats:
        """Machine-wide merged counters (live view for ``K == 1``)."""
        return merged_system_stats([system.stats for system in self.systems])

    # -- cluster-specific surface --------------------------------------

    @property
    def networks(self) -> List[ClusterNetwork]:
        return [system.network for system in self.systems]

    def cluster_stats(self) -> ClusterStats:
        """Per-cluster stats, network counters, and the merged view."""
        return ClusterStats(
            [system.stats for system in self.systems],
            [system.network.stats for system in self.systems],
        )

    def cluster_of(self, pe: int) -> int:
        return pe // self.pes_per_cluster

    def attach_probe(self, probe) -> None:
        """Attach *probe* to every cluster's system.

        ``K == 1`` delegates directly (full probe contract).  With more
        clusters the probe observes all of them through one event
        stream; per-access hooks run on the cluster that served the
        access, so PE indices in events are cluster-local.
        """
        if self.n_clusters == 1:
            self.systems[0].attach_probe(probe)
            return
        raise NotImplementedError(
            "per-access probing of a multi-cluster system is not "
            "supported; probe a single cluster's system (systems[i]) or "
            "replay per cluster"
        )

    def detach_probe(self):
        if self.n_clusters == 1:
            return self.systems[0].detach_probe()
        return None

    def __repr__(self) -> str:
        return (
            f"ClusteredSystem(n_clusters={self.n_clusters}, "
            f"n_pes={self.n_pes}, protocol={self.config.protocol!r})"
        )


def cluster_system(
    config: Optional[SimulationConfig], n_pes: int
):
    """Build the right system for *config*: clustered when K > 1."""
    if config is None:
        return None
    if config.cluster.n_clusters > 1:
        return ClusteredSystem(config, n_pes)
    return PIMCacheSystem(config, n_pes)
