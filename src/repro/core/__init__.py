"""The PIM cache: the paper's primary contribution.

This package implements the five-state (EM / EC / SM / S / INV) copy-back
snooping cache of Section 3, the separate word-granularity lock directory
(LCK / LWAIT / EMP), the four software-controlled memory commands
(direct write, exclusive read, read purge, read invalidate), and the
one-word common-bus cost model of Section 4.2 with its six bus access
patterns.

:class:`~repro.core.system.PIMCacheSystem` is the multi-PE protocol
engine.  It can be driven directly by the KL1 emulator
(execution-driven, the paper's setup) or fed a captured
:class:`~repro.trace.buffer.TraceBuffer` via
:func:`~repro.core.replay.replay` (trace-driven, for parameter sweeps).
"""

from repro.core.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.states import (
    BusCommand,
    BusPattern,
    CacheState,
    LockState,
)
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.core.replay import replay, replay_access_driven
from repro.core.illinois import illinois_config, pim_config, protocol_config
from repro.core.protocol import (
    ProtocolSpec,
    get_protocol,
    protocol_names,
    register,
)

__all__ = [
    "BLOCKED",
    "BusCommand",
    "BusConfig",
    "BusPattern",
    "CacheConfig",
    "CacheState",
    "LockState",
    "MachineConfig",
    "OptimizationConfig",
    "PIMCacheSystem",
    "ProtocolSpec",
    "SimulationConfig",
    "SystemStats",
    "get_protocol",
    "illinois_config",
    "pim_config",
    "protocol_config",
    "protocol_names",
    "register",
    "replay",
    "replay_access_driven",
]
