"""One PE's set-associative cache array.

Only the directory (tags + states) is architecturally required; the data
array is modelled optionally so coherence property tests can check that
every read observes the most recent write.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import CacheConfig
from repro.core.states import CacheState


class CacheLine:
    """A block frame: tag, protocol state, owning storage area, LRU tick."""

    __slots__ = ("tag", "state", "area", "lru", "data")

    def __init__(self, tag: int, state: CacheState, area: int, lru: int, data=None):
        self.tag = tag
        self.state = state
        self.area = area
        self.lru = lru
        self.data = data

    def __repr__(self) -> str:
        return f"CacheLine(tag={self.tag:#x}, state={self.state.name}, area={self.area})"


class Cache:
    """Set-associative, LRU-replacement cache directory for one PE.

    Blocks are identified by their *block number* (word address divided
    by the block size); the caller performs that division once so hot
    paths never recompute it.

    The directory is held twice: per-set buckets (``_sets``), which give
    replacement its candidate list, and a flat ``block -> line`` map
    (``_lines``) that probes hit with a single dict lookup — no set
    index/tag arithmetic on the path taken by every reference.  The two
    views share the same :class:`CacheLine` objects and are kept in step
    by :meth:`insert`/:meth:`remove`/:meth:`flush`.
    """

    __slots__ = (
        "config",
        "pe",
        "track_data",
        "_sets",
        "_lines",
        "_set_mask",
        "_set_shift",
        "_tick",
        "_mirror",
        "_mirror_bases",
        "_mirror_remap",
    )

    def __init__(self, config: CacheConfig, pe: int, track_data: bool = False):
        self.config = config
        self.pe = pe
        self.track_data = track_data
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(config.n_sets)]
        self._lines: Dict[int, CacheLine] = {}
        self._set_mask = config.n_sets - 1
        self._set_shift = config.n_sets.bit_length() - 1
        self._tick = 0
        # While a generated replay kernel runs, ``_mirror`` points at a
        # flat cross-PE ``(kind << tag_shift | pe << pe_shift | block)
        # -> line`` table (a dense list, or a dict for huge address
        # spaces), aliased under every fast-kind tag so the kernel
        # probes packed keys unmasked.  Every residency change below is
        # mirrored under each base in ``_mirror_bases`` via
        # :meth:`_mirror_set`; ``_mirror_remap`` (optional) maps real
        # block numbers to the kernel's dense block ids.  ``None`` (the
        # resting state) keeps the bookkeeping off all other paths.
        self._mirror = None
        self._mirror_bases: Tuple[int, ...] = ()
        self._mirror_remap: Optional[Dict[int, int]] = None

    def _mirror_set(self, block: int, line: Optional[CacheLine]) -> None:
        """Mirror a residency change (``line`` or ``None`` for a drop)
        under every alias base.  A block outside the kernel's remap can
        never be probed by the running trace, so it is skipped."""
        remap = self._mirror_remap
        index = block if remap is None else remap.get(block)
        if index is not None:
            mirror = self._mirror
            for base in self._mirror_bases:
                mirror[base | index] = line

    def lookup(self, block: int) -> Optional[CacheLine]:
        """Return the valid line holding *block*, touching LRU, else None."""
        line = self._lines.get(block)
        if line is None:
            return None
        self._tick += 1
        line.lru = self._tick
        return line

    def peek(self, block: int) -> Optional[CacheLine]:
        """Like :meth:`lookup` but without disturbing LRU (for snooping)."""
        return self._lines.get(block)

    def insert(
        self, block: int, state: CacheState, area: int, data=None
    ) -> Optional[Tuple[int, CacheLine]]:
        """Place *block* into its set, evicting LRU if the set is full.

        Returns ``(victim_block, victim_line)`` when a valid line had to
        be evicted, else ``None``.  The caller is responsible for any
        copyback the victim's state requires.

        Every protocol path checks for a hit before filling, so an
        insert of an already-resident block can only be a protocol bug;
        silently overwriting the line would discard its state and dirty
        data, corrupting the coherence accounting downstream.  Raises
        ``ValueError`` instead.
        """
        index = block & self._set_mask
        tag = block >> self._set_shift
        bucket = self._sets[index]
        if tag in bucket:
            raise ValueError(
                f"PE{self.pe}: block {block:#x} is already resident in "
                f"state {bucket[tag].state.name}; call sites must miss "
                "before inserting"
            )
        victim = None
        if len(bucket) >= self.config.associativity:
            # Explicit scan instead of min(key=...): no per-line lambda
            # call on what is the hottest part of every cache miss.
            victim_tag = victim_lru = None
            for t, line in bucket.items():
                if victim_lru is None or line.lru < victim_lru:
                    victim_lru = line.lru
                    victim_tag = t
            victim_line = bucket.pop(victim_tag)
            victim_block = (victim_tag << self._set_shift) | index
            del self._lines[victim_block]
            if self._mirror is not None:
                self._mirror_set(victim_block, None)
            victim = (victim_block, victim_line)
        self._tick += 1
        line = CacheLine(tag, state, area, self._tick, data)
        bucket[tag] = line
        self._lines[block] = line
        if self._mirror is not None:
            self._mirror_set(block, line)
        return victim

    def remove(self, block: int) -> Optional[CacheLine]:
        """Drop *block* (invalidate or purge).  Returns the removed line."""
        line = self._lines.pop(block, None)
        if line is not None:
            del self._sets[block & self._set_mask][block >> self._set_shift]
            if self._mirror is not None:
                self._mirror_set(block, None)
        return line

    def block_of(self, line_index: int, tag: int) -> int:
        """Reconstruct a block number from set index and tag."""
        return (tag << self._set_shift) | line_index

    def lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Iterate ``(block_number, line)`` over every valid line."""
        for index, bucket in enumerate(self._sets):
            for tag, line in bucket.items():
                yield (tag << self._set_shift) | index, line

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._lines)

    def flush(self) -> None:
        """Invalidate every line (used around garbage collection)."""
        if self._mirror is not None:
            for block in self._lines:
                self._mirror_set(block, None)
        for bucket in self._sets:
            bucket.clear()
        self._lines.clear()

    def __repr__(self) -> str:
        return (
            f"Cache(pe={self.pe}, {self.config.capacity_words} words, "
            f"{self.occupancy()}/{self.config.n_lines} lines valid)"
        )
