"""One PE's set-associative cache array.

Only the directory (tags + states) is architecturally required; the data
array is modelled optionally so coherence property tests can check that
every read observes the most recent write.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import CacheConfig
from repro.core.states import CacheState


class CacheLine:
    """A block frame: tag, protocol state, owning storage area, LRU tick."""

    __slots__ = ("tag", "state", "area", "lru", "data")

    def __init__(self, tag: int, state: CacheState, area: int, lru: int, data=None):
        self.tag = tag
        self.state = state
        self.area = area
        self.lru = lru
        self.data = data

    def __repr__(self) -> str:
        return f"CacheLine(tag={self.tag:#x}, state={self.state.name}, area={self.area})"


class Cache:
    """Set-associative, LRU-replacement cache directory for one PE.

    Blocks are identified by their *block number* (word address divided
    by the block size); the caller performs that division once so hot
    paths never recompute it.
    """

    __slots__ = (
        "config",
        "pe",
        "track_data",
        "_sets",
        "_set_mask",
        "_set_shift",
        "_tick",
    )

    def __init__(self, config: CacheConfig, pe: int, track_data: bool = False):
        self.config = config
        self.pe = pe
        self.track_data = track_data
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(config.n_sets)]
        self._set_mask = config.n_sets - 1
        self._set_shift = config.n_sets.bit_length() - 1
        self._tick = 0

    def lookup(self, block: int) -> Optional[CacheLine]:
        """Return the valid line holding *block*, touching LRU, else None."""
        line = self._sets[block & self._set_mask].get(block >> self._set_shift)
        if line is None:
            return None
        self._tick += 1
        line.lru = self._tick
        return line

    def peek(self, block: int) -> Optional[CacheLine]:
        """Like :meth:`lookup` but without disturbing LRU (for snooping)."""
        return self._sets[block & self._set_mask].get(block >> self._set_shift)

    def insert(
        self, block: int, state: CacheState, area: int, data=None
    ) -> Optional[Tuple[int, CacheLine]]:
        """Place *block* into its set, evicting LRU if the set is full.

        Returns ``(victim_block, victim_line)`` when a valid line had to
        be evicted, else ``None``.  The caller is responsible for any
        copyback the victim's state requires.
        """
        index = block & self._set_mask
        tag = block >> self._set_shift
        bucket = self._sets[index]
        victim = None
        if tag not in bucket and len(bucket) >= self.config.associativity:
            victim_tag = min(bucket, key=lambda t: bucket[t].lru)
            victim_line = bucket.pop(victim_tag)
            victim_block = (victim_tag << self._set_shift) | index
            victim = (victim_block, victim_line)
        self._tick += 1
        bucket[tag] = CacheLine(tag, state, area, self._tick, data)
        return victim

    def remove(self, block: int) -> Optional[CacheLine]:
        """Drop *block* (invalidate or purge).  Returns the removed line."""
        return self._sets[block & self._set_mask].pop(block >> self._set_shift, None)

    def block_of(self, line_index: int, tag: int) -> int:
        """Reconstruct a block number from set index and tag."""
        return (tag << self._set_shift) | line_index

    def lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Iterate ``(block_number, line)`` over every valid line."""
        for index, bucket in enumerate(self._sets):
            for tag, line in bucket.items():
                yield (tag << self._set_shift) | index, line

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(bucket) for bucket in self._sets)

    def flush(self) -> None:
        """Invalidate every line (used around garbage collection)."""
        for bucket in self._sets:
            bucket.clear()

    def __repr__(self) -> str:
        return (
            f"Cache(pe={self.pe}, {self.config.capacity_words} words, "
            f"{self.occupancy()}/{self.config.n_lines} lines valid)"
        )
