"""Configuration dataclasses for the cache, bus, optimizations and machine.

The defaults reproduce the paper's base model (Section 4.2): eight PEs,
each with a four-Kword, four-way set-associative, 256-column cache with
four-word blocks, on a one-word common bus with an eight-cycle shared
memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.protocol import is_registered, protocol_names
from repro.core.states import BusPattern
from repro.trace.events import Area, Op

#: Word-address width assumed when estimating directory cost (Section 4.4's
#: "a four-Kword cache is 190000 bits" figure reproduces exactly with
#: 32-bit word addresses and a 5-byte data word).
ADDRESS_BITS = 32

#: Data word width in bits (Section 4.4: "a 5 byte data word").
WORD_BITS = 40

#: Cache block state field width (five states).
STATE_BITS = 3


def _require_power_of_two(name: str, value: int) -> None:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one PE's cache.

    ``block_words`` × ``n_sets`` × ``associativity`` gives the data
    capacity in words; the base model is 4 × 256 × 4 = 4 Kwords.
    """

    block_words: int = 4
    n_sets: int = 256
    associativity: int = 4

    def __post_init__(self) -> None:
        _require_power_of_two("block_words", self.block_words)
        _require_power_of_two("n_sets", self.n_sets)
        if self.associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {self.associativity}")

    @property
    def capacity_words(self) -> int:
        """Total data capacity in words."""
        return self.block_words * self.n_sets * self.associativity

    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.n_sets * self.associativity

    @property
    def tag_bits(self) -> int:
        """Width of the address tag stored per line."""
        return (
            ADDRESS_BITS
            - int(math.log2(self.n_sets))
            - int(math.log2(self.block_words))
        )

    @property
    def directory_bits(self) -> int:
        """Bits spent on tags and state — the 'cache address array'."""
        return self.n_lines * (self.tag_bits + STATE_BITS)

    @property
    def total_bits(self) -> int:
        """Directory plus data bits — Figure 2's x-axis."""
        return self.directory_bits + self.capacity_words * WORD_BITS

    @classmethod
    def from_capacity(
        cls, capacity_words: int, block_words: int = 4, associativity: int = 4
    ) -> "CacheConfig":
        """Build a config of the given data capacity (in words)."""
        _require_power_of_two("capacity_words", capacity_words)
        n_sets = capacity_words // (block_words * associativity)
        if n_sets < 1:
            raise ValueError(
                f"capacity {capacity_words} words too small for "
                f"{block_words}-word blocks x {associativity} ways"
            )
        return cls(
            block_words=block_words, n_sets=n_sets, associativity=associativity
        )


@dataclass(frozen=True)
class BusConfig:
    """Common bus and shared-memory timing (Section 4.2).

    The bus is ``width_words`` wide; tag/address and data share it, so an
    address transfer costs one cycle and a block transfer costs
    ``ceil(block_words / width_words)`` cycles.  Shared memory takes
    ``memory_access_cycles`` to respond; a swap-out *write* is hidden
    behind the subsequent fetch (so swap-in costs the same with or
    without a swap-out), but a cache-to-cache transfer with a swap-out
    keeps the bus for the non-overlapped part of the victim transfer.
    """

    width_words: int = 1
    memory_access_cycles: int = 8

    def __post_init__(self) -> None:
        if self.width_words < 1:
            raise ValueError(f"width_words must be >= 1, got {self.width_words}")
        if self.memory_access_cycles < 1:
            raise ValueError(
                f"memory_access_cycles must be >= 1, got {self.memory_access_cycles}"
            )

    def transfer_cycles(self, block_words: int) -> int:
        """Bus cycles to move one block."""
        return -(-block_words // self.width_words)

    def pattern_cycles(self, pattern: BusPattern, block_words: int) -> int:
        """Bus cycles held by one occurrence of a bus access *pattern*.

        With the base parameters this yields the paper's 13 / 13 / 10 /
        7 / 5 / 2 cycle costs.
        """
        transfer = self.transfer_cycles(block_words)
        if pattern in (BusPattern.SWAP_IN_WITH_SWAP_OUT, BusPattern.SWAP_IN):
            return 1 + self.memory_access_cycles + transfer
        if pattern == BusPattern.C2C:
            return 3 + transfer
        if pattern == BusPattern.C2C_WITH_SWAP_OUT:
            return 3 + transfer + (transfer - 1)
        if pattern == BusPattern.SWAP_OUT_ONLY:
            return 1 + transfer
        if pattern == BusPattern.INVALIDATION:
            return 2
        if pattern == BusPattern.WRITE_THROUGH:
            return 1 + self.transfer_cycles(1)  # address + one data word
        raise ValueError(f"unknown bus pattern {pattern!r}")


@dataclass(frozen=True)
class OptimizationConfig:
    """Which software-controlled commands the cache controller honours.

    Mirrors Table 4's columns: ``heap_direct_write`` is the "Heap"
    optimization (DW in the heap area), ``goal_commands`` is "Goal"
    (ER, RP and DW in the goal area), ``comm_read_invalidate`` is "Comm"
    (RI in the communication area).  A command that is not honoured is
    demoted to the corresponding plain R or W, exactly as an unoptimized
    cache controller would treat it.
    """

    heap_direct_write: bool = True
    goal_commands: bool = True
    comm_read_invalidate: bool = True

    @classmethod
    def none(cls) -> "OptimizationConfig":
        """Table 4's "None" column — a conventional cache."""
        return cls(False, False, False)

    @classmethod
    def heap_only(cls) -> "OptimizationConfig":
        """Table 4's "Heap" column — DW in the heap area only."""
        return cls(True, False, False)

    @classmethod
    def goal_only(cls) -> "OptimizationConfig":
        """Table 4's "Goal" column — ER, RP, DW in the goal area only."""
        return cls(False, True, False)

    @classmethod
    def comm_only(cls) -> "OptimizationConfig":
        """Table 4's "Comm" column — RI in the communication area only."""
        return cls(False, False, True)

    @classmethod
    def all(cls) -> "OptimizationConfig":
        """Table 4's "All" column."""
        return cls(True, True, True)

    def honours(self, op: int, area: int) -> bool:
        """Whether command *op* issued to *area* is honoured (else demoted)."""
        if op == Op.DW:
            if area == Area.HEAP:
                return self.heap_direct_write
            if area == Area.GOAL:
                return self.goal_commands
            return False
        if op in (Op.ER, Op.RP):
            return area == Area.GOAL and self.goal_commands
        if op == Op.RI:
            return area == Area.COMMUNICATION and self.comm_read_invalidate
        return True


#: Table 4's five optimization columns, in paper order.
TABLE4_COLUMNS = (
    ("None", OptimizationConfig.none()),
    ("Heap", OptimizationConfig.heap_only()),
    ("Goal", OptimizationConfig.goal_only()),
    ("Comm", OptimizationConfig.comm_only()),
    ("All", OptimizationConfig.all()),
)


@dataclass(frozen=True)
class ClusterConfig:
    """Hierarchical machine organization (Section 1's PIM target).

    The paper's machine is not one flat bus: PEs are grouped into
    clusters of about eight, each cluster a snooping bus of coherent
    caches, and the clusters are joined by a network.  ``n_clusters``
    partitions the PEs into equal contiguous groups, each simulated by
    its own :class:`~repro.core.system.PIMCacheSystem`; shared memory
    is distributed across clusters by ``interleave`` and references
    whose block's *home* cluster differs from the issuing PE's cluster
    pay an explicit network charge (see :mod:`repro.cluster.network`).

    Network timing: each cluster owns one full-duplex link into the
    network.  A message waits for the outbound link FIFO, is serialized
    at ``link_width_words`` words per cycle, and crosses
    ``ring_hops(src, dst)`` hops at ``hop_cycles`` each.
    """

    n_clusters: int = 1
    #: Home-cluster policy for shared-memory blocks: ``"block"``
    #: interleaves consecutive blocks round-robin across clusters;
    #: ``"page"`` assigns runs of ``page_blocks`` blocks to one home.
    interleave: str = "block"
    page_blocks: int = 16
    #: Per-hop network latency in cycles.
    hop_cycles: int = 4
    #: Link bandwidth — words a cluster's network link moves per cycle.
    link_width_words: int = 1

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if self.interleave not in ("block", "page"):
            raise ValueError(
                f"interleave must be 'block' or 'page', got {self.interleave!r}"
            )
        _require_power_of_two("page_blocks", self.page_blocks)
        if self.hop_cycles < 1:
            raise ValueError(f"hop_cycles must be >= 1, got {self.hop_cycles}")
        if self.link_width_words < 1:
            raise ValueError(
                f"link_width_words must be >= 1, got {self.link_width_words}"
            )

    def home_of(self, block: int) -> int:
        """Home cluster of a shared-memory *block*."""
        if self.interleave == "block":
            return block % self.n_clusters
        return (block // self.page_blocks) % self.n_clusters

    def ring_hops(self, src: int, dst: int) -> int:
        """Hop count between two clusters on a bidirectional ring."""
        around = abs(src - dst)
        return min(around, self.n_clusters - around)

    def cluster_of_pe(self, pe: int, n_pes: int) -> int:
        """Cluster of global PE index *pe* (contiguous partition)."""
        return pe // (n_pes // self.n_clusters)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything the cache system needs to run."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    opts: OptimizationConfig = field(default_factory=OptimizationConfig)
    #: Name of a protocol registered in :mod:`repro.core.protocol` —
    #: validated against the registry at construction.  The built-ins:
    #: ``"pim"`` keeps dirty blocks dirty across cache-to-cache transfers
    #: (the SM state); ``"illinois"`` copies dirty blocks back to shared
    #: memory on every transfer, as the Illinois protocol does; the
    #: Section 3 ablation baselines ``"write_through"`` (write-through
    #: with invalidation, no write-allocate) and ``"write_update"``
    #: (write-through with broadcast update of remote copies) reproduce
    #: the copy-back and invalidation-vs-broadcast arguments; and
    #: ``"write_once"`` is Goodman's classic hybrid.
    protocol: str = "pim"
    #: Nominal hardware lock-directory capacity per PE.  Occupancy beyond
    #: this is allowed but counted, to validate the paper's claim that
    #: "one or two lock entries per directory" suffice.
    lock_entries: int = 2
    #: Model data words in cache and memory (slower; used by the
    #: coherence property tests).
    track_data: bool = False
    #: Hierarchical organization: how many cluster buses share the
    #: machine, and the inter-cluster network's timing.  The default
    #: (one cluster) is the flat single-bus model of Section 4.2.
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: Interconnect backend resolving bus-visible transactions —
    #: validated against :mod:`repro.core.interconnect` at construction.
    #: ``"bus"`` is the paper's snooping broadcast bus; ``"directory"``
    #: resolves requests through a home-node directory (sharer bitmasks,
    #: owner tracking), charging ``cluster.hop_cycles`` of indirection
    #: per third-party message.
    interconnect: str = "bus"

    def __post_init__(self) -> None:
        if not is_registered(self.protocol):
            known = ", ".join(protocol_names())
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"registered protocols: {known}"
            )
        # Imported late: repro.core.interconnect imports the protocol
        # package, which this module also imports at top level.
        from repro.core.interconnect import (
            interconnect_names,
            is_interconnect_registered,
        )

        if not is_interconnect_registered(self.interconnect):
            known = ", ".join(interconnect_names())
            raise ValueError(
                f"unknown interconnect {self.interconnect!r}; "
                f"registered interconnects: {known}"
            )
        if self.lock_entries < 1:
            raise ValueError(f"lock_entries must be >= 1, got {self.lock_entries}")

    def with_opts(self, opts: OptimizationConfig) -> "SimulationConfig":
        """Copy of this config with different optimization flags."""
        return replace(self, opts=opts)

    def with_cache(self, cache: CacheConfig) -> "SimulationConfig":
        """Copy of this config with a different cache geometry."""
        return replace(self, cache=cache)

    def with_interconnect(self, interconnect: str) -> "SimulationConfig":
        """Copy of this config on a different interconnect backend."""
        return replace(self, interconnect=interconnect)

    def with_clusters(self, n_clusters: int, **kwargs) -> "SimulationConfig":
        """Copy of this config partitioned into *n_clusters* clusters.

        Extra keyword arguments are forwarded to :class:`ClusterConfig`
        (``hop_cycles``, ``interleave``, ...).
        """
        return replace(
            self, cluster=ClusterConfig(n_clusters=n_clusters, **kwargs)
        )


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the KL1 abstract machine (Section 2.2).

    Goal records are fixed-size (``goal_record_words``, two cache blocks
    in the base model), holding a link word, a code pointer, an arity and
    up to five arguments.  Suspension records hold a link, the floating
    goal's address and the hooked variable.  Communication-area mailboxes
    hold a request flag plus reply slots for the on-demand scheduler.
    """

    n_pes: int = 8
    seed: int = 1
    goal_record_words: int = 8
    suspension_record_words: int = 3
    #: Reply slots (of two words each) per PE mailbox.
    comm_reply_slots: int = 2
    #: Record the reference stream into a TraceBuffer for later replay.
    capture_trace: bool = True
    #: Safety valve: abort if a run exceeds this many reductions.
    max_reductions: int = 50_000_000
    #: How many idle polls an idle PE performs per scheduler turn.
    steal_attempts_per_turn: int = 1
    #: Per-PE heap-segment size (in words) that triggers a stop-and-copy
    #: collection between scheduler sweeps.  None disables GC (the
    #: default: experiment presets size their heaps to avoid collecting,
    #: and the paper excludes GC from measurement).
    gc_threshold_words: "int | None" = None
    #: Probability that a lock on shared data is marked contended
    #: (reduction-granularity interleaving serializes genuine conflicts
    #: away; the paper measures 0.1-2.4 % of unlocks finding a waiter,
    #: so that tail is injected stochastically — see port.py).
    lock_conflict_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError(f"n_pes must be >= 1, got {self.n_pes}")
        if self.goal_record_words < 4:
            raise ValueError(
                f"goal_record_words must be >= 4, got {self.goal_record_words}"
            )
        if self.suspension_record_words < 3:
            raise ValueError(
                "suspension_record_words must be >= 3, got "
                f"{self.suspension_record_words}"
            )

    @property
    def max_goal_args(self) -> int:
        """Arguments a goal record can carry (record minus link/code/arity)."""
        return self.goal_record_words - 3
