"""Cross-protocol ablations (Section 3.1's SM argument and beyond).

The PIM protocol is the Illinois protocol (Papamarcos & Patel, ISCA '84)
plus the shared-modified state ``SM``.  Without SM, every cache-to-cache
transfer of a dirty block must simultaneously copy the data back to
shared memory, so the block becomes clean everywhere; the paper keeps
SM because KL1's cache-to-cache rate is high enough that those copybacks
drive up the busy ratio of the shared-memory modules.

Historically this module compared exactly ``pim`` against ``illinois``;
with the protocol registry (:mod:`repro.core.protocol`) it now replays
one trace under any set of registered protocols — :func:`compare_protocols`
defaults to the original pair, and passing ``protocols=protocol_names()``
sweeps the whole registry (what ``repro compare`` and the report's
protocol matrix do).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.protocol import get_protocol
from repro.core.replay import replay
from repro.trace.buffer import TraceBuffer


def protocol_config(
    name: str, base: Optional[SimulationConfig] = None
) -> SimulationConfig:
    """Copy of *base* (default config if None) running protocol *name*."""
    get_protocol(name)  # fail fast with the registered-names list
    base = base if base is not None else SimulationConfig()
    return replace(base, protocol=name)


def pim_config(base: SimulationConfig = None) -> SimulationConfig:
    """A config using the full five-state PIM protocol."""
    return protocol_config("pim", base)


def illinois_config(base: SimulationConfig = None) -> SimulationConfig:
    """The same config with the Illinois (no-SM) protocol."""
    return protocol_config("illinois", base)


def compare_protocols(
    buffer: TraceBuffer,
    base: Optional[SimulationConfig] = None,
    protocols: Optional[Sequence[str]] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Replay *buffer* under several protocols and summarize the ablation.

    Returns, per protocol, total bus cycles, shared-memory busy cycles,
    swap-out count and cache-to-cache transfer count.  *protocols*
    defaults to the original SM ablation pair ``("pim", "illinois")``,
    whose expected shape (the paper's rationale for SM) is that Illinois
    performs strictly more memory copybacks whenever dirty blocks move
    cache-to-cache.

    ``mode="lazypim"`` replays each protocol through the speculative
    batch-coherence engine instead (docs/SPECULATIVE.md) and adds
    ``batch_commits`` / ``batch_rollbacks`` columns.
    """
    if protocols is None:
        protocols = ("pim", "illinois")
    results = {}
    for name in protocols:
        stats = replay(
            buffer,
            protocol_config(name, base),
            mode=mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        row = {
            "bus_cycles": stats.bus_cycles_total,
            "memory_busy_cycles": stats.memory_busy_cycles,
            "swap_outs": stats.swap_outs,
            "c2c_transfers": stats.c2c_transfers,
            "miss_ratio": stats.miss_ratio,
        }
        if mode == "lazypim":
            row["batch_commits"] = stats.batch_commits
            row["batch_rollbacks"] = stats.batch_rollbacks
        results[name] = row
    return results
