"""The Illinois-protocol baseline for the SM-state ablation (Section 3.1).

The PIM protocol is the Illinois protocol (Papamarcos & Patel, ISCA '84)
plus the shared-modified state ``SM``.  Without SM, every cache-to-cache
transfer of a dirty block must simultaneously copy the data back to
shared memory, so the block becomes clean everywhere; the paper keeps
SM because KL1's cache-to-cache rate is high enough that those copybacks
drive up the busy ratio of the shared-memory modules.

``protocol="illinois"`` in :class:`~repro.core.config.SimulationConfig`
selects the copyback-on-transfer behaviour; this module provides the
convenience constructors and the comparison used by the ablation bench.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.core.config import SimulationConfig
from repro.core.replay import replay
from repro.trace.buffer import TraceBuffer


def pim_config(base: SimulationConfig = None) -> SimulationConfig:
    """A config using the full five-state PIM protocol."""
    base = base if base is not None else SimulationConfig()
    return replace(base, protocol="pim")


def illinois_config(base: SimulationConfig = None) -> SimulationConfig:
    """The same config with the Illinois (no-SM) protocol."""
    base = base if base is not None else SimulationConfig()
    return replace(base, protocol="illinois")


def compare_protocols(
    buffer: TraceBuffer, base: SimulationConfig = None
) -> Dict[str, Dict[str, float]]:
    """Replay *buffer* under both protocols and summarize the ablation.

    Returns, per protocol, total bus cycles, shared-memory busy cycles,
    swap-out count and cache-to-cache transfer count.  The expected shape
    (the paper's rationale for SM): Illinois performs strictly more
    memory copybacks whenever dirty blocks move cache-to-cache.
    """
    results = {}
    for name, config in (
        ("pim", pim_config(base)),
        ("illinois", illinois_config(base)),
    ):
        stats = replay(buffer, config)
        results[name] = {
            "bus_cycles": stats.bus_cycles_total,
            "memory_busy_cycles": stats.memory_busy_cycles,
            "swap_outs": stats.swap_outs,
            "c2c_transfers": stats.c2c_transfers,
            "miss_ratio": stats.miss_ratio,
        }
    return results
