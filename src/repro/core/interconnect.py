"""Pluggable interconnects: the snooping bus and a home-node directory.

:class:`~repro.core.system.PIMCacheSystem` delegates every bus-visible
transaction to an :class:`Interconnect` backend through one call,
``transact(pe, pattern, area, block, req, remotes)``.  The first three
arguments are exactly the old ``_bus`` signature (pattern cost, bus
serialization, per-area accounting); the last three describe what the
transaction *means* so a backend that tracks global state per block —
the directory — can resolve it with point-to-point messages instead of
a broadcast.

* :class:`SnoopingBus` is the paper's single broadcast bus, extracted
  verbatim: every transaction serializes on one timeline, costs its
  pattern cycles, and ignores the request semantics (the broadcast
  itself is the resolution).  Bit-identical to the pre-refactor
  controller, which the golden suite pins down.

* :class:`DirectoryInterconnect` resolves each request against a
  home-node :class:`~repro.core.protocol.directory.DirectoryEntry`
  (owner + sharer bitmask) using the table
  :func:`~repro.core.protocol.directory.build_directory_spec` derives
  from the active cache protocol.  Each third-party message the table
  demands — a forward to the owner, a copyback, one invalidation per
  surviving sharer — adds ``hop_cycles`` of *indirection* on top of the
  base pattern cost (charged to the requesting PE and to the shared
  timeline, and attributed to the ``directory_indirection`` ledger
  bucket).  With no sharing the table never issues a third-party
  message, so a single-sharer workload costs exactly what the bus
  charges — the equivalence property ``tests/test_interconnect_property``
  holds every protocol to.

Backends are registered by name (``register_interconnect``) and
selected by ``SimulationConfig.interconnect``; an unknown name raises a
``KeyError`` listing the registered names, mirroring the protocol
registry.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.protocol.directory import (
    DIR_REQUEST_NAMES,
    DirAction,
    DirState,
    DirectoryEntry,
    DirectorySpec,
    build_directory_spec,
)
from repro.core.states import CacheState

__all__ = [
    "DirectoryInterconnect",
    "DirectoryProtocolError",
    "Interconnect",
    "REQ_CTRL",
    "REQ_GETM",
    "REQ_GETM_NA",
    "REQ_GETS",
    "REQ_GETS_NA",
    "REQ_UPGR",
    "REQ_WT",
    "SnoopingBus",
    "build_interconnect",
    "get_interconnect_factory",
    "interconnect_names",
    "is_interconnect_registered",
    "register_interconnect",
]

#: Request kinds as plain ints (``DirRequest`` values) so the hot
#: handlers pass pre-resolved constants, never enum attribute lookups.
REQ_CTRL = 0
REQ_GETS = 1
REQ_GETS_NA = 2
REQ_GETM = 3
REQ_GETM_NA = 4
REQ_UPGR = 5
REQ_WT = 6

#: Shared empty remote list (the transact default): backends only
#: iterate or measure it.
_NO_REMOTES: Tuple[int, ...] = ()

_EM, _SM, _EC = CacheState.EM, CacheState.SM, CacheState.EC


class DirectoryProtocolError(AssertionError):
    """The directory table has no row for a request the controller
    issued — a derivation bug the model checker surfaces as a violation."""


class Interconnect:
    """Base interface; backends override :meth:`transact`.

    ``tracks_residency`` marks backends that maintain per-block global
    state and need the residency notes (``note_drop`` and friends); the
    system only wires the note hooks up when it is True, so the bus
    backend pays nothing for them.
    """

    name = "abstract"
    tracks_residency = False

    __slots__ = ("system", "free_at", "_pattern_cost", "_stats", "_pe_cycles")

    def __init__(self, system):
        self.system = system
        #: Shared serialization timeline: the cycle at which the
        #: interconnect next frees up.
        self.free_at = 0
        self._pattern_cost = system._pattern_cost
        self._stats = system.stats
        self._pe_cycles = system._pe_cycles

    def transact(
        self, pe: int, pattern: int, area: int,
        block: int = -1, req: int = REQ_CTRL, remotes=_NO_REMOTES,
    ) -> int:
        raise NotImplementedError

    def check(self) -> None:
        """Assert backend-internal invariants (``check_invariants`` hook)."""

    # Residency notes: no-ops on backends that don't track it.

    def note_drop(self, block: int, pe: int) -> None:
        pass

    def note_exclusive(self, pe: int, block: int) -> None:
        pass

    def note_flush(self) -> None:
        pass


class SnoopingBus(Interconnect):
    """The paper's single broadcast bus (the extracted ``_bus``).

    One global timeline; every transaction costs its pattern cycles and
    the request semantics are ignored — the broadcast resolves
    coherence by construction.
    """

    name = "bus"
    tracks_residency = False

    __slots__ = ()

    def transact(
        self, pe: int, pattern: int, area: int,
        block: int = -1, req: int = REQ_CTRL, remotes=_NO_REMOTES,
    ) -> int:
        """Charge one bus access pattern and advance the PE/bus clocks."""
        cycles = self._pattern_cost[pattern]
        stats = self._stats
        stats.pattern_counts[pattern] += 1
        stats.pattern_cycles[pattern] += cycles
        stats.bus_cycles_by_area[area] += cycles
        pe_cycles = self._pe_cycles
        start = pe_cycles[pe] + 1
        if start < self.free_at:
            stats.bus_wait_cycles += self.free_at - start
            start = self.free_at
        end = start + cycles
        self.free_at = end
        pe_cycles[pe] = end
        return cycles


class DirectoryInterconnect(Interconnect):
    """Home-node directory: sharer bitmasks, owner tracking, transients.

    The point-to-point network still serializes requests on one
    home-node timeline (the paper's memory modules are the natural home
    nodes), but each request that must touch third parties — forward to
    the owner, copy dirty data back, invalidate surviving sharers —
    pays ``hop_cycles`` of indirection per message.  ``hop_cycles``
    reuses ``config.cluster.hop_cycles`` so flat and clustered runs
    price a network hop identically.

    While a transaction is in flight the entry sits in the named
    transient state of its table row and the sharer mask shrinks one
    invalidation at a time; an ``observer`` callback (installed by the
    model checker) sees every micro-step as
    ``observer(step, pe, block, entry, rule)`` with ``step`` in
    ``{"issue", "forward", "copyback", "inval", "update", "complete"}``.
    """

    name = "directory"
    tracks_residency = True

    __slots__ = ("spec", "entries", "hop_cycles", "observer", "_rules")

    def __init__(self, system):
        super().__init__(system)
        self.spec: DirectorySpec = build_directory_spec(system.protocol_spec)
        self._rules = dict(self.spec.rows)
        #: block -> DirectoryEntry, created lazily, dropped when the
        #: last copy dies (an absent entry *is* the I state).
        self.entries: Dict[int, DirectoryEntry] = {}
        self.hop_cycles = system.config.cluster.hop_cycles
        self.observer: Optional[Callable] = None

    # -- the transaction path ------------------------------------------

    def transact(
        self, pe: int, pattern: int, area: int,
        block: int = -1, req: int = REQ_CTRL, remotes=_NO_REMOTES,
    ) -> int:
        stats = self._stats
        cycles = self._pattern_cost[pattern]
        stats.pattern_counts[pattern] += 1
        stats.pattern_cycles[pattern] += cycles
        stats.bus_cycles_by_area[area] += cycles
        stats.directory_transactions += 1
        extra = self._resolve_request(pe, block, req, remotes) if req else 0
        pe_cycles = self._pe_cycles
        start = pe_cycles[pe] + 1
        if start < self.free_at:
            stats.bus_wait_cycles += self.free_at - start
            start = self.free_at
        end = start + cycles + extra
        self.free_at = end
        pe_cycles[pe] = end
        return cycles + extra

    def _resolve_request(self, pe: int, block: int, req: int, remotes) -> int:
        """Walk one table row's actions; returns the indirection cycles."""
        entries = self.entries
        entry = entries.get(block)
        if entry is None:
            entry = DirectoryEntry()
            entries[block] = entry
        rule = self._rules.get((entry.state, req))
        if rule is None:
            raise DirectoryProtocolError(
                f"{self.spec.name}: no directory row for "
                f"({entry.state.name}, {DIR_REQUEST_NAMES[req]}) "
                f"issued by PE{pe} on block {block:#x}"
            )
        entry.transient = rule.transient
        observer = self.observer
        if observer is not None:
            observer("issue", pe, block, entry, rule)
        owner = entry.owner
        forwards = 0
        invals = 0
        supplier_forwarded = False
        for action in rule.actions:
            if action is DirAction.FWD_OWNER:
                if owner >= 0 and owner != pe:
                    forwards += 1
                    supplier_forwarded = True
                    if observer is not None:
                        observer("forward", pe, block, entry, rule)
            elif action is DirAction.FWD_SHARER:
                forwards += 1
                supplier_forwarded = True
                if observer is not None:
                    observer("forward", pe, block, entry, rule)
            elif action is DirAction.OWNER_COPYBACK:
                if owner >= 0 and owner != pe:
                    forwards += 1
                    # The recall also tells the owner its fate, so no
                    # separate invalidation message goes to it.
                    supplier_forwarded = True
                    if observer is not None:
                        observer("copyback", pe, block, entry, rule)
            elif action is DirAction.INVAL_SHARERS:
                # One message per surviving remote sharer; the supplier
                # (when one was forwarded to) learns its fate from the
                # forward itself.
                count = len(remotes) - 1 if supplier_forwarded else len(remotes)
                sent = 0
                for target in remotes:
                    if sent >= count:
                        break
                    entry.sharers &= ~(1 << target)
                    sent += 1
                    if observer is not None:
                        observer("inval", pe, block, entry, rule)
                invals += sent
            elif action is DirAction.UPDATE_SHARERS:
                invals += len(remotes)
                if observer is not None:
                    for _ in remotes:
                        observer("update", pe, block, entry, rule)
        # Completion: the entry resynchronizes to actual residency (the
        # one source of truth the simulator keeps — the caches), and the
        # transient clears.
        state, new_owner, sharers = self._residency(block)
        entry.state = state
        entry.owner = new_owner
        entry.sharers = sharers
        entry.transient = None
        if observer is not None:
            observer("complete", pe, block, entry, rule)
        if not sharers:
            del entries[block]
        stats = self._stats
        stats.directory_forwards += forwards
        stats.directory_invalidations += invals
        extra = self.hop_cycles * (forwards + invals)
        stats.directory_indirection_cycles += extra
        return extra

    def _residency(self, block: int):
        """(state, owner, sharer mask) recomputed from the caches."""
        system = self.system
        holders = system._holders.get(block)
        if not holders:
            return DirState.I, -1, 0
        caches = system.caches
        mask = 0
        owner = -1
        state = DirState.S
        for holder in holders:
            mask |= 1 << holder
            line_state = caches[holder]._lines[block].state
            if line_state is _EM:
                state, owner = DirState.M, holder
            elif line_state is _SM:
                state, owner = DirState.O, holder
            elif line_state is _EC:
                state, owner = DirState.E, holder
        return state, owner, mask

    # -- residency notes (bus-free copy movement) ----------------------

    def note_drop(self, block: int, pe: int) -> None:
        """A copy died outside a transaction on this block (eviction,
        purge, consumed ER/RP) — shrink the entry in place."""
        entry = self.entries.get(block)
        if entry is None:
            return
        entry.sharers &= ~(1 << pe)
        if not entry.sharers:
            del self.entries[block]
            return
        if entry.owner == pe:
            # The owner died without a transaction (a purged dirty copy
            # is dead data by the read-once contract): survivors are
            # plain sharers.
            entry.owner = -1
            entry.state = DirState.S

    def note_exclusive(self, pe: int, block: int) -> None:
        """A DW allocated the block dirty with zero bus traffic."""
        self.entries[block] = DirectoryEntry(
            DirState.M, owner=pe, sharers=1 << pe
        )

    def note_flush(self) -> None:
        self.entries.clear()

    # -- invariants -----------------------------------------------------

    def check(self) -> None:
        """Directory-vs-caches agreement, called by ``check_invariants``.

        Every held block has an entry whose sharer mask matches the
        presence map exactly; stable states agree with the resolved
        residency — except that an E entry may cover a silently
        dirtied (EM) copy, the one transition a home node cannot see.
        """
        system = self.system
        entries = self.entries
        for block in system._holders:
            assert block in entries, (
                f"directory: held block {block:#x} has no entry"
            )
        for block, entry in entries.items():
            assert entry.transient is None, (
                f"directory: block {block:#x} left in transient "
                f"{entry.transient!r} between transactions"
            )
            state, owner, sharers = self._residency(block)
            assert sharers, (
                f"directory: entry for block {block:#x} outlived its copies"
            )
            assert entry.sharers == sharers, (
                f"directory: block {block:#x} sharer mask "
                f"{entry.sharers:#b} != residency {sharers:#b}"
            )
            if entry.state is DirState.E and state is DirState.M:
                # Silent E->M upgrade: invisible to the home node by
                # design; owners must still agree.
                assert entry.owner == owner, (
                    f"directory: block {block:#x} silently dirtied but "
                    f"owner {entry.owner} != residency owner {owner}"
                )
                continue
            assert entry.state is state, (
                f"directory: block {block:#x} entry {entry.state.name} != "
                f"residency {state.name}"
            )
            assert entry.owner == owner, (
                f"directory: block {block:#x} entry owner {entry.owner} "
                f"!= residency owner {owner}"
            )


# ---------------------------------------------------------------------------
# Registry (mirrors repro.core.protocol.registry).

_REGISTRY: Dict[str, Callable] = {}


def register_interconnect(
    name: str, factory: Callable, replace: bool = False
) -> None:
    """Register an interconnect *factory* (``factory(system)``)."""
    if not replace and name in _REGISTRY:
        raise ValueError(f"interconnect {name!r} is already registered")
    _REGISTRY[name] = factory


def get_interconnect_factory(name: str) -> Callable:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown interconnect {name!r}; registered: {known}"
        ) from None


def interconnect_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def is_interconnect_registered(name: str) -> bool:
    return name in _REGISTRY


def build_interconnect(name: str, system) -> Interconnect:
    return get_interconnect_factory(name)(system)


register_interconnect(SnoopingBus.name, SnoopingBus)
register_interconnect(DirectoryInterconnect.name, DirectoryInterconnect)
