"""Per-PE hardware lock directory (Section 3.1).

The lock directory is *separate* from the cache directory so that locks
are word-granular, survive the locked block being swapped out, and do
not widen every cache tag.  Each entry holds a locked word address in
state ``LCK`` (nobody waiting) or ``LWAIT`` (one or more PEs busy-wait
for the ``UL`` broadcast).

The paper argues one or two entries per directory suffice for parallel
logic programming; the model therefore allows occupancy beyond the
configured capacity but reports it (``overflows``) so the claim can be
checked rather than silently assumed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.states import LockState


class LockDirectory:
    """Word-granularity lock entries owned by one PE."""

    __slots__ = ("pe", "capacity", "entries", "max_occupancy", "overflows")

    def __init__(self, pe: int, capacity: int = 2):
        self.pe = pe
        self.capacity = capacity
        self.entries: Dict[int, LockState] = {}
        self.max_occupancy = 0
        self.overflows = 0

    def state(self, address: int) -> LockState:
        """Current lock state of *address* (``EMP`` when not present)."""
        return self.entries.get(address, LockState.EMP)

    def lock(self, address: int) -> None:
        """Register *address* as locked (``LCK``) by this PE."""
        self.entries[address] = LockState.LCK
        occupancy = len(self.entries)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        if occupancy > self.capacity:
            self.overflows += 1

    def mark_waiting(self, address: int) -> None:
        """Record that another PE is now busy-waiting on *address*."""
        if address in self.entries:
            self.entries[address] = LockState.LWAIT

    def unlock(self, address: int) -> Optional[LockState]:
        """Release *address*; returns its prior state, or None if absent."""
        return self.entries.pop(address, None)

    def holds(self, address: int) -> bool:
        return address in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        held = ", ".join(
            f"{addr:#x}:{state.name}" for addr, state in self.entries.items()
        )
        return f"LockDirectory(pe={self.pe}, [{held}])"
