"""Table-driven coherence-protocol layer.

:mod:`repro.core.protocol.spec` defines the declarative
:class:`ProtocolSpec` transition tables;
:mod:`repro.core.protocol.registry` holds the named registry and the
five built-in protocols (``pim``, ``illinois``, ``write_through``,
``write_update``, ``write_once``);
:mod:`repro.core.protocol.directory` derives home-node directory tables
(sharer bitmasks, owner tracking, transient states) from any spec for
the directory interconnect.  This package depends only on
:mod:`repro.core.states` so that config, system and replay can all
import it without cycles.
"""

from repro.core.protocol.directory import (
    DirAction,
    DirectoryEntry,
    DirectorySpec,
    DirRequest,
    DirRule,
    DirState,
    build_directory_spec,
)
from repro.core.protocol.registry import (
    ILLINOIS,
    PIM,
    WRITE_ONCE,
    WRITE_THROUGH,
    WRITE_UPDATE,
    get_protocol,
    is_registered,
    protocol_names,
    register,
    temporarily_register,
)
from repro.core.protocol.spec import (
    ProtocolSpec,
    RemoteAction,
    StoreRule,
    SupplierRule,
)

__all__ = [
    "ILLINOIS",
    "PIM",
    "WRITE_ONCE",
    "WRITE_THROUGH",
    "WRITE_UPDATE",
    "DirAction",
    "DirectoryEntry",
    "DirectorySpec",
    "DirRequest",
    "DirRule",
    "DirState",
    "ProtocolSpec",
    "RemoteAction",
    "StoreRule",
    "SupplierRule",
    "build_directory_spec",
    "get_protocol",
    "is_registered",
    "protocol_names",
    "register",
    "temporarily_register",
]
