"""Compile a :class:`ProtocolSpec` into a specialized replay kernel.

The interpreted fast kernel in :mod:`repro.core.replay` pays three costs
on *every* reference: a dispatch-table double subscript, a chain of
handler-identity tests to recognize the inlinable hit shapes, and a
silent-store table lookup on write hits.  All three are decidable
*before* the loop — the first two from the dispatch table (fixed for the
whole replay), the third from the protocol spec (fixed at registration).
This module therefore emits, per registered spec, a straight-line Python
replay loop with those decisions already taken:

* every ``(op, area)`` dispatch cell is classified **once** by handler
  identity into a *kind* (plain-read, silent-store, direct-write,
  exclusive-read, read-purge, or slow);
* the whole trace is preprocessed (numpy) into one packed integer per
  reference — ``kind << tag_shift | pe << pe_shift | block`` — and the
  flat cross-PE directory mirror is *aliased* under every fast-kind
  tag, so the packed key probes it without masking; the probe itself
  runs inside a ``zip(keys, map(probe, keys))`` iterator at C speed,
  leaving the loop body only a threshold compare on the tag and the LRU
  stamp per hit.  Distinct block numbers are densely renumbered when
  the resulting key space is small (the common case), which turns the
  mirror into a flat *list* probed by ``list.__getitem__``; otherwise
  the mirror is a dict over the raw packed keys, still machine-word
  integers with cheap hashes;
* the spec's silent-store table is compiled into an ``is``-test chain on
  the line's state (hottest state first) instead of a tuple subscript;
* read-purge hits, and exclusive-read hits on a block's last word, are
  bus-free in the interpreted path too (read, purge, one cycle); they
  are classified ``KIND_PURGE`` and handled inline instead of paying a
  handler dispatch;
* consecutive read-family references by the same PE to the same block
  are *conflict-free runs*: no other PE intervenes and a read miss
  always allocates, so only the head of the run can change any state
  and the rest are collapsed to no-ops during preprocessing
  (``KIND_DUP``), their hits, cycles and net LRU stamp all folded in
  bulk;
* hit counters are not touched in the loop at all: per-cell and per-PE
  hit totals are ``np.bincount`` folds of the preprocessed columns, with
  the (rare) fast-kind references that *fell back* to a handler
  subtracted out, so a run of conflict-free hits is counted in bulk
  after the fact.

Preprocessing itself is cached (single slot, :data:`_PREP_CACHE`): the
packed keys depend only on the trace buffer, the block geometry and the
cell classification, all of which are shared across the repeated replays
of a parameter sweep or benchmark, so every replay after the first
starts straight at the loop.  Trace code validation (op/area ranges)
happens inside preprocessing with numpy instead of the interpreted
path's Python scan, raising the same ``ValueError``.

Timing stays bit-exact.  ``_bus`` starts every transaction at
``max(pe_clock + 1, bus_free_at)``, so the requester's clock must
include all of its earlier hit cycles *before* any handler runs; the
kernel precomputes a per-PE running count of fast-kind references
(``prefix``) and, on each slow reference, credits the requester's
deferred hits (``prefix[i]`` minus its fallbacks so far) into the live
clock before dispatching.  Only the requester's clock is ever read by a
handler, so other PEs' credits can stay deferred until the end.

The flat mirror dict is kept exact by :class:`~repro.core.cache.Cache`
itself: while a generated kernel runs, each cache carries a ``_mirror``
reference and mirrors every ``insert``/``remove``/``flush`` into it, so
handler-driven residency changes (fills, evictions, invalidations,
purges) are visible to the next probe.

The pluggable interconnect needs no kernel specialization: every cycle
a backend charges lives behind the handlers' ``system._bus`` binding
(:mod:`repro.core.interconnect`), which the slow path reaches through
the same dispatch table the interpreted kernel uses, and the only
residency change the fast paths make without a handler — the inline
read-purge — notifies the home-node directory through the same
``system._drop_holder`` hook the interpreted path calls.  A generated
kernel is therefore bit-identical to the interpreted one under either
backend, which the differential oracle checks on every fuzz case.

Kernels are emitted as Python source, ``compile()``d once at
registration, and cached by spec name (:func:`get_kernel`).  The module
itself needs no numpy — the kernel receives the module as an argument —
so registration works on hosts without it; :func:`available` is the
run-eligibility gate.  A kernel returns ``None`` when a (system, trace)
pair falls outside its envelope (packed keys would exceed
:data:`MAX_KEY_BITS`, negative addresses, out-of-range PEs, data
tracking, no caches); the caller then falls back to the interpreted
kernel, which stays authoritative as the differential oracle's
reference.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.states import CacheState
from repro.trace.events import Area, Op

__all__ = ["available", "get_kernel", "kernel_source"]

try:  # pragma: no cover - exercised implicitly by every replay
    import numpy as np_module
except ImportError:  # pragma: no cover - numpy-less hosts
    np_module = None

N_OPS = len(Op)
N_AREAS = len(Area)
N_CELLS = N_OPS * N_AREAS

#: Reference kinds, by packed-key tag order.  The loop branches on the
#: tag with threshold compares, so the order is load-bearing: the two
#: plain-hit kinds (R, ER) come first and share one branch, the two
#: silent-store kinds (W, DW) share the next, fast kinds precede
#: ``KIND_SLOW``, and ``KIND_DUP`` (collapsed run tail) sorts last so
#: the hit branches never test for it.
KIND_R, KIND_ER, KIND_W, KIND_DW, KIND_PURGE, KIND_SLOW, KIND_DUP = range(7)

#: Packed-key layout: ``kind << tag_shift | pe << pe_shift | block``,
#: with the pe/block widths sized per trace.  Three tag bits cover the
#: seven kinds; beyond ``MAX_KEY_BITS`` total the trace is out of the
#: kernel's envelope.  When the trace's *distinct* block set is small
#: enough that a dense renumbering keeps the whole key space under
#: ``MAX_FLAT_LIST`` slots, the directory mirror is a flat list probed
#: by ``list.__getitem__`` (the fastest probe Python offers); otherwise
#: it is a dict over the raw packed keys.
N_TAG_BITS = 3
MAX_KEY_BITS = 60
MAX_FLAT_LIST = 1 << 21

#: Silent-store ``is``-test emission order: hottest states first (a
#: store hit on an exclusive-modified block is the common case).
_SILENT_TEST_ORDER = (
    CacheState.EM,
    CacheState.EC,
    CacheState.SM,
    CacheState.S,
)

#: name -> (spec object, compiled kernel); identity-checked so a
#: re-registered or temporarily shadowed spec recompiles.
_CACHE: Dict[str, Tuple[object, Callable]] = {}

#: Single-slot preprocessing cache: ``(buffer, len, params, payload)``.
#: Sweeps and benchmarks replay one trace under many configs, so one
#: slot captures the reuse; the identity + length check makes a mutated
#: (appended-to) buffer recompute.  Holding the buffer strongly keeps
#: the cached arrays valid for its lifetime.
_PREP_CACHE: Optional[Tuple[object, int, tuple, tuple]] = None


def available() -> bool:
    """True when generated kernels can actually run (numpy present)."""
    return np_module is not None


def _preprocess(buffer, np, shift, block_mask, n_pes, kinds):
    """Pack *buffer* into per-reference keys plus bulk-fold tables.

    Returns ``(keys, prefix, total_cells, total_pe, refs_pairs,
    pe_shift, tag_shift, remap, blocks_by_id, flat_size)``, or ``None``
    when the trace is outside the generated kernel's envelope.  Raises
    ``ValueError`` for op/area codes out of range, mirroring
    ``repro.core.replay._validate_codes``.  Results are cached across
    calls with the same buffer and parameters (see :data:`_PREP_CACHE`).
    """
    global _PREP_CACHE
    n = len(buffer)
    params = (shift, block_mask, n_pes, kinds)
    cached = _PREP_CACHE
    if cached is not None and cached[0] is buffer and cached[1] == n \
            and cached[2] == params:
        return cached[3]
    pe_col, op_col, area_col, addr_col, _ = buffer.columns()
    pe8 = np.frombuffer(pe_col, np.int8)
    op8 = np.frombuffer(op_col, np.int8)
    area8 = np.frombuffer(area_col, np.int8)
    addr = np.frombuffer(addr_col, np.int64)
    if not (
        0 <= int(op8.min()) <= int(op8.max()) < N_OPS
        and 0 <= int(area8.min()) <= int(area8.max()) < N_AREAS
    ):
        raise ValueError("trace contains an out-of-range op or area code")
    if int(addr.min()) < 0 or int(pe8.min()) < 0 or int(pe8.max()) >= n_pes:
        return None
    pe_bits = max(1, (n_pes - 1).bit_length())

    # Dense block renumbering: replaying probes only blocks the trace
    # actually references, so distinct block numbers are renumbered
    # 0..U-1 and, when the resulting key space is small, the directory
    # mirror becomes a flat list — probed by list.__getitem__ instead
    # of dict hashing.  ``remap`` translates real block numbers (as
    # handlers see them) into dense ids for the mirror bookkeeping, and
    # ``blocks_by_id`` translates back for the inline purge path.
    blocks = addr >> shift
    uniques, inverse = np.unique(blocks, return_inverse=True)
    dense_bits = max(1, (len(uniques) - 1).bit_length())
    if (KIND_DUP << (dense_bits + pe_bits)) < MAX_FLAT_LIST:
        pe_shift = dense_bits
        block_col = inverse.astype(np.int64)
        unique_list = uniques.tolist()
        remap = dict(zip(unique_list, range(len(unique_list))))
        blocks_by_id = unique_list
        flat_size = (KIND_DUP << (dense_bits + pe_bits)) + 1
    else:
        block_bits = max(1, (int(addr.max()) >> shift).bit_length())
        if N_TAG_BITS + pe_bits + block_bits > MAX_KEY_BITS:
            return None
        pe_shift = block_bits
        block_col = blocks
        remap = None
        blocks_by_id = None
        flat_size = None
    tag_shift = pe_shift + pe_bits

    cell = op8.astype(np.int64) * N_AREAS + area8
    kind = np.array(kinds, np.int64)[cell]
    if KIND_ER in kinds:
        # An ER on a block's last word purges after the read; promote it
        # to the purge fast path instead of deciding per reference.
        kind[(kind == KIND_ER) & ((addr & block_mask) == block_mask)] = \
            KIND_PURGE
    key = (
        (kind << tag_shift)
        | (pe8.astype(np.int64) << pe_shift)
        | block_col
    )

    fast = kind < KIND_SLOW
    total_cells = np.bincount(cell[fast], minlength=N_CELLS).tolist()
    total_pe = np.bincount(pe8[fast], minlength=n_pes).tolist()
    # Per-PE running count of fast-kind references before each index:
    # the slow path credits the requester's deferred hit cycles from
    # this before dispatching (bus start times read the live clock).
    prefix = np.empty(n, np.int64)
    fast64 = fast.astype(np.int64)
    for p in range(n_pes):
        sel = pe8 == p
        run = np.cumsum(fast64[sel])
        prefix[sel] = run - fast64[sel]

    if n > 1:
        # Conflict-free same-PE runs: a reference with the same packed
        # key as its predecessor (same PE, block, and kind) can only
        # repeat the head's hit outcome, because no other PE intervened
        # and a read miss always allocates — so the tail collapses to
        # KIND_DUP no-ops; its hits, cycles and LRU stamp fold in bulk.
        # Only the read-family kinds qualify: a store miss may write
        # through without allocating (write-once), and a purge removes
        # the very line its tail would need.
        dup = (key[1:] == key[:-1]) & (kind[1:] <= KIND_ER)
        if dup.any():
            key[1:][dup] = KIND_DUP << tag_shift
    keys = key.tolist()

    refs_hist = np.bincount(cell, minlength=N_CELLS)
    refs_pairs = [
        (c % N_AREAS, c // N_AREAS, int(refs_hist[c]))
        for c in range(N_CELLS)
        if refs_hist[c]
    ]
    payload = (keys, prefix, total_cells, total_pe, refs_pairs,
               pe_shift, tag_shift, remap, blocks_by_id, flat_size)
    _PREP_CACHE = (buffer, n, params, payload)
    return payload


def _silent_store_chain(spec) -> str:
    """The compiled silent-store hit path: one ``is`` test per silent
    state, state update only when the state actually changes."""
    silent = spec.silent_store_next()
    lines = []
    for state in _SILENT_TEST_ORDER:
        next_state = silent[state]
        if next_state is None:
            continue
        lines.append(f"                    if st is _{state.name}:")
        if next_state is not state:
            lines.append(
                f"                        line.state = _{next_state.name}"
            )
        lines.append("                        gtick += 1")
        lines.append("                        line.lru = gtick")
        lines.append("                        continue")
    return "\n".join(lines)


def _state_aliases(spec) -> str:
    """Local bindings for the states the hit paths touch."""
    silent = spec.silent_store_next()
    used = []
    for state in _SILENT_TEST_ORDER:
        next_state = silent[state]
        if next_state is None:
            continue
        for s in (state, next_state):
            if s not in used:
                used.append(s)
    return "\n".join(
        f"    _{s.name} = _ST_{s.name}" for s in used
    )


def kernel_source(spec) -> str:
    """Emit the replay-kernel source for *spec* (see module docstring)."""
    if spec.has_silent_stores:
        classify = (
            f"    write_h = table[{int(Op.W)}][0]\n"
            f"    dw_h = next(\n"
            f"        (h for h in table[{int(Op.DW)}] if h is not write_h),"
            " None\n"
            f"    )"
        )
        w_branch = f"""\
                elif k < PURGE_TAG:
                    st = line.state
{_silent_store_chain(spec)}
"""
        aliases = _state_aliases(spec)
    else:
        # Pure write-through family: no hit state absorbs a store, so
        # no write fast path is emitted and W/DW cells classify slow —
        # exactly the interpreted kernel's write_h = dw_h = None case.
        classify = "    write_h = dw_h = None"
        w_branch = ""
        aliases = ""
    return f'''\
def _kernel(system, buffer, np):
    """Generated replay kernel for the {spec.name!r} protocol.

    Compiled by repro.core.protocol.codegen at registration; returns
    the system's stats, or None when this (system, trace) pair is
    outside the kernel's envelope and the caller must fall back to
    the interpreted kernel.
    """
    from repro.core.replay import ReplayBlockedError

    caches = system.caches
    n_pes = system.n_pes
    if not caches or system.track_data:
        return None
    stats = system.stats
    if len(buffer) == 0:
        return stats

    # Classify every dispatch cell by handler identity — the per-
    # reference tests of the interpreted kernel, performed once.
    table = system._op_table
    read_h = table[0][0]
    er_h = next(
        (h for h in table[{int(Op.ER)}] if h is not read_h), None
    )
    rp_h = next(
        (h for h in table[{int(Op.RP)}] if h is not read_h), None
    )
{classify}
{aliases}
    kinds = []
    for row in table:
        for h in row:
            if h is read_h:
                kinds.append({KIND_R})
            elif h is er_h:
                kinds.append({KIND_ER})
            elif h is write_h:
                kinds.append({KIND_W})
            elif h is dw_h:
                kinds.append({KIND_DW})
            elif h is rp_h:
                kinds.append({KIND_PURGE})
            else:
                kinds.append({KIND_SLOW})

    shift = system._block_shift
    prep = _preprocess(
        buffer, np, shift, system._block_mask, n_pes, tuple(kinds)
    )
    if prep is None:
        return None
    keys, prefix, total_cells, total_pe, refs_pairs, pe_shift, \\
        tag_shift, remap, blocks_by_id, flat_size = prep
    W_TAG = {KIND_W} << tag_shift
    PURGE_TAG = {KIND_PURGE} << tag_shift
    SLOW_TAG = {KIND_SLOW} << tag_shift
    DUP_TAG = {KIND_DUP} << tag_shift
    KEY_MASK = (1 << tag_shift) - 1
    BLK_MASK = (1 << pe_shift) - 1
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()

    # Flat cross-PE mirror of every cache's directory, aliased under
    # every fast-kind tag so packed keys probe it unmasked — a dense
    # list when preprocessing could renumber the blocks, else a dict;
    # Cache.insert/remove/flush keep it exact while _mirror is
    # attached.
    if flat_size is not None:
        flat = [None] * flat_size
        probe = flat.__getitem__
    else:
        flat = {{}}
        probe = flat.get
    for p in range(n_pes):
        cache = caches[p]
        bases = tuple(
            (t << tag_shift) | (p << pe_shift)
            for t in range({KIND_SLOW})
        )
        for blk, line in cache._lines.items():
            index = blk if remap is None else remap.get(blk)
            if index is not None:
                for base in bases:
                    flat[base | index] = line
        cache._mirror = flat
        cache._mirror_bases = bases
        cache._mirror_remap = remap

    waiting = system._waiting
    pe_cycles = system._pe_cycles
    drop_holder = system._drop_holder
    fb_cells = [0] * {N_CELLS}
    fb_pe = [0] * n_pes
    consumed = [0] * n_pes
    pdirty = pclean = 0
    gtick = max(cache._tick for cache in caches)
    prefix_at = prefix.item
    i = -1
    try:
        # Probe-first: the probe runs inside the zip/map iterator at C
        # speed for every reference, and the aliased flat mirror makes
        # the packed key probe-ready without masking the tag off; the
        # Python-level branch then only has to sort hits by kind.
        for k, line in zip(keys, map(probe, keys)):
            i += 1
            if line is not None:
                if k < W_TAG:
                    gtick += 1
                    line.lru = gtick
                    continue
{w_branch}\
                elif k < SLOW_TAG:
                    # Bus-free read-then-purge (RP hit, or ER hit on
                    # the block's last word): drop the line, settle
                    # the purge counters; hit count and cycle fold in
                    # bulk.  The dying line's LRU stamp cannot affect
                    # any later victim choice, so gtick is not
                    # advanced.
                    kk = k & KEY_MASK
                    p = kk >> pe_shift
                    blk = kk & BLK_MASK
                    if blocks_by_id is not None:
                        blk = blocks_by_id[blk]
                    caches[p].remove(blk)
                    drop_holder(blk, p)
                    if line.state is _ST_EM or line.state is _ST_SM:
                        pdirty += 1
                    else:
                        pclean += 1
                    continue
            elif k >= DUP_TAG:
                # Collapsed tail of a conflict-free same-PE run.
                continue
            # Slow path: sync the requester's deferred hit cycles,
            # then dispatch through the table exactly as access() does.
            pe = pe_col[i]
            op = op_col[i]
            area = area_col[i]
            address = addr_col[i]
            before = prefix_at(i) - fb_pe[pe]
            if before != consumed[pe]:
                pe_cycles[pe] += before - consumed[pe]
                consumed[pe] = before
            if k < SLOW_TAG:
                fb_cells[op * {N_AREAS} + area] += 1
                fb_pe[pe] += 1
            cache = caches[pe]
            cache._tick = gtick
            result = table[op][area](
                pe, op, area, address, address >> shift, 0, flags_col[i]
            )
            gtick = cache._tick
            if result[0] == -1:  # BLOCKED
                raise ReplayBlockedError(i, pe, op, area, address)
            if waiting:
                waiting.pop(pe, None)
    finally:
        for cache in caches:
            cache._mirror = None
            cache._mirror_remap = None
    for cache in caches:
        cache._tick = gtick

    # Fold the deferred counters.
    for p in range(n_pes):
        pe_cycles[p] += total_pe[p] - fb_pe[p] - consumed[p]
    # Every non-fallback fast-kind reference (dup tails included) is one
    # bus-free cycle; fallback handlers credit their own bus-free sites.
    stats.hit_service_cycles += sum(total_pe) - sum(fb_pe)
    hits = system._hits
    for c in range({N_CELLS}):
        count = total_cells[c] - fb_cells[c]
        if count:
            hits[c % {N_AREAS}][c // {N_AREAS}] += count
    for c, kd in enumerate(kinds):
        if kd == {KIND_DW}:
            stats.dw_demotions += total_cells[c] - fb_cells[c]
    stats.purges_dirty += pdirty
    stats.purges_clean += pclean
    refs = stats.refs
    for a, o, count in refs_pairs:
        refs[a][o] += count
    return stats
'''


def _compile(spec) -> Callable:
    source = kernel_source(spec)
    namespace = {f"_ST_{s.name}": s for s in CacheState}
    namespace["_preprocess"] = _preprocess
    code = compile(source, f"<repro-codegen:{spec.name}>", "exec")
    exec(code, namespace)
    return namespace["_kernel"]


def get_kernel(spec) -> Callable:
    """The compiled kernel for *spec*, built once and cached by name.

    The cache is identity-checked against the spec object, so replacing
    a registration (or shadowing one with ``temporarily_register``)
    recompiles on next use instead of serving the stale kernel.
    """
    entry = _CACHE.get(spec.name)
    if entry is not None and entry[0] is spec:
        return entry[1]
    fn = _compile(spec)
    _CACHE[spec.name] = (spec, fn)
    return fn
