"""Directory-protocol tables derived from snooping :class:`ProtocolSpec`s.

A snooping bus resolves every transaction by broadcast: all caches see
the request in the same cycle, so the protocol needs no per-block global
state.  A home-node directory replaces the broadcast with point-to-point
messages, and the home node must therefore *remember*, per block, what
the broadcast would have discovered: whether copies exist, which cache
owns the (possibly dirty) master copy, and which caches share it.

This module expresses that bookkeeping in the same table-driven idiom as
:class:`~repro.core.protocol.spec.ProtocolSpec` (following the LOCKE
specification tables and BlackParrot's BedRock directory family):

* :class:`DirState` — the home node's stable per-block states
  (I/S/E/M plus O, the directory image of the paper's SM
  "shared-modified supplier keeps ownership" state);
* :class:`DirRequest` — the request kinds the cache controller issues
  to the home node (one per bus call site in
  :class:`~repro.core.system.PIMCacheSystem`);
* :class:`DirRule` — one row of the directory table: the named
  *transient* state the entry occupies while the transaction is in
  flight, the point-to-point actions the home node performs (forward to
  owner, invalidate sharers, …), and the predicted stable state/owner
  when the transaction completes.

:func:`build_directory_spec` derives the full table for any registered
cache protocol from its store/supplier rules and FI-copyback policy, so
the directory family tracks the snooping family automatically — a new
``ProtocolSpec`` gets its directory tables for free (and the coverage
test in ``tests/test_directory_spec.py`` holds every registered protocol
to that).

The directory can never observe a *silent* store (an EC copy upgrading
to EM without bus traffic), so — exactly as in real MESI directories —
an ``E`` entry means "one copy, possibly silently dirtied by its owner";
the home node learns the truth the next time it handles the block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.states import CacheState
from repro.core.protocol.spec import ProtocolSpec, RemoteAction

__all__ = [
    "DIR_REQUEST_NAMES",
    "DirAction",
    "DirRequest",
    "DirRule",
    "DirState",
    "DirectoryEntry",
    "DirectorySpec",
    "NEXT_EXCLUSIVE",
    "NEXT_RESIDENT",
    "build_directory_spec",
]


class DirState(enum.IntEnum):
    """Stable states of one home-node directory entry."""

    I = 0  #: no cached copy anywhere
    S = 1  #: one or more clean shared copies, memory up to date
    E = 2  #: exactly one copy, clean at grant time (owner may dirty it silently)
    M = 3  #: exactly one copy, dirty; owner carries copy-back duty
    O = 4  #: dirty owner plus clean sharers (the SM supplier-retention state)


class DirRequest(enum.IntEnum):
    """Request kinds the cache controller sends to the home node.

    Each maps onto one bus call site of the snooping controller, so the
    directory backend slots in under the existing handlers without
    changing what a transaction *means* — only how it is resolved.
    """

    CTRL = 0  #: control-only broadcast (lock LH/UL, victim drain): no entry change
    GETS = 1  #: read miss — requester ends with a shared copy
    GETS_NA = 2  #: read without allocation (RP through-read, no copy retained)
    GETM = 3  #: exclusive fetch (write miss, LR/RI/ER fetch) — requester owns
    GETM_NA = 4  #: fetch-and-consume (RP cache-to-cache) — all copies die
    UPGR = 5  #: upgrade in place (invalidation hit) — requester already holds
    WT = 6  #: write one word through to home memory (through-store)


DIR_REQUEST_NAMES: Tuple[str, ...] = tuple(r.name for r in DirRequest)


class DirAction(enum.Enum):
    """Point-to-point messages the home node issues for one request."""

    MEM_FETCH = "mem-fetch"  #: read the block from home memory
    FWD_OWNER = "fwd-owner"  #: forward the request to the owning cache
    FWD_SHARER = "fwd-sharer"  #: forward to one sharer (cache-to-cache supply)
    OWNER_COPYBACK = "owner-copyback"  #: owner's dirty data copies back home
    INVAL_SHARERS = "inval-sharers"  #: invalidate every non-supplier sharer
    UPDATE_SHARERS = "update-sharers"  #: patch every sharer in place (broadcast write)
    DATA_TO_REQ = "data-to-req"  #: data response closes the transaction
    ACK_TO_REQ = "ack-to-req"  #: ack response closes the transaction


#: ``next_state`` token: the requester ends exclusive — E or M depending
#: on whether the granted data was dirty (resolved from the filled copy).
NEXT_EXCLUSIVE = "excl"
#: ``next_state`` token: recomputed from the surviving copies (used where
#: the outcome depends on which sharers the requester's own copy was).
NEXT_RESIDENT = "resid"

NextState = Union[DirState, str]

#: Actions that are *forwards*: one point-to-point message to a third
#: cache, charged one network hop by the directory interconnect.
FORWARD_ACTIONS = (
    DirAction.FWD_OWNER,
    DirAction.FWD_SHARER,
    DirAction.OWNER_COPYBACK,
)


@dataclass(frozen=True)
class DirRule:
    """One row of the directory table: ``(state, request) -> rule``.

    ``transient`` names the in-flight state the entry occupies between
    issue and completion (the BedRock-style ``IS_D``/``MO_F`` naming:
    from-state, to-state, then what the entry is waiting on — ``D`` data
    from memory, ``F`` a forwarded supply, ``A`` invalidation acks,
    ``C`` a copyback, ``U`` update acks, ``K`` a bare ack).

    ``owner`` is the predicted owner policy at completion: ``"none"``,
    ``"req"`` (the requester), ``"keep"`` (unchanged), or ``"resid"``
    (recomputed from residency, no prediction).  The model checker holds
    the resolved entry to these predictions on every transaction.
    """

    transient: str
    actions: Tuple[DirAction, ...]
    next_state: NextState
    owner: str = "none"


@dataclass
class DirectoryEntry:
    """One home-node entry: stable state, owner, sharer bitmask.

    ``sharers`` is a PE bitmask (bit *p* set when PE *p* holds a copy);
    ``owner`` is -1 when no single cache carries copy-back duty.
    ``transient`` is the in-flight rule name while a transaction is
    being resolved, ``None`` between transactions.
    """

    __slots__ = ("state", "owner", "sharers", "transient")

    def __init__(
        self,
        state: DirState = DirState.I,
        owner: int = -1,
        sharers: int = 0,
        transient: Optional[str] = None,
    ):
        self.state = state
        self.owner = owner
        self.sharers = sharers
        self.transient = transient

    def sharer_list(self) -> Tuple[int, ...]:
        out = []
        mask = self.sharers
        pe = 0
        while mask:
            if mask & 1:
                out.append(pe)
            mask >>= 1
            pe += 1
        return tuple(out)

    def __repr__(self) -> str:
        pending = f", transient={self.transient!r}" if self.transient else ""
        return (
            f"DirectoryEntry({self.state.name}, owner={self.owner}, "
            f"sharers={list(self.sharer_list())}{pending})"
        )


@dataclass(frozen=True)
class DirectorySpec:
    """The complete directory table for one cache protocol."""

    name: str
    #: Name of the cache-side :class:`ProtocolSpec` this was derived from.
    protocol: str
    title: str
    description: str
    #: Stable states reachable under this protocol (O only when the
    #: cache protocol can leave a dirty supplier in SM).
    states: Tuple[DirState, ...] = ()
    rows: Mapping[Tuple[DirState, DirRequest], DirRule] = field(
        default_factory=dict
    )

    def rule(self, state: DirState, request: DirRequest) -> Optional[DirRule]:
        return self.rows.get((state, request))

    def transient_names(self) -> Tuple[str, ...]:
        return tuple(sorted({rule.transient for rule in self.rows.values()}))

    # -- documentation rendering (the LOCKE-table style of
    #    ProtocolSpec.render_table) --------------------------------------

    def transition_rows(self):
        """Rows: (state, request, transient, home-node actions, next, owner)."""
        rows = []
        for (state, request), rule in sorted(self.rows.items()):
            actions = ", ".join(action.value for action in rule.actions)
            if rule.next_state is NEXT_EXCLUSIVE or rule.next_state == NEXT_EXCLUSIVE:
                next_name = "E|M"
            elif rule.next_state == NEXT_RESIDENT:
                next_name = "resid"
            else:
                next_name = rule.next_state.name
            rows.append((
                state.name,
                request.name,
                rule.transient,
                actions,
                next_name,
                rule.owner,
            ))
        return rows

    def render_table(self) -> str:
        """Aligned ASCII directory table, one row per (state, request)."""
        headers = (
            "state", "request", "transient", "home-node actions", "next",
            "owner",
        )
        rows = [tuple(str(c) for c in row) for row in self.transition_rows()]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines = [
            f"{self.title} ({self.name})",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(
            "next: E|M = exclusive per the granted copy; resid = recomputed "
            "from surviving copies.  Each forward/invalidate is one network "
            "hop of indirection on top of the base pattern cost."
        )
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "protocol": self.protocol,
            "title": self.title,
            "states": [state.name for state in self.states],
            "rows": len(self.rows),
            "transients": list(self.transient_names()),
            "description": self.description,
        }


# ---------------------------------------------------------------------------
# Derivation from a cache-side ProtocolSpec.

#: Directory state -> the owning cache's line state when the entry is
#: stable (used to look up the supplier rule the forward will trigger).
_OWNER_LINE = {
    DirState.E: CacheState.EC,
    DirState.M: CacheState.EM,
    DirState.O: CacheState.SM,
}

_DIRTY_LINES = (CacheState.SM, CacheState.EM)


def _dir_state_of(line_state: CacheState) -> DirState:
    """Directory image of a supplier's post-transfer line state."""
    if line_state is CacheState.EM:
        return DirState.M
    if line_state is CacheState.SM:
        return DirState.O
    if line_state is CacheState.EC:
        return DirState.E
    return DirState.S


def build_directory_spec(spec: ProtocolSpec) -> DirectorySpec:
    """Derive the home-node directory table for one cache protocol.

    Every variant point comes from the cache spec: the supplier table
    decides what a forwarded GETS leaves behind (PIM's SM retention
    becomes the O state; Illinois' copyback collapses to S), the
    FI-copyback flag decides whether an exclusive fetch flushes the
    dying dirty copy home, and the store table's remote action decides
    whether a through-store invalidates or updates the sharers.
    """
    supplier = spec.supplier_rules()
    fi_copyback = spec.fetch_inval_copyback
    update_family = any(
        rule.remote is RemoteAction.UPDATE for rule in spec.store.values()
    )
    # SM (hence directory O) is reachable only when some rule can leave a
    # copy in SM: supplier retention (the paper's protocol) or a store row.
    sm_reachable = any(
        next_state is CacheState.SM for next_state, _ in supplier
    ) or any(
        rule.next_state is CacheState.SM for rule in spec.store.values()
    )
    owned_states = (
        (DirState.E, DirState.M, DirState.O)
        if sm_reachable
        else (DirState.E, DirState.M)
    )
    states = (DirState.I, DirState.S) + owned_states

    rows: Dict[Tuple[DirState, DirRequest], DirRule] = {}

    def add(state, request, rule):
        rows[(state, request)] = rule

    # -- GETS: read miss; requester ends with a copy --------------------
    add(DirState.I, DirRequest.GETS, DirRule(
        "IE_D", (DirAction.MEM_FETCH, DirAction.DATA_TO_REQ),
        DirState.E, owner="req",
    ))
    add(DirState.S, DirRequest.GETS, DirRule(
        "SS_F", (DirAction.FWD_SHARER, DirAction.DATA_TO_REQ),
        DirState.S, owner="none",
    ))
    for state in owned_states:
        next_line, copyback = supplier[_OWNER_LINE[state]]
        next_state = _dir_state_of(next_line)
        actions = [DirAction.FWD_OWNER]
        suffix = "F"
        if copyback and _OWNER_LINE[state] in _DIRTY_LINES:
            actions.append(DirAction.OWNER_COPYBACK)
            suffix += "C"
        actions.append(DirAction.DATA_TO_REQ)
        add(state, DirRequest.GETS, DirRule(
            f"{state.name}{next_state.name}_{suffix}",
            tuple(actions),
            next_state,
            owner="keep" if next_state in (DirState.M, DirState.O) else "none",
        ))

    # -- GETS_NA: RP through-read, no copy anywhere before or after -----
    add(DirState.I, DirRequest.GETS_NA, DirRule(
        "II_D", (DirAction.MEM_FETCH, DirAction.DATA_TO_REQ),
        DirState.I, owner="none",
    ))

    # -- GETM / GETM_NA: exclusive fetch; every other copy dies ---------
    def exclusive_rows(request: DirRequest, target: NextState, owner: str,
                       tgt: str):
        add(DirState.I, request, DirRule(
            f"I{tgt}_D", (DirAction.MEM_FETCH, DirAction.DATA_TO_REQ),
            target, owner=owner,
        ))
        add(DirState.S, request, DirRule(
            f"S{tgt}_FA",
            (DirAction.FWD_SHARER, DirAction.INVAL_SHARERS,
             DirAction.DATA_TO_REQ),
            target, owner=owner,
        ))
        for state in owned_states:
            dirty = _OWNER_LINE[state] in _DIRTY_LINES
            actions = [DirAction.FWD_OWNER]
            suffix = "F"
            if dirty and fi_copyback:
                actions.append(DirAction.OWNER_COPYBACK)
                suffix += "C"
            if state is DirState.O:
                actions.append(DirAction.INVAL_SHARERS)
                suffix += "A"
            actions.append(DirAction.DATA_TO_REQ)
            add(state, request, DirRule(
                f"{state.name}{tgt}_{suffix}", tuple(actions),
                target, owner=owner,
            ))

    exclusive_rows(DirRequest.GETM, NEXT_EXCLUSIVE, "req", "X")
    # GETM_NA can never see an I entry (an RP cache-to-cache consume
    # requires a remote copy), so drop that row after generating.
    exclusive_rows(DirRequest.GETM_NA, DirState.I, "none", "I")
    del rows[(DirState.I, DirRequest.GETM_NA)]

    # -- UPGR: requester already holds a copy; sharers invalidated ------
    for state in (DirState.S,) + owned_states:
        add(state, DirRequest.UPGR, DirRule(
            f"{state.name}X_A",
            (DirAction.INVAL_SHARERS, DirAction.ACK_TO_REQ),
            NEXT_EXCLUSIVE, owner="req",
        ))

    # -- WT: one word written through to home memory --------------------
    add(DirState.I, DirRequest.WT, DirRule(
        "Iw_K", (DirAction.ACK_TO_REQ,), DirState.I, owner="none",
    ))
    if update_family:
        for state in (DirState.S,) + owned_states:
            add(state, DirRequest.WT, DirRule(
                f"{state.name}w_U",
                (DirAction.UPDATE_SHARERS, DirAction.ACK_TO_REQ),
                state, owner="none" if state is DirState.S else "keep",
            ))
    else:
        add(DirState.S, DirRequest.WT, DirRule(
            "Sw_A", (DirAction.INVAL_SHARERS, DirAction.ACK_TO_REQ),
            NEXT_RESIDENT, owner="resid",
        ))
        for state in owned_states:
            dirty = _OWNER_LINE[state] in _DIRTY_LINES
            actions = (
                (DirAction.OWNER_COPYBACK,) if dirty else ()
            ) + (DirAction.INVAL_SHARERS, DirAction.ACK_TO_REQ)
            add(state, DirRequest.WT, DirRule(
                f"{state.name}w_{'CA' if dirty else 'A'}",
                actions, NEXT_RESIDENT, owner="resid",
            ))

    return DirectorySpec(
        name=f"{spec.name}_dir",
        protocol=spec.name,
        title=f"{spec.title} — home-node directory",
        description=(
            f"Directory table derived from the {spec.name!r} snooping "
            "spec: forwards replace broadcasts, sharer bitmasks replace "
            "snoop responses."
        ),
        states=states,
        rows=rows,
    )
