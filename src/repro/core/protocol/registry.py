"""The coherence-protocol registry and the five built-in specs.

Protocols are registered by name; :class:`~repro.core.config.SimulationConfig`
validates its ``protocol`` field against this registry, and
:class:`~repro.core.system.PIMCacheSystem` compiles its handlers from the
registered :class:`~repro.core.protocol.spec.ProtocolSpec`.

Registering a new protocol is all it takes to make it simulatable::

    from repro.core.protocol import ProtocolSpec, StoreRule, SupplierRule, register

    register(ProtocolSpec(name="mine", ...))

after which ``SimulationConfig(protocol="mine")``, the replay kernel,
``repro compare --protocol mine`` and the report's protocol matrix all
pick it up.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

from repro.core.protocol.spec import (
    ProtocolSpec,
    RemoteAction,
    StoreRule,
    SupplierRule,
)
from repro.core.states import CacheState

__all__ = [
    "get_protocol",
    "is_registered",
    "protocol_names",
    "register",
    "temporarily_register",
]

_INV = CacheState.INV
_S = CacheState.S
_SM = CacheState.SM
_EC = CacheState.EC
_EM = CacheState.EM

_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
    """Register *spec* under its name; returns it for chaining.

    Registration also compiles the spec's generated replay kernel
    (:mod:`repro.core.protocol.codegen`), so a bad spec fails loudly
    here rather than at first replay.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"protocol {spec.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[spec.name] = spec
    # Imported here, not at module top: codegen needs only states and
    # trace events, but importing it before the registry finishes its
    # built-in registrations would tangle the package import order.
    from repro.core.protocol import codegen

    codegen.get_kernel(spec)
    return spec


@contextmanager
def temporarily_register(spec: ProtocolSpec) -> Iterator[ProtocolSpec]:
    """Register *spec* for the duration of a ``with`` block.

    A previously registered protocol of the same name is shadowed and
    restored on exit, so the model checker (and tests) can simulate
    one-off or deliberately broken specs without polluting the global
    registry.
    """
    from repro.core.protocol import codegen

    previous = _REGISTRY.get(spec.name)
    _REGISTRY[spec.name] = spec
    codegen.get_kernel(spec)
    try:
        yield spec
    finally:
        if previous is None:
            _REGISTRY.pop(spec.name, None)
        else:
            _REGISTRY[spec.name] = previous


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a registered protocol, with the known names in the error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown protocol {name!r}; registered protocols: {known}"
        ) from None


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def protocol_names() -> Tuple[str, ...]:
    """Registered protocol names, registration order (built-ins first)."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in specs.
#
# The supplier and FI-copyback tables below are transcriptions of the
# pre-refactor handler branches in system.py; the golden-stats suite
# (tests/test_protocol_identity.py) pins them bit-for-bit.

#: The paper's five-state protocol: copy-back with write-allocate, silent
#: stores on exclusive copies, and the SM state letting dirty data travel
#: cache-to-cache without a memory copyback.
PIM = register(ProtocolSpec(
    name="pim",
    title="PIM five-state (Illinois + shared-modified)",
    description=(
        "The paper's protocol: copy-back, write-allocate, silent stores on "
        "EC/EM, and dirty blocks supplied cache-to-cache stay dirty (SM) "
        "instead of copying back to shared memory."
    ),
    store={
        _INV: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE,
                        allocate=True),
        _S: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE),
        _SM: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE),
        _EC: StoreRule(next_state=_EM),
        _EM: StoreRule(next_state=_EM),
    },
    supplier={
        _S: SupplierRule(_S),
        _SM: SupplierRule(_SM),
        _EC: SupplierRule(_S),
        _EM: SupplierRule(_SM),
    },
    fetch_inval_copyback=False,
))

#: The Illinois baseline the paper ablates against: identical to PIM
#: except dirty data never travels without a memory copyback (no SM).
ILLINOIS = register(ProtocolSpec(
    name="illinois",
    title="Illinois (MESI) copy-back",
    description=(
        "PIM without the SM state: every cache-to-cache transfer of a "
        "dirty block copies the data back to shared memory, after which "
        "both copies are clean-shared."
    ),
    store={
        _INV: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE,
                        allocate=True),
        _S: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE),
        _SM: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE),
        _EC: StoreRule(next_state=_EM),
        _EM: StoreRule(next_state=_EM),
    },
    supplier={
        _S: SupplierRule(_S),
        _SM: SupplierRule(_S, copyback=True),
        _EC: SupplierRule(_S),
        _EM: SupplierRule(_S, copyback=True),
    },
    fetch_inval_copyback=True,
))

#: Write-through with invalidation (the Section 4 baseline): every store
#: goes to memory, remote copies are killed, no write-allocate.
WRITE_THROUGH = register(ProtocolSpec(
    name="write_through",
    title="Write-through, invalidate",
    description=(
        "Every store writes one word through to shared memory and "
        "invalidates remote copies; a write miss does not allocate.  "
        "Sole local copies are promoted (S->EC, SM->EM) once remotes die."
    ),
    store={
        _INV: StoreRule(remote=RemoteAction.INVALIDATE, through=True),
        _S: StoreRule(next_state=_EC, remote=RemoteAction.INVALIDATE,
                      through=True),
        _SM: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE,
                       through=True),
        _EC: StoreRule(remote=RemoteAction.INVALIDATE, through=True),
        _EM: StoreRule(remote=RemoteAction.INVALIDATE, through=True),
    },
    supplier={
        _S: SupplierRule(_S),
        _SM: SupplierRule(_SM),
        _EC: SupplierRule(_S),
        _EM: SupplierRule(_SM),
    },
    fetch_inval_copyback=False,
))

#: Write-through with broadcast update: stores patch remote copies in
#: place, so sharing never collapses and states never change.
WRITE_UPDATE = register(ProtocolSpec(
    name="write_update",
    title="Write-through, broadcast update",
    description=(
        "Every store writes through to shared memory and patches remote "
        "copies in place (snarfing); block states are unchanged and no "
        "copy is ever invalidated by a store."
    ),
    store={
        _INV: StoreRule(remote=RemoteAction.UPDATE, through=True),
        _S: StoreRule(remote=RemoteAction.UPDATE, through=True),
        _SM: StoreRule(remote=RemoteAction.UPDATE, through=True),
        _EC: StoreRule(remote=RemoteAction.UPDATE, through=True),
        _EM: StoreRule(remote=RemoteAction.UPDATE, through=True),
    },
    supplier={
        _S: SupplierRule(_S),
        _SM: SupplierRule(_SM),
        _EC: SupplierRule(_S),
        _EM: SupplierRule(_SM),
    },
    fetch_inval_copyback=False,
))

#: Goodman's write-once: the first store to a shared block writes through
#: (and invalidates), leaving the copy Reserved (EC/EM here); later
#: stores on an exclusive copy are silent copy-back.  The classic hybrid
#: between the two families, and the proof the spec seam is real.
WRITE_ONCE = register(ProtocolSpec(
    name="write_once",
    title="Goodman write-once",
    description=(
        "Hybrid: the first store to a shared block writes one word "
        "through and invalidates remotes (leaving the copy Reserved); "
        "subsequent stores on an exclusive copy are silent copy-back.  "
        "Write misses go through without allocating; dirty transfers "
        "copy back like Illinois."
    ),
    store={
        _INV: StoreRule(remote=RemoteAction.INVALIDATE, through=True),
        _S: StoreRule(next_state=_EC, remote=RemoteAction.INVALIDATE,
                      through=True),
        _SM: StoreRule(next_state=_EM, remote=RemoteAction.INVALIDATE,
                       through=True),
        _EC: StoreRule(next_state=_EM),
        _EM: StoreRule(next_state=_EM),
    },
    supplier={
        _S: SupplierRule(_S),
        _SM: SupplierRule(_S, copyback=True),
        _EC: SupplierRule(_S),
        _EM: SupplierRule(_S, copyback=True),
    },
    fetch_inval_copyback=True,
))
