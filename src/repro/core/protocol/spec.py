"""Declarative coherence-protocol specification tables.

The paper's cache is one member of a protocol *family*: the five-state
PIM design is the Illinois protocol plus the shared-modified state, and
Section 3 evaluates it against write-through and broadcast-update
baselines.  Following the LOCKE / BedRock idiom of expressing snooping
protocols as state-transition specification tables, this module makes
the family explicit: a :class:`ProtocolSpec` is a pure-data description
of how one protocol behaves at every variant point of the controller,
and :class:`~repro.core.system.PIMCacheSystem` compiles its handlers
from that table instead of branching on hard-coded protocol names.

A spec answers exactly four questions (the columns of the LOCKE-style
tables in ``docs/PROTOCOLS.md``):

* **store table** — for a ``W`` by the local PE, per local block state
  (``INV`` is the miss row): is the word written through to shared
  memory, is the block allocated on a miss, what happens to remote
  copies, and what is the local copy's next state?
* **supplier table** — when this cache services a remote fetch (``F``),
  what state does its copy drop to and does dirty data copy back to
  shared memory during the transfer?
* **fetch-invalidate copyback** — when a dirty block is consumed by a
  fetch-and-invalidate (``FI``, or an ``RP`` transfer), does the data
  copy back to memory on the way?

Everything else — bus arbitration and pattern costs, victim selection
and swap-outs, the lock directory, the DW/ER/RP/RI optimized commands —
is protocol-*agnostic* controller machinery and stays fixed across the
family (the optimized commands interact with the spec only through the
store table's silent rows and the generic fetch machinery).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.states import CacheState

__all__ = [
    "ProtocolSpec",
    "RemoteAction",
    "StoreRule",
    "SupplierRule",
]

_STATE_ORDER = tuple(CacheState)
_VALID_STATES = tuple(s for s in CacheState if s is not CacheState.INV)
_DIRTY = (CacheState.SM, CacheState.EM)


class RemoteAction(enum.Enum):
    """What a store does to remote copies of the block."""

    NONE = "none"  #: remote copies are untouched
    INVALIDATE = "invalidate"  #: remote copies are killed (I / FI)
    UPDATE = "update"  #: remote copies are patched in place (broadcast write)


@dataclass(frozen=True)
class StoreRule:
    """One row of the store table: what a ``W`` does in one local state.

    The bus consequence is fully derived, never stated:

    * ``through`` — the word is written to shared memory over the bus
      (the ``WRITE_THROUGH`` pattern, plus memory-module busy time).
    * ``allocate`` (miss row only) — the block is fetched exclusively
      (``FI``; pattern chosen by the controller from supplier/victim
      state) before the write completes in cache.
    * neither, with ``remote=INVALIDATE`` — an ``I`` broadcast (the
      ``INVALIDATION`` pattern).
    * neither, with ``remote=NONE`` — a silent zero-bus write hit.

    ``next_state`` of ``None`` leaves the local state unchanged (and,
    on the miss row, means no allocation: the block stays uncached).
    """

    next_state: Optional[CacheState] = None
    remote: RemoteAction = RemoteAction.NONE
    through: bool = False
    allocate: bool = False

    @property
    def silent(self) -> bool:
        """True when this store needs no bus transaction at all."""
        return (
            not self.through
            and not self.allocate
            and self.remote is RemoteAction.NONE
        )


@dataclass(frozen=True)
class SupplierRule:
    """One row of the supplier table: servicing a remote plain fetch.

    ``copyback`` only matters when the supplied copy is dirty: True
    writes the data back to shared memory during the transfer (the
    Illinois behaviour), False keeps ownership with the supplier (the
    SM state, the paper's contribution).
    """

    next_state: CacheState
    copyback: bool = False


@dataclass(frozen=True)
class ProtocolSpec:
    """A complete, declarative description of one coherence protocol."""

    name: str
    title: str
    description: str
    #: state -> StoreRule; must cover all five states (INV = write miss).
    store: Mapping[CacheState, StoreRule] = field(default_factory=dict)
    #: valid state -> SupplierRule; must cover S, SM, EC, EM.
    supplier: Mapping[CacheState, SupplierRule] = field(default_factory=dict)
    #: Dirty data consumed by FI (write-miss fetch, LR/RI fetch, RP
    #: transfer) copies back to shared memory during the transfer.
    fetch_inval_copyback: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(
                f"protocol name must be a non-empty identifier, got {self.name!r}"
            )
        missing = [s.name for s in _STATE_ORDER if s not in self.store]
        if missing:
            raise ValueError(
                f"protocol {self.name!r}: store table missing states {missing}"
            )
        missing = [s.name for s in _VALID_STATES if s not in self.supplier]
        if missing:
            raise ValueError(
                f"protocol {self.name!r}: supplier table missing states {missing}"
            )
        for state, rule in self.store.items():
            if rule.allocate and state is not CacheState.INV:
                raise ValueError(
                    f"protocol {self.name!r}: store rule for {state.name} sets "
                    "allocate, which only applies to the INV (miss) row"
                )
        for state in _DIRTY:
            rule = self.store[state]
            if (
                rule.silent
                and rule.next_state is not None
                and rule.next_state not in _DIRTY
            ):
                raise ValueError(
                    f"protocol {self.name!r}: a silent store in {state.name} "
                    f"cannot drop to clean {rule.next_state.name} — the "
                    "block's other words would lose their copy-back duty"
                )
        for state, rule in self.supplier.items():
            if state not in _DIRTY and rule.copyback:
                raise ValueError(
                    f"protocol {self.name!r}: supplier rule for clean "
                    f"{state.name} sets copyback"
                )
        for state in _DIRTY:
            rule = self.supplier[state]
            if rule.next_state not in _DIRTY and not rule.copyback:
                raise ValueError(
                    f"protocol {self.name!r}: supplier rule for dirty "
                    f"{state.name} drops to clean {rule.next_state.name} "
                    "without copyback — the only up-to-date copy of the "
                    "block would be abandoned"
                )

    # -- derived shape queries (used by the compiled system and kernel) --

    @property
    def all_through(self) -> bool:
        """Every store goes through to memory (pure write-through family)."""
        return all(self.store[s].through for s in _STATE_ORDER)

    @property
    def write_allocates(self) -> bool:
        """A write miss fetches the block (fetch-on-write)."""
        return self.store[CacheState.INV].allocate

    @property
    def has_silent_stores(self) -> bool:
        """Some hit state absorbs writes with zero bus cycles."""
        return any(
            self.store[s].silent for s in _STATE_ORDER if s is not CacheState.INV
        )

    def silent_store_next(self) -> Tuple[Optional[CacheState], ...]:
        """Per-state (indexed by ``CacheState``) next state of a silent
        store hit, or ``None`` where the store needs the bus.  This is
        the table the replay fast path inlines write hits from."""
        out = []
        for state in _STATE_ORDER:
            rule = self.store[state]
            if state is not CacheState.INV and rule.silent:
                out.append(
                    rule.next_state if rule.next_state is not None else state
                )
            else:
                out.append(None)
        return tuple(out)

    def supplier_rules(self) -> Tuple[Tuple[CacheState, bool], ...]:
        """Per-state ``(next_state, copyback)``, indexed by ``CacheState``
        (the INV row is an unused identity)."""
        out = []
        for state in _STATE_ORDER:
            rule = self.supplier.get(state)
            if rule is None:
                out.append((state, False))
            else:
                out.append((rule.next_state, rule.copyback))
        return tuple(out)

    # -- documentation rendering ----------------------------------------

    def transition_rows(self):
        """LOCKE-style rows: (state, store action, next, remote, supplier).

        One row per cache state, describing the full store-table and
        supplier-table entry for that state in words.
        """
        rows = []
        for state in _STATE_ORDER:
            rule = self.store[state]
            if state is CacheState.INV:
                if rule.allocate:
                    action = "fetch-exclusive (FI)"
                elif rule.through:
                    action = "write through, no allocate"
                else:
                    action = "none"
            elif rule.silent:
                action = "silent (0 bus cycles)"
            elif rule.through:
                action = "write through (word)"
            else:
                action = "invalidate broadcast (I)"
            next_state = (
                rule.next_state.name if rule.next_state is not None
                else ("-" if state is CacheState.INV else state.name)
            )
            supplier = self.supplier.get(state)
            if supplier is None:
                supplied = "-"
            else:
                supplied = supplier.next_state.name
                if supplier.copyback:
                    supplied += " +copyback"
            rows.append(
                (state.name, action, next_state, rule.remote.value, supplied)
            )
        return rows

    def render_table(self) -> str:
        """Render the spec as an aligned ASCII specification table."""
        headers = ("state", "store (W)", "next", "remote", "on F (supplier)")
        rows = [tuple(str(c) for c in row) for row in self.transition_rows()]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines = [
            f"{self.title} ({self.name})",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(
            "FI consumes dirty data "
            + (
                "with a copyback to shared memory"
                if self.fetch_inval_copyback
                else "without touching shared memory"
            )
            + "."
        )
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        """JSON-ready one-line summary (the ``repro protocols`` listing)."""
        return {
            "name": self.name,
            "title": self.title,
            "write_policy": "write-through" if self.all_through else "copy-back",
            "write_allocate": self.write_allocates,
            "silent_store_states": [
                s.name
                for s in _STATE_ORDER
                if s is not CacheState.INV and self.store[s].silent
            ],
            "dirty_transfer_copyback": any(
                self.supplier[s].copyback for s in _DIRTY
            ),
            "description": self.description,
        }
