"""Trace-driven replay: run a captured reference stream through a cache.

The paper's tools run execution-driven (emulator and cache simulator in
lockstep).  For parameter sweeps that is wasteful: the workload's
reference stream does not depend on the cache geometry, so this module
replays one captured :class:`~repro.trace.buffer.TraceBuffer` against
any number of :class:`~repro.core.config.SimulationConfig` variants.

Lock conflicts cannot re-arise during replay (the captured global order
already serialized them), so contended operations carry a trace flag and
the system re-enacts the LH response and UL broadcast from it.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from repro.core.config import SimulationConfig
from repro.core.states import CacheState
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, N_AREAS, N_OPS, PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Op


def replay(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
) -> SystemStats:
    """Replay *buffer* against a fresh cache system and return its stats."""
    if config is None:
        config = SimulationConfig()
    system = PIMCacheSystem(config, n_pes if n_pes is not None else buffer.n_pes)
    # Hot loop: dispatch straight off the system's handler table instead
    # of going through :meth:`PIMCacheSystem.access`, folding the
    # per-reference bookkeeping into the loop.  Two access() duties are
    # restructured wholesale rather than mirrored per reference:
    #
    # * ``stats.refs[area][op]`` is a pure histogram of the trace (a
    #   blocked reference raises instead of retrying), so it is tallied
    #   once after the loop via ``Counter`` at C speed;
    # * ``_waiting`` can only gain entries when a handler reports
    #   BLOCKED, which raises here, so the busy-wait clearing in
    #   ``access`` has nothing to clear and is dropped.
    #
    # Any other change to ``access`` needs a matching change here.
    table = system._op_table
    waiting = system._waiting
    shift = system._block_shift
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    if len(buffer) and not (
        0 <= min(op_col) <= max(op_col) < N_OPS
        and 0 <= min(area_col) <= max(area_col) < N_AREAS
    ):
        raise ValueError("trace contains an out-of-range op or area code")
    caches = system.caches
    if caches and not system.track_data:
        # The bus-free hit paths carry the bulk of every workload, so
        # they are inlined here — probe + LRU touch + counters, exactly
        # as in the corresponding handlers — to skip the handler call:
        #
        # * ``_read`` hits (and any op the dispatch table demoted to R),
        # * ``_exclusive_read`` hits on a non-last word,
        # * ``_write``/``_direct_write`` hits on an EM/EC block (the
        #   demoted-DW counter included), copyback protocols only.
        #
        # Everything else — all misses, shared-state writes, the
        # read-then-purge of an ER on a block's last word, write-through
        # stores — falls through to the dispatch table.
        # Per-PE probe methods are bound once (the ``_lines`` dicts are
        # never rebound, only mutated in place).
        #
        # LRU stamps come from one shared local counter instead of the
        # per-cache ``_tick``s: replacement only compares stamps within
        # a single cache, and a counter that is strictly increasing
        # across *all* touch events preserves every within-cache touch
        # order, so victim selection is unchanged.  The counter is
        # synced into ``cache._tick`` before each handler call (the
        # handler stamps through lookup()/insert() on the requesting
        # PE's cache only) and read back after, keeping it above every
        # stamp already issued.
        probes = [cache._lines.get for cache in caches]
        gtick = max(cache._tick for cache in caches)
        # Plain-R hits and their PE cycles are tallied into flat local
        # lists (one subscript instead of two) and folded into the
        # system's arrays after the loop; addition commutes with the
        # handlers' own increments, and an aborted replay discards the
        # stats object anyway.
        r_hits = [0] * N_AREAS
        r_cycles = [0] * len(caches)
        hits = system._hits
        pe_cycles = system._pe_cycles
        block_mask = system._block_mask
        stats = system.stats
        EM = CacheState.EM
        EC = CacheState.EC
        # Handler handles must come from the table: ``system._read``
        # would create a fresh bound-method object that is equal to but
        # not identical with the table cells.  A ``None`` handle simply
        # never matches (``handler is None`` cannot fire).
        read_h = table[Op.R][0]
        er_h = next((h for h in table[Op.ER] if h is not read_h), None)
        if system._write_through:
            write_h = dw_h = None
        else:
            write_h = table[Op.W][0]
            dw_h = next((h for h in table[Op.DW] if h is not write_h), None)
        for pe, op, area, addr, flags in zip(
            pe_col, op_col, area_col, addr_col, flags_col
        ):
            block = addr >> shift
            # ``op == 0`` (plain R, every table cell is ``read_h``)
            # short-cuts both the double table subscript and the handler
            # identity test for the most common op.
            if op == 0:
                line = probes[pe](block)
                if line is not None:
                    gtick += 1
                    line.lru = gtick
                    r_hits[area] += 1
                    r_cycles[pe] += 1
                    continue
                handler = read_h
            else:
                handler = table[op][area]
                if handler is read_h or (
                    handler is er_h and (addr & block_mask) != block_mask
                ):
                    line = probes[pe](block)
                    if line is not None:
                        gtick += 1
                        line.lru = gtick
                        hits[area][op] += 1
                        pe_cycles[pe] += 1
                        continue
                elif handler is dw_h or handler is write_h:
                    line = probes[pe](block)
                    if line is not None:
                        state = line.state
                        if state is EM or state is EC:
                            if handler is dw_h:
                                stats.dw_demotions += 1
                            gtick += 1
                            line.lru = gtick
                            line.state = EM
                            hits[area][op] += 1
                            pe_cycles[pe] += 1
                            continue
            cache = caches[pe]
            cache._tick = gtick
            result = handler(pe, op, area, addr, block, 0, flags)
            gtick = cache._tick
            if result[0] == BLOCKED:  # pragma: no cover - traces never block
                raise RuntimeError(
                    f"replay blocked on PE{pe} op={op} addr={addr:#x}: "
                    "the trace's global order should already serialize locks"
                )
            if waiting:  # pragma: no cover - see note above
                waiting.pop(pe, None)
        for cache in caches:
            cache._tick = gtick
        for area, count in enumerate(r_hits):
            hits[area][0] += count
        for pe, count in enumerate(r_cycles):
            pe_cycles[pe] += count
    else:
        for pe, op, area, addr, flags in zip(
            pe_col, op_col, area_col, addr_col, flags_col
        ):
            result = table[op][area](pe, op, area, addr, addr >> shift, 0, flags)
            if result[0] == BLOCKED:  # pragma: no cover - traces never block
                raise RuntimeError(
                    f"replay blocked on PE{pe} op={op} addr={addr:#x}: "
                    "the trace's global order should already serialize locks"
                )
            if waiting:  # pragma: no cover - see note above
                waiting.pop(pe, None)
    refs = system.stats.refs
    for (area, op), count in Counter(zip(area_col, op_col)).items():
        refs[area][op] += count
    return system.stats


def replay_many(
    buffer: TraceBuffer, configs: Iterable[SimulationConfig]
) -> "list[SystemStats]":
    """Replay the same trace against several configurations."""
    return [replay(buffer, config) for config in configs]
