"""Trace-driven replay: run a captured reference stream through a cache.

The paper's tools run execution-driven (emulator and cache simulator in
lockstep).  For parameter sweeps that is wasteful: the workload's
reference stream does not depend on the cache geometry, so this module
replays one captured :class:`~repro.trace.buffer.TraceBuffer` against
any number of :class:`~repro.core.config.SimulationConfig` variants.

Lock conflicts cannot re-arise during replay (the captured global order
already serialized them), so contended operations carry a trace flag and
the system re-enacts the LH response and UL broadcast from it.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Iterable, Optional

from repro.core.config import SimulationConfig
from repro.core.protocol import codegen
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, N_AREAS, N_OPS, PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_NAMES, OP_NAMES, Op

try:  # pragma: no cover - numpy is an optional dependency
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less hosts
    _np = None

#: Replay kernel choices accepted by :func:`replay` (and the
#: ``REPRO_REPLAY_KERNEL`` environment override).
KERNELS = ("auto", "generated", "interpreted")

#: Default check period (in references) for ``REPRO_CHECK_INVARIANTS=1``.
DEFAULT_INVARIANT_INTERVAL = 4096


class ReplayBlockedError(RuntimeError):
    """A replayed reference hit a remotely held lock (``BLOCKED``).

    Captured traces are globally serialized at generation time, so a
    blocked reference means the trace was hand-built or corrupted; the
    offending trace index, PE, operation and address are attached for
    diagnosis.
    """

    def __init__(self, index: int, pe: int, op: int, area: int, address: int):
        self.index = index
        self.pe = pe
        self.op = op
        self.area = area
        self.address = address
        super().__init__(
            f"replay blocked at trace index {index}: PE{pe} "
            f"{OP_NAMES[op]} {AREA_NAMES[area]}[{address:#x}] hit a "
            "remotely held lock; captured traces serialize lock "
            "conflicts, so this trace was hand-built or corrupted"
        )


def invariant_check_interval(
    default: int = DEFAULT_INVARIANT_INTERVAL,
) -> Optional[int]:
    """Parse the ``REPRO_CHECK_INVARIANTS`` debug toggle.

    Unset / ``0`` / ``off`` disables periodic invariant checking (the
    default); ``1`` / ``on`` enables it at *default* granularity; any
    other integer is used as the period itself (references for replay,
    scheduler sweeps for execution-driven runs).
    """
    raw = os.environ.get("REPRO_CHECK_INVARIANTS")
    if raw is None:
        return None
    value = raw.strip().lower()
    if value in ("", "0", "off", "no", "false", "none"):
        return None
    if value in ("1", "on", "yes", "true"):
        return default
    try:
        period = int(value)
    except ValueError:
        return default
    return max(1, period)


def _validate_codes(buffer: TraceBuffer) -> None:
    _, op_col, area_col, _, _ = buffer.columns()
    if len(buffer) and not (
        0 <= min(op_col) <= max(op_col) < N_OPS
        and 0 <= min(area_col) <= max(area_col) < N_AREAS
    ):
        raise ValueError("trace contains an out-of-range op or area code")


def replay_access_driven(
    buffer: TraceBuffer,
    system,
    values=None,
    on_result=None,
    check_invariants_every: Optional[int] = None,
) -> SystemStats:
    """Drive *buffer* through ``system.access`` one reference at a time.

    The slow, exact replay loop: per-access dispatch with full
    bookkeeping, raising :class:`ReplayBlockedError` with the trace
    position of a blocked reference, and running
    ``system.check_invariants()`` every *check_invariants_every*
    references (and once more at the end).  *system* is anything with
    the access-system surface (``access``, ``check_invariants``,
    ``stats``) — a :class:`PIMCacheSystem` or a
    :class:`~repro.cluster.system.ClusteredSystem`.

    Two hooks exist for the differential oracle in
    :mod:`repro.verify.oracle`:

    * ``values(index) -> int`` supplies the data word a write-like
      reference stores (traces carry no value column, so the oracle
      derives values deterministically from the trace index);
    * ``on_result(index, pe, op, area, address, result)`` observes every
      access result, ``result`` being the ``(cycles, flags, value)``
      tuple — the seam the word-granularity reference model checks
      read values through.
    """
    access = system.access
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    index = -1
    for index, (pe, op, area, addr, flags) in enumerate(
        zip(pe_col, op_col, area_col, addr_col, flags_col)
    ):
        value = values(index) if values is not None else 0
        result = access(pe, op, area, addr, value, flags)
        if result[0] == BLOCKED:
            raise ReplayBlockedError(index, pe, op, area, addr)
        if on_result is not None:
            on_result(index, pe, op, area, addr, result)
        if check_invariants_every and (index + 1) % check_invariants_every == 0:
            system.check_invariants()
    if check_invariants_every and index >= 0:
        system.check_invariants()
    return system.stats


def _replay_checked(
    system: PIMCacheSystem,
    buffer: TraceBuffer,
    check_every: Optional[int] = None,
) -> SystemStats:
    return replay_access_driven(
        buffer, system, check_invariants_every=check_every
    )


def _blocked_error(
    buffer: TraceBuffer,
    config: SimulationConfig,
    n_pes: int,
    pe: int,
    op: int,
    area: int,
    addr: int,
) -> ReplayBlockedError:
    """Locate the trace index of a BLOCKED reference.

    The fast kernel tracks no index (an extra counter would tax every
    reference of every healthy replay for the benefit of an
    impossible-by-construction error path).  Replay is deterministic,
    so a second pass over a fresh system with the indexed loop blocks
    at the same reference and yields the exact position.
    """
    try:
        _replay_checked(PIMCacheSystem(config, n_pes), buffer)
    except ReplayBlockedError as error:
        return error
    return ReplayBlockedError(-1, pe, op, area, addr)  # pragma: no cover


def replay(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    check_invariants_every: Optional[int] = None,
    system: Optional[PIMCacheSystem] = None,
    kernel: Optional[str] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> SystemStats:
    """Replay *buffer* against a fresh cache system and return its stats.

    ``check_invariants_every`` (or the ``REPRO_CHECK_INVARIANTS``
    environment toggle — see :func:`invariant_check_interval`) switches
    to the checked per-access loop and validates the coherence
    invariants every N references.

    *mode* selects the coherence execution mode: ``"pessimistic"``
    (default) is the paper's per-access protocol below;
    ``"lazypim"`` delegates to
    :func:`repro.core.speculative.replay_speculative` — speculative
    batches of *batch_refs* references with *signature_bits*-wide
    conflict signatures, settled in bulk or rolled back.  Both kernels,
    the interconnect backends and the invariant toggle behave
    identically in either mode.

    *kernel* picks the replay loop (``REPRO_REPLAY_KERNEL`` is the
    environment-level equivalent; the explicit argument wins):

    * ``"auto"`` (default) — the protocol's generated kernel
      (:mod:`repro.core.protocol.codegen`) when it can run, else the
      interpreted dispatch-table loop below;
    * ``"generated"`` — as auto, but raises if numpy is missing
      instead of silently interpreting (a kernel can still decline a
      trace outside its envelope — huge addresses, >255 PEs, data
      tracking — and fall back);
    * ``"interpreted"`` — always the dispatch-table loop; this is the
      differential oracle's reference path.

    The checked per-access loop ignores *kernel*: invariant checking
    needs per-reference control.

    *system* replays into a caller-built system instead of a fresh
    ``PIMCacheSystem(config, n_pes)`` — the hook the clustered fast
    path uses to run per-cluster shards through this same inlined
    kernel (a :class:`~repro.cluster.system.ClusterCacheSystem` keeps
    its network-charging handler wrappers; both fast kernels only
    bypass them for bus-free cache hits, which never cross the
    network).  A provided system overrides *config*/*n_pes*; blocked
    references then raise without the trace-index second pass (the
    caller owns system construction, so the diagnostic replay cannot
    be rebuilt here).
    """
    if mode is not None and mode not in ("pessimistic", "lazypim"):
        raise ValueError(
            f"unknown replay mode {mode!r}; choose from "
            "('pessimistic', 'lazypim')"
        )
    if mode == "lazypim":
        from repro.core.speculative import (
            DEFAULT_BATCH_REFS,
            DEFAULT_SIGNATURE_BITS,
            replay_speculative,
        )

        return replay_speculative(
            buffer,
            config=config,
            n_pes=n_pes,
            check_invariants_every=check_invariants_every,
            system=system,
            kernel=kernel,
            batch_refs=(
                batch_refs if batch_refs is not None else DEFAULT_BATCH_REFS
            ),
            signature_bits=(
                signature_bits if signature_bits is not None
                else DEFAULT_SIGNATURE_BITS
            ),
        )
    caller_system = system
    if caller_system is not None:
        config = caller_system.config
        pes = caller_system.n_pes
    else:
        if config is None:
            config = SimulationConfig()
        pes = n_pes if n_pes is not None else buffer.n_pes
    if check_invariants_every is None:
        check_invariants_every = invariant_check_interval()
    if check_invariants_every:
        _validate_codes(buffer)
        return _replay_checked(
            caller_system if caller_system is not None
            else PIMCacheSystem(config, pes),
            buffer,
            check_invariants_every,
        )
    if kernel is None:
        kernel = os.environ.get("REPRO_REPLAY_KERNEL") or "auto"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown replay kernel {kernel!r}; choose from {KERNELS}"
        )
    system = (
        caller_system if caller_system is not None
        else PIMCacheSystem(config, pes)
    )
    if kernel != "interpreted":
        if _np is not None:
            # The generated kernel validates op/area codes during its
            # (cached) numpy preprocessing, raising the same ValueError
            # as _validate_codes; no separate Python scan needed.
            generated = codegen.get_kernel(system.protocol_spec)
            stats = generated(system, buffer, _np)
            if stats is not None:
                return stats
        elif kernel == "generated":
            raise RuntimeError(
                "kernel='generated' requires numpy, which is not installed"
            )
    _validate_codes(buffer)
    # Hot loop: dispatch straight off the system's handler table instead
    # of going through :meth:`PIMCacheSystem.access`, folding the
    # per-reference bookkeeping into the loop.  Two access() duties are
    # restructured wholesale rather than mirrored per reference:
    #
    # * ``stats.refs[area][op]`` is a pure histogram of the trace (a
    #   blocked reference raises instead of retrying), so it is tallied
    #   once after the loop via ``Counter`` at C speed;
    # * ``_waiting`` can only gain entries when a handler reports
    #   BLOCKED, which raises here, so the busy-wait clearing in
    #   ``access`` has nothing to clear and is dropped.
    #
    # Any other change to ``access`` needs a matching change here.
    table = system._op_table
    waiting = system._waiting
    shift = system._block_shift
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    caches = system.caches
    if caches and not system.track_data:
        # The bus-free hit paths carry the bulk of every workload, so
        # they are inlined here — probe + LRU touch + counters, exactly
        # as in the corresponding handlers — to skip the handler call:
        #
        # * ``_read`` hits (and any op the dispatch table demoted to R),
        # * ``_exclusive_read`` hits on a non-last word,
        # * ``_write``/``_direct_write`` hits on an EM/EC block (the
        #   demoted-DW counter included), copyback protocols only.
        #
        # Everything else — all misses, shared-state writes, the
        # read-then-purge of an ER on a block's last word, write-through
        # stores — falls through to the dispatch table.
        # Per-PE probe methods are bound once (the ``_lines`` dicts are
        # never rebound, only mutated in place).
        #
        # LRU stamps come from one shared local counter instead of the
        # per-cache ``_tick``s: replacement only compares stamps within
        # a single cache, and a counter that is strictly increasing
        # across *all* touch events preserves every within-cache touch
        # order, so victim selection is unchanged.  The counter is
        # synced into ``cache._tick`` before each handler call (the
        # handler stamps through lookup()/insert() on the requesting
        # PE's cache only) and read back after, keeping it above every
        # stamp already issued.
        probes = [cache._lines.get for cache in caches]
        gtick = max(cache._tick for cache in caches)
        # Plain-R hits are tallied into a flat local list (one subscript
        # instead of two) and folded into the hit matrix after the loop —
        # a histogram, so addition commutes.  PE cycles must NOT be
        # deferred the same way: ``_bus`` starts every bus transaction at
        # ``max(pe_clock + 1, bus_free_at)``, so a hit cycle missing from
        # the live clock would shift subsequent miss timing.
        r_hits = [0] * N_AREAS
        # Non-R inlined hits (ER non-last-word, silent W/DW) also cost
        # exactly one bus-free cycle each; counted flat and folded into
        # ``hit_service_cycles`` with the plain-R total after the loop.
        other_hits = 0
        hits = system._hits
        pe_cycles = system._pe_cycles
        block_mask = system._block_mask
        stats = system.stats
        # Handler handles must come from the table: ``system._read``
        # would create a fresh bound-method object that is equal to but
        # not identical with the table cells.  A ``None`` handle simply
        # never matches (``handler is None`` cannot fire).
        read_h = table[Op.R][0]
        er_h = next((h for h in table[Op.ER] if h is not read_h), None)
        # The spec's silent-store table drives the inlined write hits: a
        # state whose entry is non-None absorbs the store with zero bus
        # cycles.  A protocol with no silent states (the write-through
        # family) disables the write fast path outright so writes skip
        # the extra cache probe.
        silent_next = system._store_silent_next
        if not any(state is not None for state in silent_next):
            write_h = dw_h = None
        else:
            write_h = table[Op.W][0]
            dw_h = next((h for h in table[Op.DW] if h is not write_h), None)
        for pe, op, area, addr, flags in zip(
            pe_col, op_col, area_col, addr_col, flags_col
        ):
            block = addr >> shift
            # ``op == 0`` (plain R, every table cell is ``read_h``)
            # short-cuts both the double table subscript and the handler
            # identity test for the most common op.
            if op == 0:
                line = probes[pe](block)
                if line is not None:
                    gtick += 1
                    line.lru = gtick
                    r_hits[area] += 1
                    pe_cycles[pe] += 1
                    continue
                handler = read_h
            else:
                handler = table[op][area]
                if handler is read_h or (
                    handler is er_h and (addr & block_mask) != block_mask
                ):
                    line = probes[pe](block)
                    if line is not None:
                        gtick += 1
                        line.lru = gtick
                        hits[area][op] += 1
                        pe_cycles[pe] += 1
                        other_hits += 1
                        continue
                elif handler is dw_h or handler is write_h:
                    line = probes[pe](block)
                    if line is not None:
                        next_state = silent_next[line.state]
                        if next_state is not None:
                            if handler is dw_h:
                                stats.dw_demotions += 1
                            gtick += 1
                            line.lru = gtick
                            line.state = next_state
                            hits[area][op] += 1
                            pe_cycles[pe] += 1
                            other_hits += 1
                            continue
            cache = caches[pe]
            cache._tick = gtick
            result = handler(pe, op, area, addr, block, 0, flags)
            gtick = cache._tick
            if result[0] == BLOCKED:
                if caller_system is not None:
                    raise ReplayBlockedError(-1, pe, op, area, addr)
                raise _blocked_error(buffer, config, pes, pe, op, area, addr)
            if waiting:  # pragma: no cover - see note above
                waiting.pop(pe, None)
        for cache in caches:
            cache._tick = gtick
        for area, count in enumerate(r_hits):
            hits[area][0] += count
        stats.hit_service_cycles += sum(r_hits) + other_hits
    else:
        for pe, op, area, addr, flags in zip(
            pe_col, op_col, area_col, addr_col, flags_col
        ):
            result = table[op][area](pe, op, area, addr, addr >> shift, 0, flags)
            if result[0] == BLOCKED:
                if caller_system is not None:
                    raise ReplayBlockedError(-1, pe, op, area, addr)
                raise _blocked_error(buffer, config, pes, pe, op, area, addr)
            if waiting:  # pragma: no cover - see note above
                waiting.pop(pe, None)
    refs = system.stats.refs
    for (area, op), count in Counter(zip(area_col, op_col)).items():
        refs[area][op] += count
    return system.stats


def replay_many(
    buffer: TraceBuffer, configs: Iterable[SimulationConfig]
) -> "list[SystemStats]":
    """Replay the same trace against several configurations."""
    return [replay(buffer, config) for config in configs]
