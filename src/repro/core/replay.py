"""Trace-driven replay: run a captured reference stream through a cache.

The paper's tools run execution-driven (emulator and cache simulator in
lockstep).  For parameter sweeps that is wasteful: the workload's
reference stream does not depend on the cache geometry, so this module
replays one captured :class:`~repro.trace.buffer.TraceBuffer` against
any number of :class:`~repro.core.config.SimulationConfig` variants.

Lock conflicts cannot re-arise during replay (the captured global order
already serialized them), so contended operations carry a trace flag and
the system re-enacts the LH response and UL broadcast from it.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import SimulationConfig
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.buffer import TraceBuffer


def replay(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
) -> SystemStats:
    """Replay *buffer* against a fresh cache system and return its stats."""
    if config is None:
        config = SimulationConfig()
    system = PIMCacheSystem(config, n_pes if n_pes is not None else buffer.n_pes)
    access = system.access
    for pe, op, area, addr, flags in buffer:
        cycles, _, _ = access(pe, op, area, addr, 0, flags)
        if cycles == BLOCKED:  # pragma: no cover - impossible in valid traces
            raise RuntimeError(
                f"replay blocked on PE{pe} op={op} addr={addr:#x}: "
                "the trace's global order should already serialize locks"
            )
    return system.stats


def replay_many(
    buffer: TraceBuffer, configs: Iterable[SimulationConfig]
) -> "list[SystemStats]":
    """Replay the same trace against several configurations."""
    return [replay(buffer, config) for config in configs]
