"""Speculative batch coherence — the LazyPIM execution mode.

The paper kills unnecessary coherence traffic *pessimistically*: software
tells the cache, per access, which fetches and invalidations are useless
(DW/ER/RP/RI).  LazyPIM (PAPERS.md) attacks the same traffic
*optimistically*: accesses inside a batch execute without any per-access
coherence transactions while compressed read/write signatures accumulate;
at the batch boundary the signatures are compared, a conflict-free batch
settles its deferred coherence in one bulk round, and a conflicting
batch rolls back and re-executes under the ordinary per-access protocol.

The adaptation to this simulator keeps the controller exact and defers
only the *pricing*:

* **Attempt.**  During a speculative batch the system's ``_bus`` binding
  (the single point every backend charge flows through — see
  :mod:`repro.core.interconnect`) is swapped for a recorder that logs
  each would-be transaction and charges nothing.  Handlers still run in
  full, so cache states, lock directories and data values evolve exactly
  as they would pessimistically — speculation changes *when coherence is
  paid for*, never what the protocol does.  Bus-free work (hit service,
  lock spins, shared-memory busy time) is charged live as always.
* **Signatures.**  Per-PE read and write sets are compressed into
  ``signature_bits``-wide masks, one bit per block hashed by its low
  ``log2(signature_bits)`` bits.  Signatures are a pure function of the
  reference stream, so the batch's conflict verdict is computed from the
  trace columns before the attempt runs (the hardware would accumulate
  the same masks access by access).  Truncating a wider mask yields the
  narrower one, so any two blocks that collide at width ``2w`` also
  collide at width ``w`` — the false-positive rate is monotone
  non-increasing in the width, a property the test-suite checks.
* **Commit.**  A conflict-free batch replays its deferred transactions
  through the real ``interconnect.transact`` in recorded order — the
  bulk settlement round, priced through the existing seam so the
  cycle-ledger identity of :mod:`repro.obs.metrics` holds by
  construction.  Per-block invalidation rounds are coalesced: the
  batch's write signature is broadcast once at commit and every cache
  derives all of its invalidations from it, so the first deferred
  block-invalidation is charged (it *is* the signature broadcast) and
  the rest are counted in ``batch_elided_invalidations`` instead of
  charged.  Data-moving patterns (swap-ins, cache-to-cache transfers,
  write-throughs) and the lock protocol's block-less broadcast rounds
  are never elided — speculation amortizes coherence *control*, not
  data movement or lock liveness.
* **Rollback.**  A conflicting batch snapshots the full simulator state
  (:func:`repro.serve.checkpoint.snapshot`) before the attempt, runs the
  attempt anyway (the machinery under test), rewinds in place
  (:func:`repro.serve.checkpoint.restore_into`) and re-executes the
  batch pessimistically.  Rollbacks must be invisible in final state —
  the differential oracle (:mod:`repro.verify.oracle`) replays the
  speculative path against flat memory to enforce exactly that.  The
  attempt's wasted local work is not charged (its counters are rewound
  with the rest of the state); the rollback penalty that *is* modeled is
  the pessimistic re-execution plus the ``batch_rollbacks`` count.

Batch boundaries: every ``batch_refs`` references, with lock-directory
operations (``LR``/``UW``/``U``, and any flagged contended reference)
forcing an early commit — they execute non-speculatively between
batches, because lock hand-offs are ordering-sensitive by design (an LH
response or UL broadcast cannot be deferred).  A ``batch_refs`` of 1
degenerates to the pessimistic protocol (a one-reference batch settles
before any concurrent conflict can arise), which
:func:`replay_speculative` short-circuits outright so the mode is
counter-identical to the ordinary path — the golden-identity gate.

On a home-node directory backend the deferred transactions carry no
request resolution (the entry table would be resolving against states
the batch has already moved past); residency notes stay live during the
attempt, every block a batch touches is recorded, and the settlement
resynchronizes those entries from cache residency — the directory's own
completion rule — so ``DirectoryInterconnect.check()`` holds at every
batch boundary.

Clustered replay composes per cluster: each cluster's shard runs its own
independent batch engine (speculation is a per-bus mechanism), so the
``split_trace`` determinism argument of :mod:`repro.cluster.replay`
carries over unchanged.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.config import SimulationConfig
from repro.core.replay import (
    ReplayBlockedError,
    invariant_check_interval,
    replay,
    replay_access_driven,
)
from repro.core.states import BusPattern
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import LOCK_OPS, Op

__all__ = [
    "DEFAULT_BATCH_REFS",
    "DEFAULT_SIGNATURE_BITS",
    "MODES",
    "SpeculativeDriver",
    "batch_signatures",
    "plan_batches",
    "replay_speculative",
    "signatures_conflict",
]

#: Execution modes accepted by the replay entry points and the CLI.
MODES = ("pessimistic", "lazypim")

#: Default batch length, in references across all PEs.
DEFAULT_BATCH_REFS = 256

#: Default signature width in bits (must be a power of two).
DEFAULT_SIGNATURE_BITS = 256

_INVALIDATION = int(BusPattern.INVALIDATION)
_BARRIER_OPS = frozenset(int(op) for op in LOCK_OPS)
_W, _DW = int(Op.W), int(Op.DW)


def plan_batches(
    buffer: TraceBuffer,
    batch_refs: int,
    start: int = 0,
    stop: Optional[int] = None,
) -> List[Tuple[int, int, bool]]:
    """Segment ``[start, stop)`` into ``(lo, hi, speculative)`` spans.

    Speculative spans are maximal barrier-free runs chopped at
    ``batch_refs``; every lock operation (and every flagged contended
    reference) becomes its own non-speculative singleton span.  The
    segmentation of a suffix depends only on the suffix itself, so
    chunked (streaming) execution reproduces the monolithic boundaries.
    """
    _, op_col, _, _, flags_col = buffer.columns()
    if stop is None:
        stop = len(buffer)
    segments: List[Tuple[int, int, bool]] = []
    lo = start
    for i in range(start, stop):
        if op_col[i] in _BARRIER_OPS or flags_col[i]:
            for s in range(lo, i, batch_refs):
                segments.append((s, min(s + batch_refs, i), True))
            segments.append((i, i + 1, False))
            lo = i + 1
    for s in range(lo, stop, batch_refs):
        segments.append((s, min(s + batch_refs, stop), True))
    return segments


def batch_signatures(
    buffer: TraceBuffer,
    start: int,
    stop: int,
    n_pes: int,
    block_shift: int,
    signature_bits: int,
) -> Tuple[List[int], List[int]]:
    """Per-PE compressed read/write signatures of ``[start, stop)``.

    One bit per referenced block, hashed by the block number's low
    ``log2(signature_bits)`` bits — the truncation structure that makes
    the false-positive rate monotone in the width.
    """
    mask = signature_bits - 1
    read_sigs = [0] * n_pes
    write_sigs = [0] * n_pes
    pe_col, op_col, _, addr_col, _ = buffer.columns()
    for i in range(start, stop):
        bit = 1 << ((addr_col[i] >> block_shift) & mask)
        op = op_col[i]
        if op == _W or op == _DW:
            write_sigs[pe_col[i]] |= bit
        else:
            read_sigs[pe_col[i]] |= bit
    return read_sigs, write_sigs


def signatures_conflict(
    read_sigs: List[int], write_sigs: List[int]
) -> bool:
    """True when any PE's write signature intersects another PE's
    read-or-write signature — the LazyPIM commit test."""
    for j, wj in enumerate(write_sigs):
        if not wj:
            continue
        for i in range(len(write_sigs)):
            if i != j and wj & (read_sigs[i] | write_sigs[i]):
                return True
    return False


class _DeferredBus:
    """Transaction recorder installed as ``system._bus`` during an
    attempt: logs ``(pe, pattern, area, block)`` and charges nothing."""

    __slots__ = ("log", "touched")

    def __init__(self):
        self.log: List[Tuple[int, int, int, int]] = []
        self.touched: set = set()

    def __call__(self, pe, pattern, area, block=-1, req=0, remotes=()):
        self.log.append((pe, pattern, area, block))
        if block >= 0:
            self.touched.add(block)
        return 0


class _DeferredNotes:
    """Residency-note proxy installed as ``system._dir`` during an
    attempt on a directory backend.

    The notes still reach the backend — an entry table frozen for a
    whole batch could lose a ``note_drop``/``note_exclusive`` it needs
    — but every touched block is recorded so the settlement can
    resynchronize its entry from residency (stale masks are possible
    mid-batch because the deferred transactions resolve nothing).
    """

    __slots__ = ("_backend", "_touched")

    def __init__(self, backend, touched):
        self._backend = backend
        self._touched = touched

    def note_drop(self, block: int, pe: int) -> None:
        self._touched.add(block)
        self._backend.note_drop(block, pe)

    def note_exclusive(self, pe: int, block: int) -> None:
        self._touched.add(block)
        self._backend.note_exclusive(pe, block)

    def note_flush(self) -> None:
        self._backend.note_flush()


class SpeculativeDriver:
    """The batch/commit/rollback state machine over one live system.

    Feed it references (:meth:`feed` accepts any chunking, including one
    call with the whole trace) and :meth:`flush` the tail at the end.
    Complete batches execute as they become available; an incomplete
    barrier-free tail (always shorter than ``batch_refs``) is buffered
    until more references arrive — the seam :mod:`repro.serve.stream`
    uses to checkpoint only at batch-commit points.
    """

    def __init__(
        self,
        system,
        batch_refs: int = DEFAULT_BATCH_REFS,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        kernel: Optional[str] = None,
        values: Optional[Callable[[int], int]] = None,
        on_result: Optional[Callable] = None,
        check_every: Optional[int] = None,
    ):
        if batch_refs < 1:
            raise ValueError(f"batch_refs must be >= 1, got {batch_refs}")
        if signature_bits < 2 or signature_bits & (signature_bits - 1):
            raise ValueError(
                f"signature_bits must be a power of two >= 2, "
                f"got {signature_bits}"
            )
        if not hasattr(system, "_bus"):
            raise TypeError(
                "speculative replay needs a single-bus system (flat, or a "
                "per-cluster shard system); drive a clustered run through "
                "replay_clustered(mode='lazypim') instead"
            )
        self.system = system
        self.batch_refs = batch_refs
        self.signature_bits = signature_bits
        self.kernel = kernel
        self.values = values
        self.on_result = on_result
        self._check_every = check_every or 0
        self._checked = 0
        self._pending = TraceBuffer(system.n_pes)
        #: Global index of the first pending (not yet executed) reference.
        self._base = 0
        #: References executed (committed or pessimistically replayed).
        self.refs_done = 0
        self._log: List[Tuple[int, int, int, int]] = []
        self._touched: set = set()

    # -- feeding ---------------------------------------------------------

    def feed(self, buffer: TraceBuffer) -> None:
        """Append references and execute every complete batch."""
        if len(buffer):
            self._pending.extend(buffer)
        self._drain(final=False)

    def flush(self) -> SystemStats:
        """Execute the buffered tail as the final (short) batch."""
        self._drain(final=True)
        if self._check_every and self.refs_done:
            self.system.check_invariants()
        return self.system.stats

    def _drain(self, final: bool) -> None:
        pending = self._pending
        n = len(pending)
        _, op_col, _, _, flags_col = pending.columns()
        batch = self.batch_refs
        lo = 0
        for i in range(n):
            if op_col[i] in _BARRIER_OPS or flags_col[i]:
                for s in range(lo, i, batch):
                    self._run_segment(s, min(s + batch, i), True)
                self._run_segment(i, i + 1, False)
                lo = i + 1
        # [lo, n) is a barrier-free tail: full batches run now, the
        # remainder waits for more references (or the final flush).
        s = lo
        while n - s >= batch:
            self._run_segment(s, s + batch, True)
            s += batch
        if final and s < n:
            self._run_segment(s, n, True)
            s = n
        if s:
            self._pending = pending.slice(s, n)
            self._base += s

    # -- one segment -----------------------------------------------------

    def _run_segment(self, start: int, stop: int, speculative: bool) -> None:
        system = self.system
        segment = self._pending.slice(start, stop)
        base = self._base + start
        if not speculative:
            self._drive(segment, base, observed=True, deferred=False)
        else:
            read_sigs, write_sigs = batch_signatures(
                segment, 0, len(segment), system.n_pes,
                system._block_shift, self.signature_bits,
            )
            if signatures_conflict(read_sigs, write_sigs):
                self._rollback_and_replay(segment, base)
            else:
                self._attempt(segment, base, observed=True)
                self._settle()
                system.stats.batch_commits += 1
        self.refs_done += stop - start
        if self._check_every:
            due = self.refs_done // self._check_every
            if due > self._checked:
                self._checked = due
                system.check_invariants()

    def _rollback_and_replay(self, segment: TraceBuffer, base: int) -> None:
        from repro.serve.checkpoint import restore_into, snapshot

        system = self.system
        state = snapshot(system)
        # The doomed attempt still runs: the rollback machinery is the
        # thing under test, and real hardware only learns of the
        # conflict at commit time.
        self._attempt(segment, base, observed=False)
        restore_into(system, state)
        system.stats.batch_rollbacks += 1
        self._drive(segment, base, observed=True, deferred=False)

    def _attempt(self, segment: TraceBuffer, base: int, observed: bool) -> None:
        system = self.system
        recorder = _DeferredBus()
        saved_bus = system._bus
        saved_dir = system._dir
        system._bus = recorder
        if saved_dir is not None:
            system._dir = _DeferredNotes(saved_dir, recorder.touched)
        try:
            self._drive(segment, base, observed=observed, deferred=True)
        finally:
            system._bus = saved_bus
            system._dir = saved_dir
        self._log = recorder.log
        self._touched = recorder.touched

    def _drive(
        self, segment: TraceBuffer, base: int, observed: bool, deferred: bool
    ) -> None:
        """Execute a segment through the chosen replay loop.

        With oracle hooks installed the per-access loop runs (global
        indices reconstructed from *base*); ``observed=False`` keeps
        ``on_result`` quiet during a doomed attempt, whose results the
        rollback erases.  ``deferred`` only affects which loop is legal:
        invariant checking stays off inside an attempt (the directory's
        entry table is resynchronized at settlement, not before).
        """
        values = self.values
        on_result = self.on_result
        if len(segment) == 1 and values is None and on_result is None:
            # Pessimistic lock singletons (and one-reference batches)
            # skip the kernel machinery: one dispatch, full bookkeeping.
            pe, op, area, addr, flags = segment[0]
            result = self.system.access(pe, op, area, addr, 0, flags)
            if result[0] == BLOCKED:
                raise ReplayBlockedError(base, pe, op, area, addr)
            return
        if values is not None or on_result is not None:
            vfn = None
            if values is not None:
                vfn = lambda i, _b=base: values(_b + i)  # noqa: E731
            rfn = None
            if on_result is not None and observed:
                rfn = (
                    lambda i, pe, op, area, addr, result, _b=base:
                    on_result(_b + i, pe, op, area, addr, result)
                )
            replay_access_driven(segment, self.system, values=vfn, on_result=rfn)
        else:
            replay(
                segment, system=self.system, kernel=self.kernel,
                check_invariants_every=0,
            )

    # -- commit ----------------------------------------------------------

    def _settle(self) -> None:
        """Replay the deferred transactions as the bulk settlement round."""
        system = self.system
        stats = system.stats
        transact = system.interconnect.transact
        settled_broadcast = False
        settles = 0
        elided = 0
        for pe, pattern, area, block in self._log:
            if pattern == _INVALIDATION and block >= 0:
                # Per-block invalidations coalesce into the batch's one
                # signature broadcast: the first is charged (it *is* the
                # broadcast), the rest ride it.  Block-less invalidation
                # rounds (lock-spin episode charges) are the lock
                # protocol's liveness mechanism and never coalesce.
                if settled_broadcast:
                    elided += 1
                    continue
                settled_broadcast = True
            transact(pe, pattern, area)
            settles += 1
        stats.signature_settles += settles
        stats.batch_elided_invalidations += elided
        self._log = []
        if system._dir is not None:
            self._resync(system._dir)
        self._touched = set()

    def _resync(self, backend) -> None:
        """Resynchronize the directory entries of every touched block
        from cache residency (the backend's own completion rule)."""
        from repro.core.protocol.directory import DirectoryEntry

        entries = backend.entries
        for block in self._touched:
            state, owner, sharers = backend._residency(block)
            if sharers:
                entry = entries.get(block)
                if entry is None:
                    entries[block] = DirectoryEntry(state, owner, sharers)
                else:
                    entry.state = state
                    entry.owner = owner
                    entry.sharers = sharers
                    entry.transient = None
            else:
                entries.pop(block, None)


def replay_speculative(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    check_invariants_every: Optional[int] = None,
    system: Optional[PIMCacheSystem] = None,
    kernel: Optional[str] = None,
    batch_refs: int = DEFAULT_BATCH_REFS,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    values: Optional[Callable[[int], int]] = None,
    on_result: Optional[Callable] = None,
    force_speculation: bool = False,
) -> SystemStats:
    """Replay *buffer* under speculative batch coherence.

    Mirrors :func:`repro.core.replay.replay` (same config/system/kernel
    seams, same invariant toggle) plus the oracle hooks of
    :func:`~repro.core.replay.replay_access_driven` and the two batch
    knobs.  ``batch_refs <= 1`` short-circuits to the pessimistic path
    outright — a one-reference batch settles before any concurrent
    conflict can arise, so the degenerate mode *is* the per-access
    protocol and stays bit-identical to it, speculative counters at
    zero.  ``force_speculation=True`` (tests only) runs the full
    defer/settle machinery anyway, which the property suite uses to pin
    deferral + immediate settlement counter-identical to live charging.
    """
    if system is None:
        if config is None:
            config = SimulationConfig()
        pes = n_pes if n_pes is not None else buffer.n_pes
        system = PIMCacheSystem(config, pes)
    if check_invariants_every is None:
        check_invariants_every = invariant_check_interval()
    if batch_refs <= 1 and not force_speculation:
        if values is not None or on_result is not None:
            return replay_access_driven(
                buffer, system, values=values, on_result=on_result,
                check_invariants_every=check_invariants_every,
            )
        return replay(
            buffer, system=system, kernel=kernel,
            check_invariants_every=check_invariants_every or 0,
        )
    driver = SpeculativeDriver(
        system,
        batch_refs=batch_refs,
        signature_bits=signature_bits,
        kernel=kernel,
        values=values,
        on_result=on_result,
        check_every=check_invariants_every,
    )
    driver.feed(buffer)
    return driver.flush()
