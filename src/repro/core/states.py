"""Protocol state and bus-event enumerations (paper Sections 3.1, 3.3, 4.2)."""

from __future__ import annotations

import enum


class CacheState(enum.IntEnum):
    """The five PIM cache block states (Section 3.1).

    The protocol is the Illinois protocol plus the shared-modified state
    ``SM``, which lets a dirty block travel cache-to-cache *without* a
    copyback to shared memory; ownership (the duty to eventually swap the
    block out) stays with the supplier.  In modern terms EM/EC/SM/S/INV
    play the MOESI roles M/E/O/S/I.
    """

    INV = 0  #: Invalid.
    S = 1  #: Perhaps shared, clean with respect to this cache's duty to swap out.
    SM = 2  #: Shared modified — perhaps shared, and this cache must swap it out.
    EC = 3  #: Exclusive clean — sole copy, identical to shared memory.
    EM = 4  #: Exclusive modified — sole copy, must be swapped out.


#: States whose eviction requires a copyback to shared memory.
DIRTY_STATES = frozenset({CacheState.EM, CacheState.SM})

#: States guaranteeing no other cache holds the block.
EXCLUSIVE_STATES = frozenset({CacheState.EM, CacheState.EC})


class LockState(enum.IntEnum):
    """Lock directory entry states (Section 3.1)."""

    EMP = 0  #: Empty — the entry is free.
    LCK = 1  #: Locked by this PE; nobody is waiting.
    LWAIT = 2  #: Locked by this PE; one or more PEs are busy-waiting.


class BusCommand(enum.IntEnum):
    """Bus commands (Section 3.3).  ``H`` / ``LH`` are responses, counted
    separately in :class:`~repro.core.stats.SystemStats`."""

    F = 0  #: Fetch a block from another PE or shared memory.
    FI = 1  #: Fetch and invalidate all other copies, including the supplier.
    I = 2  #: Invalidate all other copies.
    LK = 3  #: Broadcast that an address is being locked (rides with FI or I).
    UL = 4  #: Broadcast that an LWAIT address has been unlocked.


class BusPattern(enum.IntEnum):
    """The six common-bus access patterns of Section 4.2.

    With the paper's base parameters (one-word bus, four-word block,
    eight-cycle memory) the costs are 13 / 13 / 10 / 7 / 5 / 2 cycles; see
    :meth:`repro.core.config.BusConfig.pattern_cycles` for the general
    derivation.
    """

    SWAP_IN_WITH_SWAP_OUT = 0
    SWAP_IN = 1
    C2C_WITH_SWAP_OUT = 2
    C2C = 3
    SWAP_OUT_ONLY = 4  #: Appears only in DW (dirty victim, no fetch).
    INVALIDATION = 5
    #: One word written through to shared memory (and broadcast, under
    #: the update policy).  Not part of the paper's copy-back design —
    #: it exists for the Section 3 write-policy ablations.
    WRITE_THROUGH = 6


#: Patterns that move a whole block over the bus.
TRANSFER_PATTERNS = frozenset(
    {
        BusPattern.SWAP_IN_WITH_SWAP_OUT,
        BusPattern.SWAP_IN,
        BusPattern.C2C_WITH_SWAP_OUT,
        BusPattern.C2C,
    }
)
