"""Measurement counters for a cache simulation run.

Every figure of merit in the paper's evaluation (Tables 2-5, Figures 1-3)
is derived from the counters collected here: the reference matrix (area x
operation), the hit matrix, bus-pattern counts and cycles, per-area bus
cycles, and the lock-protocol counters.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.states import BusCommand, BusPattern
from repro.trace.events import AREA_NAMES, OP_NAMES, Area, Op

N_AREAS = len(Area)
N_OPS = len(Op)
N_PATTERNS = len(BusPattern)
N_COMMANDS = len(BusCommand)


def _matrix() -> List[List[int]]:
    return [[0] * N_OPS for _ in range(N_AREAS)]


class SystemStats:
    """Counters for one multi-PE cache simulation."""

    __slots__ = (
        "n_pes",
        "refs",
        "hits",
        "pattern_counts",
        "pattern_cycles",
        "bus_cycles_by_area",
        "command_counts",
        "dw_allocations",
        "dw_demotions",
        "er_demotions",
        "purges_clean",
        "purges_dirty",
        "supplier_invalidations",
        "ri_exclusive_fetches",
        "lr_no_bus",
        "lr_bus",
        "lh_responses",
        "unlocks_no_waiter",
        "unlocks_with_waiter",
        "spurious_unlocks",
        "lock_dir_max_occupancy",
        "lock_dir_overflows",
        "swap_ins",
        "swap_outs",
        "c2c_transfers",
        "directory_transactions",
        "directory_forwards",
        "directory_invalidations",
        "directory_indirection_cycles",
        "batch_commits",
        "batch_rollbacks",
        "signature_settles",
        "batch_elided_invalidations",
        "memory_busy_cycles",
        "bus_wait_cycles",
        "lock_spin_cycles",
        "hit_service_cycles",
        "pe_cycles",
    )

    def __init__(self, n_pes: int):
        self.n_pes = n_pes
        #: refs[area][op] — memory references issued (after any demotion
        #: the *original* op is counted, so Table 3 sees what software issued).
        self.refs = _matrix()
        #: hits[area][op] — references served from the local cache.
        self.hits = _matrix()
        self.pattern_counts = [0] * N_PATTERNS
        self.pattern_cycles = [0] * N_PATTERNS
        self.bus_cycles_by_area = [0] * N_AREAS
        self.command_counts = [0] * N_COMMANDS
        # Direct-write bookkeeping.
        self.dw_allocations = 0  #: blocks allocated without a fetch
        self.dw_demotions = 0  #: DW treated as plain W (hit / unaligned / remote copy)
        self.er_demotions = 0  #: ER that fell through to plain R
        # Exclusive-read / read-purge bookkeeping.
        self.purges_clean = 0
        self.purges_dirty = 0  #: each one is a swap-out avoided
        self.supplier_invalidations = 0
        # Read-invalidate bookkeeping.
        self.ri_exclusive_fetches = 0
        # Lock protocol (Table 5).
        self.lr_no_bus = 0  #: LR hits to an exclusive block: zero bus cycles
        self.lr_bus = 0  #: LR that needed FI/I + LK on the bus
        self.lh_responses = 0  #: lock conflicts (LH drawn, busy-wait entered)
        self.unlocks_no_waiter = 0  #: U/UW finding LCK — no UL broadcast
        self.unlocks_with_waiter = 0  #: U/UW finding LWAIT — UL broadcast
        self.spurious_unlocks = 0  #: U/UW with no matching directory entry
        self.lock_dir_max_occupancy = 0
        self.lock_dir_overflows = 0
        # Traffic totals.
        self.swap_ins = 0
        self.swap_outs = 0
        self.c2c_transfers = 0
        # Home-node directory interconnect (zero under the snooping bus).
        #: Transactions resolved by a home-node directory.
        self.directory_transactions = 0
        #: Point-to-point forwards (owner/sharer supply, copybacks).
        self.directory_forwards = 0
        #: Per-sharer invalidation/update messages.
        self.directory_invalidations = 0
        #: Extra PE cycles of directory indirection (hop cost per
        #: third-party message) — its own cycle-ledger bucket.
        self.directory_indirection_cycles = 0
        # Speculative batch coherence (zero outside mode="lazypim").
        #: Batches whose signatures were conflict-free and settled in bulk.
        self.batch_commits = 0
        #: Batches that conflicted, rolled back, and replayed pessimistically.
        self.batch_rollbacks = 0
        #: Deferred coherence transactions replayed at a batch commit.
        self.signature_settles = 0
        #: Deferred invalidation rounds coalesced away at a batch commit
        #: (duplicates of an already-settled (pe, area) invalidation).
        self.batch_elided_invalidations = 0
        #: Cycles the shared-memory modules spend servicing requests —
        #: the figure the SM state is designed to reduce (Section 3.1).
        self.memory_busy_cycles = 0
        # Cycle-ledger attribution (repro.obs.metrics).  Together with
        # the bus issue/occupancy cycles these partition ``pe_cycles``:
        # sum(pe_cycles) == hit_service_cycles + sum(pattern_counts)
        #                 + bus_wait_cycles + sum(pattern_cycles)
        #                 + lock_spin_cycles [+ network stall cycles].
        #: Cycles PEs spend waiting for bus arbitration (requested the
        #: bus while another transaction held it).
        self.bus_wait_cycles = 0
        #: Extra busy-wait cycles burned re-issuing an LR after an LH
        #: response (the first, bus-charged attempt is not counted here).
        self.lock_spin_cycles = 0
        #: Single-cycle bus-free accesses: cache hits served entirely
        #: locally (plus DW's fetch-free clean allocations).
        self.hit_service_cycles = 0
        #: Per-PE elapsed cycles under the bus-serialization timing model.
        self.pe_cycles = [0] * n_pes

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    #: Scalar counters combined by summation in :meth:`merge`.
    _SUM_FIELDS = (
        "dw_allocations",
        "dw_demotions",
        "er_demotions",
        "purges_clean",
        "purges_dirty",
        "supplier_invalidations",
        "ri_exclusive_fetches",
        "lr_no_bus",
        "lr_bus",
        "lh_responses",
        "unlocks_no_waiter",
        "unlocks_with_waiter",
        "spurious_unlocks",
        "lock_dir_overflows",
        "swap_ins",
        "swap_outs",
        "c2c_transfers",
        "directory_transactions",
        "directory_forwards",
        "directory_invalidations",
        "directory_indirection_cycles",
        "batch_commits",
        "batch_rollbacks",
        "signature_settles",
        "batch_elided_invalidations",
        "memory_busy_cycles",
        "bus_wait_cycles",
        "lock_spin_cycles",
        "hit_service_cycles",
    )

    def merge(self, other: "SystemStats") -> "SystemStats":
        """Accumulate *other*'s counters into this instance (returns self).

        The merge treats the two runs as sequentially composed work on
        the same machine: counters and cycle totals add, per-PE clocks
        add element-wise (shorter vectors are zero-padded), and the lock
        directory high-water mark takes the maximum.  This is how sweep
        shards replayed in separate worker processes — one
        :class:`SystemStats` per trace — are folded into an aggregate.
        """
        for a in range(N_AREAS):
            for o in range(N_OPS):
                self.refs[a][o] += other.refs[a][o]
                self.hits[a][o] += other.hits[a][o]
            self.bus_cycles_by_area[a] += other.bus_cycles_by_area[a]
        for p in range(N_PATTERNS):
            self.pattern_counts[p] += other.pattern_counts[p]
            self.pattern_cycles[p] += other.pattern_cycles[p]
        for c in range(N_COMMANDS):
            self.command_counts[c] += other.command_counts[c]
        for name in self._SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.lock_dir_max_occupancy = max(
            self.lock_dir_max_occupancy, other.lock_dir_max_occupancy
        )
        if other.n_pes > self.n_pes:
            # Extend in place: live systems hold aliases into this list.
            self.pe_cycles.extend([0] * (other.n_pes - self.n_pes))
            self.n_pes = other.n_pes
        for pe, cycles in enumerate(other.pe_cycles):
            self.pe_cycles[pe] += cycles
        return self

    @classmethod
    def merged(cls, parts: "list[SystemStats]") -> "SystemStats":
        """Fold a list of stats into one aggregate (see :meth:`merge`)."""
        if not parts:
            raise ValueError("cannot merge an empty list of stats")
        total = cls(parts[0].n_pes)
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------

    @property
    def total_refs(self) -> int:
        """All memory references issued."""
        return sum(sum(row) for row in self.refs)

    @property
    def total_hits(self) -> int:
        return sum(sum(row) for row in self.hits)

    @property
    def bus_cycles_total(self) -> int:
        """Total common-bus cycles — the paper's primary figure of merit."""
        return sum(self.pattern_cycles)

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio (instruction + data)."""
        total = self.total_refs
        return (total - self.total_hits) / total if total else 0.0

    @property
    def total_cycles(self) -> float:
        """Simulated elapsed time: the slowest PE's clock."""
        return max(self.pe_cycles) if self.pe_cycles else 0

    def refs_by_area(self, area: Area) -> int:
        return sum(self.refs[area])

    def refs_by_op(self, op: Op) -> int:
        return sum(row[op] for row in self.refs)

    def hits_by_area(self, area: Area) -> int:
        return sum(self.hits[area])

    def data_refs(self) -> int:
        """References to the four data areas (everything but instructions)."""
        return self.total_refs - self.refs_by_area(Area.INSTRUCTION)

    def miss_ratio_area(self, area: Area) -> float:
        refs = self.refs_by_area(area)
        return (refs - self.hits_by_area(area)) / refs if refs else 0.0

    def area_ref_percentages(self) -> List[float]:
        """Percent of all references going to each area (Table 2, top)."""
        total = self.total_refs
        if not total:
            return [0.0] * N_AREAS
        return [100.0 * self.refs_by_area(a) / total for a in Area]

    def area_bus_percentages(self) -> List[float]:
        """Percent of all bus cycles attributed to each area (Table 2, bottom)."""
        total = self.bus_cycles_total
        if not total:
            return [0.0] * N_AREAS
        return [100.0 * self.bus_cycles_by_area[a] / total for a in Area]

    def op_ref_percentages(self, data_only: bool = False) -> Dict[str, float]:
        """Percent of references by operation class (Table 3 rows).

        Returns percentages for ``R`` (plain reads including the
        optimized read commands), ``LR``, ``W`` (plain writes including
        DW), and ``UW+U``.
        """
        if data_only:
            areas = [a for a in Area if a != Area.INSTRUCTION]
        else:
            areas = list(Area)
        count = {op: sum(self.refs[a][op] for a in areas) for op in Op}
        total = sum(count.values())
        if not total:
            return {"R": 0.0, "LR": 0.0, "W": 0.0, "UW+U": 0.0}
        reads = count[Op.R] + count[Op.ER] + count[Op.RP] + count[Op.RI]
        writes = count[Op.W] + count[Op.DW]
        return {
            "R": 100.0 * reads / total,
            "LR": 100.0 * count[Op.LR] / total,
            "W": 100.0 * writes / total,
            "UW+U": 100.0 * (count[Op.UW] + count[Op.U]) / total,
        }

    def heap_op_percentages(self) -> Dict[str, float]:
        """Table 3's E(heap) row: operation mix within the heap area."""
        count = {op: self.refs[Area.HEAP][op] for op in Op}
        total = sum(count.values())
        if not total:
            return {"R": 0.0, "LR": 0.0, "W": 0.0, "UW+U": 0.0}
        reads = count[Op.R] + count[Op.ER] + count[Op.RP] + count[Op.RI]
        writes = count[Op.W] + count[Op.DW]
        return {
            "R": 100.0 * reads / total,
            "LR": 100.0 * count[Op.LR] / total,
            "W": 100.0 * writes / total,
            "UW+U": 100.0 * (count[Op.UW] + count[Op.U]) / total,
        }

    # Table 5 ratios -----------------------------------------------------

    @property
    def lr_hit_ratio(self) -> float:
        """Fraction of LR operations that hit in the cache."""
        total = self.refs_by_op(Op.LR)
        hits = sum(self.hits[a][Op.LR] for a in Area)
        return hits / total if total else 0.0

    @property
    def lr_hit_to_exclusive_ratio(self) -> float:
        """Fraction of LR operations served with zero bus cycles."""
        total = self.refs_by_op(Op.LR)
        return self.lr_no_bus / total if total else 0.0

    @property
    def unlock_no_waiter_ratio(self) -> float:
        """Fraction of U/UW finding no waiter (no UL broadcast needed)."""
        total = self.unlocks_no_waiter + self.unlocks_with_waiter
        return self.unlocks_no_waiter / total if total else 0.0

    # ------------------------------------------------------------------
    # Presentation helpers
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Flatten every counter into plain Python types (for reports)."""
        return {
            "n_pes": self.n_pes,
            "total_refs": self.total_refs,
            "miss_ratio": self.miss_ratio,
            "bus_cycles_total": self.bus_cycles_total,
            "refs": {
                AREA_NAMES[a]: {OP_NAMES[o]: self.refs[a][o] for o in Op}
                for a in Area
            },
            "hits": {
                AREA_NAMES[a]: {OP_NAMES[o]: self.hits[a][o] for o in Op}
                for a in Area
            },
            "pattern_counts": {
                p.name.lower(): self.pattern_counts[p] for p in BusPattern
            },
            "pattern_cycles": {
                p.name.lower(): self.pattern_cycles[p] for p in BusPattern
            },
            "bus_cycles_by_area": {
                AREA_NAMES[a]: self.bus_cycles_by_area[a] for a in Area
            },
            "command_counts": {
                c.name: self.command_counts[c] for c in BusCommand
            },
            "dw_allocations": self.dw_allocations,
            "dw_demotions": self.dw_demotions,
            "er_demotions": self.er_demotions,
            "purges_clean": self.purges_clean,
            "purges_dirty": self.purges_dirty,
            "supplier_invalidations": self.supplier_invalidations,
            "ri_exclusive_fetches": self.ri_exclusive_fetches,
            "lr_no_bus": self.lr_no_bus,
            "lr_bus": self.lr_bus,
            "lh_responses": self.lh_responses,
            "unlocks_no_waiter": self.unlocks_no_waiter,
            "unlocks_with_waiter": self.unlocks_with_waiter,
            "spurious_unlocks": self.spurious_unlocks,
            "lock_dir_max_occupancy": self.lock_dir_max_occupancy,
            "lock_dir_overflows": self.lock_dir_overflows,
            "swap_ins": self.swap_ins,
            "swap_outs": self.swap_outs,
            "c2c_transfers": self.c2c_transfers,
            "directory_transactions": self.directory_transactions,
            "directory_forwards": self.directory_forwards,
            "directory_invalidations": self.directory_invalidations,
            "directory_indirection_cycles": self.directory_indirection_cycles,
            "batch_commits": self.batch_commits,
            "batch_rollbacks": self.batch_rollbacks,
            "signature_settles": self.signature_settles,
            "batch_elided_invalidations": self.batch_elided_invalidations,
            "memory_busy_cycles": self.memory_busy_cycles,
            "bus_wait_cycles": self.bus_wait_cycles,
            "lock_spin_cycles": self.lock_spin_cycles,
            "hit_service_cycles": self.hit_service_cycles,
            "pe_cycles": list(self.pe_cycles),
        }

    def __repr__(self) -> str:
        return (
            f"SystemStats(n_pes={self.n_pes}, refs={self.total_refs}, "
            f"miss_ratio={self.miss_ratio:.4f}, "
            f"bus_cycles={self.bus_cycles_total})"
        )
