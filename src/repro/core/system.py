"""The multi-PE PIM cache system: protocol engine, bus, and lock handling.

:class:`PIMCacheSystem` owns one cache and one lock directory per PE, the
shared memory image, and the common bus.  Its single entry point,
:meth:`PIMCacheSystem.access`, applies one memory operation and returns
the cycles consumed — or :data:`BLOCKED` when the reference hit a lock
held by another PE and the issuing PE must busy-wait (retry later).

Protocol summary (Section 3, DESIGN.md has the full rationale):

* plain read miss → ``F``; served cache-to-cache when possible, with *no*
  copyback of dirty data (the supplier keeps ownership in ``SM``) under
  the PIM protocol, or with an Illinois-style copyback when the active
  :class:`~repro.core.protocol.ProtocolSpec` says so.  All protocol
  variant points — the store table, the supplier table, and the
  FI-copyback policy — are compiled from the registered spec in
  ``__init__``; the handlers below are the protocol-agnostic controller.
* write hit in S/SM → ``I`` broadcast (the cache cannot know whether
  sharers actually exist — that is exactly what EM/EC save); write miss
  → ``FI``.
* ``DW`` on a block-boundary miss allocates without any bus transaction
  at all (or a 5-cycle swap-out-only when the victim is dirty).  The "no
  remote copy" precondition is a software contract; the simulator
  *verifies* it against its presence map and demotes violating DWs to
  plain writes rather than corrupting coherence.
* ``ER``/``RP`` invalidate the supplier on miss service and purge the
  local copy once consumed; purged dirty blocks are dropped — their data
  is dead by the write-once/read-once contract.
* ``RI`` fetches with ``FI`` so the rewrite that follows needs no ``I``.
* ``LR`` hitting an exclusive block locks in zero bus cycles; otherwise
  it rides ``FI``/``I`` with an ``LK`` broadcast.  A bus request touching
  a remotely locked word draws ``LH``, flips the holder's entry to
  ``LWAIT``, and busy-waits for ``UL``; ``U``/``UW`` broadcast ``UL``
  only from ``LWAIT``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cache import Cache
from repro.core.config import SimulationConfig
from repro.core.interconnect import (
    REQ_GETM,
    REQ_GETM_NA,
    REQ_GETS,
    REQ_GETS_NA,
    REQ_UPGR,
    REQ_WT,
    build_interconnect,
)
from repro.core.lock_directory import LockDirectory
from repro.core.protocol import RemoteAction, get_protocol
from repro.core.states import (
    DIRTY_STATES,
    BusCommand,
    BusPattern,
    CacheState,
    LockState,
)
from repro.core.stats import SystemStats
from repro.trace.events import FLAG_LOCK_CONTENDED, Area, Op

#: Sentinel returned by :meth:`PIMCacheSystem.access` when the reference
#: is inhibited by a remote lock and the PE must busy-wait and retry.
BLOCKED = -1

#: Result tuple: (cycles or BLOCKED, annotation flags, read value or None).
AccessResult = Tuple[int, int, Optional[int]]

_EXCLUSIVE = (CacheState.EM, CacheState.EC)

N_OPS = len(Op)
N_AREAS = len(Area)

#: Shared hit result for the no-data-tracking fast path (avoids one tuple
#: allocation per cache hit on the replay hot loop).
_HIT = (1, 0, None)

# Pre-resolved enum members for the miss paths: attribute access on an
# Enum class costs ~130ns per lookup, which adds up at one command and
# one or two pattern lookups per miss.
_F, _FI, _I = BusCommand.F, BusCommand.FI, BusCommand.I
_INVALIDATION = BusPattern.INVALIDATION
_C2C = BusPattern.C2C
_C2C_WITH_SWAP_OUT = BusPattern.C2C_WITH_SWAP_OUT
_SWAP_IN = BusPattern.SWAP_IN
_SWAP_IN_WITH_SWAP_OUT = BusPattern.SWAP_IN_WITH_SWAP_OUT
_EM, _EC, _SM, _S = CacheState.EM, CacheState.EC, CacheState.SM, CacheState.S

#: Shared empty remote-holder list: callers only iterate or truth-test
#: the result, so misses on unshared blocks avoid a list allocation.
_NO_REMOTES: "list[int]" = []


class PIMCacheSystem:
    """Snooping five-state cache system for ``n_pes`` processing elements."""

    __slots__ = (
        "config",
        "n_pes",
        "track_data",
        "caches",
        "lock_directories",
        "stats",
        "memory",
        "_holders",
        "_locked_words",
        "_waiting",
        "_block_words",
        "_block_mask",
        "_block_shift",
        "protocol_spec",
        "_supplier_rules",
        "_fi_copyback",
        "_store_silent_next",
        "_store_through",
        "_store_next",
        "_through_promote",
        "_store_remote_update",
        "_store_miss_allocate",
        "_store_miss_state",
        "_all_through",
        "_mem_cycles",
        "_pattern_cost",
        "_op_table",
        "_hits",
        "_pe_cycles",
        "interconnect",
        "_bus",
        "_dir",
        "_probe",
        "_base_op_table",
    )

    def __init__(self, config: SimulationConfig, n_pes: int):
        if n_pes < 1:
            raise ValueError(f"n_pes must be >= 1, got {n_pes}")
        self.config = config
        self.n_pes = n_pes
        self.track_data = config.track_data
        self.caches = [
            Cache(config.cache, pe, config.track_data) for pe in range(n_pes)
        ]
        self.lock_directories = [
            LockDirectory(pe, config.lock_entries) for pe in range(n_pes)
        ]
        self.stats = SystemStats(n_pes)
        # Aliases of the two per-reference stat arrays, saving one
        # attribute hop on every cache hit (the stats object itself is
        # never replaced, so the aliases cannot go stale).
        self._hits = self.stats.hits
        self._pe_cycles = self.stats.pe_cycles
        #: Shared memory image (word address -> value); populated lazily.
        self.memory: Dict[int, int] = {}
        # --- simulator accelerators (not architectural state) ---
        #: block number -> set of PEs with a valid copy.
        self._holders: Dict[int, set] = {}
        #: block number -> list of (owner PE, locked word address).
        self._locked_words: Dict[int, List[Tuple[int, int]]] = {}
        #: PE -> block it is currently busy-waiting on (for LH dedup).
        self._waiting: Dict[int, int] = {}
        self._block_words = config.cache.block_words
        self._block_mask = self._block_words - 1
        self._block_shift = self._block_words.bit_length() - 1
        #: The declarative protocol spec this controller was compiled
        #: from.  The tables below are flat per-state tuples (indexed by
        #: ``CacheState``) so the hot handlers pay one subscript, never a
        #: registry or spec lookup.
        spec = get_protocol(config.protocol)
        self.protocol_spec = spec
        #: (next supplier state, copyback?) when servicing a remote F.
        self._supplier_rules = spec.supplier_rules()
        #: Dirty data consumed by FI / an RP transfer copies back to memory.
        self._fi_copyback = spec.fetch_inval_copyback
        #: Next state of a silent (zero-bus) store hit, or None where the
        #: store needs the bus.  Replay's fast kernel inlines from this.
        self._store_silent_next = spec.silent_store_next()
        store = [spec.store[s] for s in CacheState]
        #: Per-state: this store writes one word through to shared memory.
        self._store_through = tuple(r.through for r in store)
        #: Per-state next state of a bus-visible store hit.
        self._store_next = tuple(
            r.next_state if r.next_state is not None else s
            for s, r in zip(CacheState, store)
        )
        #: Promotion applied by a through-store once remotes are dead.
        self._through_promote = tuple(r.next_state for r in store)
        self._store_remote_update = (
            store[0].remote is RemoteAction.UPDATE
        )
        self._store_miss_allocate = store[0].allocate
        self._store_miss_state = self._store_next[0]
        #: Every store goes through (pure write-through family): _write
        #: short-circuits to _through_store without probing the cache.
        self._all_through = spec.all_through
        self._mem_cycles = config.bus.memory_access_cycles
        self._pattern_cost = [
            config.bus.pattern_cycles(p, self._block_words) for p in BusPattern
        ]
        #: Pluggable interconnect backend (snooping bus or home-node
        #: directory).  ``_bus`` aliases its transact method so the hot
        #: handlers pay one call, no attribute hop; ``_dir`` is the
        #: backend when it tracks residency (directory) else None, so
        #: the bus path never pays the note_* hooks.
        self.interconnect = build_interconnect(config.interconnect, self)
        self._bus = self.interconnect.transact
        self._dir = (
            self.interconnect if self.interconnect.tracks_residency else None
        )
        # Handler dispatch, indexed ``_op_table[op][area]``.  Demotion of
        # optimized commands the controller does not honour is folded into
        # the table (the plain R/W handler is installed directly), so the
        # hot path never consults ``opts.honours``.  All handlers share the
        # signature ``(pe, sop, area, address, block, value, flags)``.
        honours = config.opts.honours
        # Bind each handler exactly once: every ``self._read`` access
        # creates a *new* bound-method object, and replay's inlined fast
        # path identifies handlers by identity (``handler is read``), so
        # all table cells for one handler must share one object.
        read, write = self._read, self._write
        direct_write, exclusive_read = self._direct_write, self._exclusive_read
        read_purge, read_invalidate = self._read_purge, self._read_invalidate
        per_op = {
            Op.R: lambda area: read,
            Op.W: lambda area: write,
            Op.LR: lambda area: self._lock_read,
            Op.UW: lambda area: self._unlock_write,
            Op.U: lambda area: self._unlock_plain,
            Op.DW: lambda area: (direct_write if honours(Op.DW, area) else write),
            Op.ER: lambda area: (
                exclusive_read if honours(Op.ER, area) else read
            ),
            Op.RP: lambda area: (read_purge if honours(Op.RP, area) else read),
            Op.RI: lambda area: (
                read_invalidate if honours(Op.RI, area) else read
            ),
        }
        self._op_table = [
            [per_op[op](area) for area in Area] for op in Op
        ]
        # Observability: the unwrapped table is kept so a probe can be
        # attached (handlers wrapped) and detached (table restored) at
        # will.  With no probe attached the dispatch path is unchanged —
        # the hook layer costs nothing until someone asks to observe.
        self._base_op_table = self._op_table
        self._probe = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def access(
        self, pe: int, op: int, area: int, address: int, value: int = 0, flags: int = 0
    ) -> AccessResult:
        """Apply one memory operation.

        ``flags`` carries trace annotations for replay mode (a contended
        LR / an unlock that had a waiter); in execution-driven mode pass
        0 and contention is detected live.  Returns ``(cycles, out_flags,
        read_value)``; ``cycles`` is :data:`BLOCKED` when the PE must
        busy-wait and retry the same reference.
        """
        if not 0 <= op < N_OPS:
            raise ValueError(f"unknown memory operation {op!r}")
        result = self._op_table[op][area](
            pe, op, area, address, address >> self._block_shift, value, flags
        )
        if result[0] != BLOCKED:
            self.stats.refs[area][op] += 1
            if self._waiting:
                self._waiting.pop(pe, None)
        return result

    def is_waiting(self, pe: int) -> bool:
        """Whether *pe* is currently busy-waiting on a lock."""
        return pe in self._waiting

    @property
    def probe(self):
        """The attached observability probe, or None."""
        return self._probe

    def attach_probe(self, probe) -> None:
        """Route every dispatched access through *probe*.

        Each distinct dispatch-table handler is wrapped once with the
        probe's ``before_access``/``after_access`` callbacks (see
        :class:`repro.obs.probe.ProtocolProbe` for the contract); the
        handlers themselves are untouched, so detaching restores the
        exact uninstrumented table and a system that never attaches a
        probe pays nothing.  Note the replay fast path in
        :mod:`repro.core.replay` inlines cache hits past the dispatch
        table — observed replays must drive :meth:`access` (as
        :func:`repro.obs.windows.windowed_replay` does) so the probe
        sees every reference.
        """
        if self._probe is not None:
            raise RuntimeError("a probe is already attached; detach it first")
        probe.attach(self)
        self._probe = probe
        before, after = probe.before_access, probe.after_access
        wrappers: Dict[object, object] = {}

        def wrap(handler):
            wrapped = wrappers.get(handler)
            if wrapped is None:
                def wrapped(
                    pe, sop, area, address, block, value=0, flags=0,
                    _handler=handler,
                ):
                    before(pe, sop, area, address, block)
                    result = _handler(pe, sop, area, address, block, value, flags)
                    after(pe, sop, area, address, block, result)
                    return result

                wrappers[handler] = wrapped
            return wrapped

        self._op_table = [[wrap(h) for h in row] for row in self._base_op_table]

    def detach_probe(self):
        """Remove the probe and restore the uninstrumented dispatch
        table; returns the probe (None if none was attached)."""
        probe = self._probe
        if probe is None:
            return None
        self._op_table = self._base_op_table
        self._probe = None
        probe.detach(self)
        return probe

    def line_state(self, pe: int, address: int) -> CacheState:
        """Protocol state of the block holding *address* in PE's cache."""
        line = self.caches[pe].peek(address >> self._block_shift)
        return line.state if line is not None else CacheState.INV

    def flush_all(self, silent: bool = False) -> int:
        """Invalidate every cache, writing dirty blocks back to memory.

        Used around stop-and-copy garbage collection, which the paper
        excludes from measurement; no bus cycles are charged.  With
        ``silent=True`` the write-backs are skipped entirely (the heap
        has been relocated, so the dirty data is dead) and nothing is
        charged to the memory modules either.  Returns the number of
        dirty blocks written back.
        """
        written = 0
        for cache in self.caches:
            if not silent:
                for block, line in cache.lines():
                    if line.state in DIRTY_STATES:
                        written += 1
                        self._writeback(block, line)
            cache.flush()
        self._holders.clear()
        if self._dir is not None:
            self._dir.note_flush()
        # Locks are architecturally separate from the cache directory, but
        # a flush happens around stop-and-copy GC: the heap has been
        # relocated, so any held lock addresses to the old image are dead.
        # Dropping them here prevents phantom LH-inhibiting entries (and
        # stranded busy-waiters) from outliving the flush.
        self._locked_words.clear()
        self._waiting.clear()
        for directory in self.lock_directories:
            directory.entries.clear()
        return written

    def check_invariants(self) -> None:
        """Raise AssertionError if any coherence invariant is violated.

        Invariants: an EM/EC copy is the only copy; at most one dirty
        (EM/SM) copy per block; the presence map matches the caches; and
        with data tracking, all valid copies agree, and agree with memory
        when no dirty copy exists.
        """
        by_block: Dict[int, List[Tuple[int, CacheState, object]]] = {}
        for pe, cache in enumerate(self.caches):
            for block, line in cache.lines():
                by_block.setdefault(block, []).append((pe, line.state, line.data))
        for block, copies in by_block.items():
            holders = self._holders.get(block, set())
            pes = {pe for pe, _, _ in copies}
            assert pes == holders, (
                f"block {block:#x}: presence map {holders} != caches {pes}"
            )
            exclusive = [pe for pe, state, _ in copies if state in _EXCLUSIVE]
            if exclusive:
                assert len(copies) == 1, (
                    f"block {block:#x}: exclusive copy in PE{exclusive[0]} "
                    f"coexists with {len(copies) - 1} other copies"
                )
            dirty = [pe for pe, state, _ in copies if state in DIRTY_STATES]
            assert len(dirty) <= 1, (
                f"block {block:#x}: multiple dirty copies in PEs {dirty}"
            )
            if self.track_data:
                first = copies[0][2]
                for pe, _, data in copies[1:]:
                    assert data == first, (
                        f"block {block:#x}: PE{pe} data {data} != {first}"
                    )
                if not dirty:
                    base = block << self._block_shift
                    mem = [self.memory.get(base + i, 0) for i in range(self._block_words)]
                    assert first == mem, (
                        f"block {block:#x}: clean copies {first} != memory {mem}"
                    )
        for block, holders in self._holders.items():
            assert holders, f"block {block:#x}: empty holder set left behind"
            assert block in by_block, (
                f"block {block:#x}: presence map lists {holders}, caches have none"
            )
        # The locked-word map (the bus's LH snoop accelerator) must agree
        # with the per-PE lock directories in both directions.
        for block, entries in self._locked_words.items():
            assert entries, f"block {block:#x}: empty locked-word list left behind"
            for owner, address in entries:
                assert address >> self._block_shift == block, (
                    f"locked word {address:#x} filed under block {block:#x}"
                )
                assert self.lock_directories[owner].holds(address), (
                    f"word {address:#x}: locked-word map says PE{owner} holds "
                    "it, but its lock directory has no entry"
                )
        for pe, directory in enumerate(self.lock_directories):
            for address in directory.entries:
                entries = self._locked_words.get(address >> self._block_shift, [])
                assert (pe, address) in entries, (
                    f"word {address:#x}: PE{pe}'s lock directory holds it, "
                    "but the locked-word map has no matching entry"
                )
        # Backend-specific invariants (the home-node directory checks its
        # entries against actual cache residency; the bus has none).
        self.interconnect.check()

    # ------------------------------------------------------------------
    # Interconnect and bookkeeping helpers
    # ------------------------------------------------------------------

    # ``self._bus`` (bound in __init__ to ``self.interconnect.transact``)
    # charges one bus access pattern and advances the PE/interconnect
    # clocks; the backends live in :mod:`repro.core.interconnect`.

    @property
    def bus_free_at(self) -> int:
        """Cycle at which the shared interconnect next frees up
        (read-only view of the active backend's timeline)."""
        return self.interconnect.free_at

    def _no_bus(self, pe: int) -> int:
        """Advance the PE clock for a bus-free access (cache hit)."""
        self._pe_cycles[pe] += 1
        self.stats.hit_service_cycles += 1
        return 1

    def _copyback_dirty_remotes(self, block: int, remotes: List[int]) -> None:
        """Flush any dirty copy in *remotes* before an invalidation that
        transfers no ownership (a through-store's I broadcast): the dying
        copy's copy-back duty is discharged, not dropped.  Reachable only
        when an optimized command (DW's fetch-free allocation) dirtied a
        block under a through-store protocol — pure through protocols
        never dirty a copy on their own."""
        for other in remotes:
            line = self.caches[other].peek(block)
            if line.state in DIRTY_STATES:
                self.stats.swap_outs += 1
                self._writeback(block, line)

    def _writeback(self, block: int, line) -> None:
        if self.track_data and line.data is not None:
            base = block << self._block_shift
            for offset, word in enumerate(line.data):
                self.memory[base + offset] = word
        self.stats.memory_busy_cycles += self._mem_cycles

    def _memory_read(self, block: int) -> Optional[List[int]]:
        self.stats.swap_ins += 1
        self.stats.memory_busy_cycles += self._mem_cycles
        if not self.track_data:
            return None
        base = block << self._block_shift
        return [self.memory.get(base + i, 0) for i in range(self._block_words)]

    def _drop_holder(self, block: int, pe: int) -> None:
        holders = self._holders.get(block)
        if holders is not None:
            holders.discard(pe)
            if not holders:
                del self._holders[block]
        if self._dir is not None:
            self._dir.note_drop(block, pe)

    def _fill(self, pe: int, block: int, state: CacheState, area: int, data) -> bool:
        """Insert a block, evicting as needed.  Returns True if the victim
        was dirty (a swap-out rides on this bus transaction)."""
        victim = self.caches[pe].insert(block, state, area, data)
        holders = self._holders.get(block)
        if holders is None:
            self._holders[block] = {pe}
        else:
            holders.add(pe)
        if victim is None:
            return False
        victim_block, victim_line = victim
        self._drop_holder(victim_block, pe)
        if victim_line.state in DIRTY_STATES:
            self.stats.swap_outs += 1
            self._writeback(victim_block, victim_line)
            return True
        return False

    def _remote_holders(self, pe: int, block: int) -> "list[int]":
        holders = self._holders.get(block)
        if not holders:
            return _NO_REMOTES
        return [other for other in holders if other != pe]

    def _pick_supplier(self, block: int, remotes: List[int]):
        """Choose the supplying cache for a cache-to-cache transfer,
        preferring the owner (a dirty copy) when one exists."""
        caches = self.caches
        first_line = None
        for other in remotes:
            # Inlined Cache.peek: one call per remote adds up when every
            # miss is served cache-to-cache.
            cache = caches[other]
            line = cache._lines.get(block)
            if line.state in DIRTY_STATES:
                return other, line
            if first_line is None:
                first_line = line
        return remotes[0], first_line

    def _invalidate_remotes(
        self, pe: int, block: int, remotes: Optional[List[int]] = None
    ) -> None:
        """Remove every remote copy of *block*; callers that already
        computed the remote-holder list pass it to avoid a recompute."""
        if remotes is None:
            remotes = self._remote_holders(pe, block)
        if not remotes:
            return
        caches = self.caches
        for other in remotes:
            caches[other].remove(block)
        holders = self._holders.get(block)
        if holders is not None:
            holders.difference_update(remotes)
            if not holders:
                del self._holders[block]

    def _check_locks(self, pe: int, area: int, block: int) -> bool:
        """True when a bus request by *pe* to *block* is inhibited by a
        remote lock (LH response).  Flips the holders' entries to LWAIT
        and charges the aborted bus command once per waiting episode."""
        locked = self._locked_words.get(block)
        if not locked:
            return False
        inhibited = False
        for owner, address in locked:
            if owner != pe:
                inhibited = True
                self.lock_directories[owner].mark_waiting(address)
        if not inhibited:
            return False
        if self._waiting.get(pe) != block:
            self._waiting[pe] = block
            self.stats.lh_responses += 1
            # The aborted request occupied the bus for its address cycle
            # and the LH response; busy-wait itself uses no bus cycles.
            self._bus(pe, _INVALIDATION, area)
        else:
            self.stats.pe_cycles[pe] += 1  # one spin cycle
            self.stats.lock_spin_cycles += 1
        return True

    # ------------------------------------------------------------------
    # Operation handlers.  ``sop`` is the operation as issued by software
    # (before any demotion) so the statistics reflect Table 3's view.
    # All handlers share the dispatch-table signature
    # ``(pe, sop, area, address, block, value, flags)``; the hit paths of
    # ``_read`` and ``_write`` are hand-hoisted (locals instead of
    # repeated attribute chains, ``_no_bus`` inlined) because they carry
    # the bulk of every trace replay.
    # ------------------------------------------------------------------

    def _read(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        cache = self.caches[pe]
        # Inlined Cache.lookup (dict probe + LRU touch): this is the
        # single hottest line of a trace replay.
        line = cache._lines.get(block)
        if line is not None:
            cache._tick += 1
            line.lru = cache._tick
            self._hits[area][sop] += 1
            self._pe_cycles[pe] += 1
            self.stats.hit_service_cycles += 1
            if self.track_data:
                return (1, 0, line.data[address & self._block_mask])
            return _HIT
        if self._locked_words and self._check_locks(pe, area, block):
            return (BLOCKED, 0, None)
        stats = self.stats
        stats.command_counts[_F] += 1
        remotes = self._remote_holders(pe, block)
        if remotes:
            supplier_pe, supplier = self._pick_supplier(block, remotes)
            data = list(supplier.data) if self.track_data else None
            # The spec's supplier table: what the supplying copy drops to
            # and whether dirty data copies back to memory on the way
            # (the Illinois behaviour; the PIM SM state skips it).
            next_state, copyback = self._supplier_rules[supplier.state]
            if copyback:
                stats.swap_outs += 1
                self._writeback(block, supplier)
            supplier.state = next_state
            stats.c2c_transfers += 1
            victim_dirty = self._fill(pe, block, CacheState.S, area, data)
            pattern = (
                _C2C_WITH_SWAP_OUT if victim_dirty else _C2C
            )
        else:
            data = self._memory_read(block)
            victim_dirty = self._fill(pe, block, CacheState.EC, area, data)
            pattern = (
                _SWAP_IN_WITH_SWAP_OUT
                if victim_dirty
                else _SWAP_IN
            )
        cycles = self._bus(pe, pattern, area, block, REQ_GETS, remotes)
        value = None
        if self.track_data:
            line = self.caches[pe].peek(block)
            value = line.data[address & self._block_mask]
        return (cycles, 0, value)

    def _write(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        if self._all_through:
            # Pure write-through family: no store ever hits silently, so
            # skip the local probe and go straight to the through path.
            return self._through_store(pe, sop, area, address, block, value)
        cache = self.caches[pe]
        # Inlined Cache.lookup, as in _read.
        line = cache._lines.get(block)
        if line is not None:
            cache._tick += 1
            line.lru = cache._tick
            state = line.state
            next_state = self._store_silent_next[state]
            if next_state is not None:
                # Silent store hit (EM/EC under the copy-back protocols):
                # zero bus cycles, local state per the spec's store table.
                line.state = next_state
                self._hits[area][sop] += 1
                self._pe_cycles[pe] += 1
                self.stats.hit_service_cycles += 1
                if self.track_data:
                    line.data[address & self._block_mask] = value
                return _HIT
            stats = self.stats
            # The block is *perhaps* shared — a bus transaction is
            # mandatory even if no copy actually exists elsewhere.
            if self._locked_words and self._check_locks(pe, area, block):
                return (BLOCKED, 0, None)
            if self._store_through[state]:
                # Through-store hit (write-once in S/SM): one word to
                # shared memory, remotes handled, copy promoted in place.
                stats.hits[area][sop] += 1
                if self.track_data:
                    line.data[address & self._block_mask] = value
                remotes = self._remote_holders(pe, block)
                if self._store_remote_update:
                    if self.track_data:
                        offset = address & self._block_mask
                        for other in remotes:
                            self.caches[other].peek(block).data[offset] = value
                else:
                    self._copyback_dirty_remotes(block, remotes)
                    self._invalidate_remotes(pe, block, remotes)
                if self.track_data:
                    self.memory[address] = value
                promoted = self._through_promote[state]
                if promoted is not None:
                    line.state = promoted
                stats.memory_busy_cycles += self._mem_cycles
                cycles = self._bus(
                    pe, BusPattern.WRITE_THROUGH, area, block, REQ_WT, remotes
                )
                return (cycles, 0, None)
            # Invalidation hit (S/SM under PIM/Illinois): I broadcast.
            stats.hits[area][sop] += 1
            remotes = self._remote_holders(pe, block)
            self._invalidate_remotes(pe, block, remotes)
            line.state = self._store_next[state]
            if self.track_data:
                line.data[address & self._block_mask] = value
            stats.command_counts[_I] += 1
            cycles = self._bus(pe, _INVALIDATION, area, block, REQ_UPGR, remotes)
            return (cycles, 0, None)
        if not self._store_miss_allocate:
            # Miss without write-allocate (write-once): the word goes
            # through; _through_store performs its own lock check.
            return self._through_store(pe, sop, area, address, block, value)
        # Write miss: fetch-on-write via FI.
        if self._locked_words and self._check_locks(pe, area, block):
            return (BLOCKED, 0, None)
        cycles = self._fetch_exclusive(pe, area, block, self._store_miss_state)
        if self.track_data:
            self.caches[pe].peek(block).data[address & self._block_mask] = value
        return (cycles, 0, None)

    def _through_store(
        self, pe: int, sop: int, area: int, address: int, block: int, value: int
    ) -> AccessResult:
        """Write one word through to shared memory over the bus, with no
        write-allocate.  Under an *invalidate* remote action remote
        copies are killed and the sole survivor is promoted per the
        spec's store table; under the *update* action (``write_update``)
        remotes are patched in place (a broadcast write), so blocks are
        never dirtied and sharers persist."""
        if self._locked_words and self._check_locks(pe, area, block):
            return (BLOCKED, 0, None)
        line = self.caches[pe].lookup(block)
        if line is not None:
            self.stats.hits[area][sop] += 1
            if self.track_data:
                line.data[address & self._block_mask] = value
        remotes = self._remote_holders(pe, block)
        if self._store_remote_update:
            for other in remotes:
                if self.track_data:
                    remote = self.caches[other].peek(block)
                    remote.data[address & self._block_mask] = value
        else:
            self._copyback_dirty_remotes(block, remotes)
            self._invalidate_remotes(pe, block, remotes)
            if line is not None:
                # Now the sole copy: apply the spec's promotion (under
                # the built-in through policies S->EC and SM->EM — the
                # write went through, so a clean block stays clean, and
                # a dirty block keeps its copy-back duty for its *other*
                # words).
                promoted = self._through_promote[line.state]
                if promoted is not None:
                    line.state = promoted
        if self.track_data:
            self.memory[address] = value
        self.stats.memory_busy_cycles += self._mem_cycles
        cycles = self._bus(
            pe, BusPattern.WRITE_THROUGH, area, block, REQ_WT, remotes
        )
        return (cycles, 0, None)

    def _fetch_exclusive(
        self, pe: int, area: int, block: int, final_state: Optional[CacheState]
    ) -> int:
        """Issue FI: fetch *block* and invalidate every other copy.

        ``final_state`` of None means "EM if the data was dirty somewhere,
        else EC" (used by LR / RI, whose write may be silent later).
        Returns the bus cycles charged.
        """
        self.stats.command_counts[_FI] += 1
        remotes = self._remote_holders(pe, block)
        if remotes:
            supplier_pe, supplier = self._pick_supplier(block, remotes)
            data = list(supplier.data) if self.track_data else None
            dirty = supplier.state in DIRTY_STATES
            if dirty and self._fi_copyback:
                self.stats.swap_outs += 1
                self._writeback(block, supplier)
                dirty = False
            self._invalidate_remotes(pe, block, remotes)
            self.stats.c2c_transfers += 1
            if final_state is None:
                final_state = CacheState.EM if dirty else CacheState.EC
            elif final_state == CacheState.EC and dirty:
                final_state = CacheState.EM
            victim_dirty = self._fill(pe, block, final_state, area, data)
            pattern = (
                _C2C_WITH_SWAP_OUT if victim_dirty else _C2C
            )
        else:
            data = self._memory_read(block)
            if final_state is None:
                final_state = CacheState.EC
            victim_dirty = self._fill(pe, block, final_state, area, data)
            pattern = (
                _SWAP_IN_WITH_SWAP_OUT
                if victim_dirty
                else _SWAP_IN
            )
        return self._bus(pe, pattern, area, block, REQ_GETM, remotes)

    def _direct_write(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        cache = self.caches[pe]
        # Inlined Cache.peek (no LRU touch, matching the original).
        line = cache._lines.get(block)
        if line is not None:
            # Already resident — an ordinary write hit, demoted to W
            # whether or not the address is a block boundary.  The
            # dominant DW outcome is re-writing a block this PE already
            # owns, so the EM/EC write hit is finished inline rather
            # than paying a second probe inside ``_write``; the
            # shared/write-through cases still take the full path.
            self.stats.dw_demotions += 1
            state = line.state
            next_state = self._store_silent_next[state]
            if next_state is not None:
                cache._tick += 1
                line.lru = cache._tick
                line.state = next_state
                self._hits[area][sop] += 1
                self._pe_cycles[pe] += 1
                self.stats.hit_service_cycles += 1
                if self.track_data:
                    line.data[address & self._block_mask] = value
                return _HIT
            return self._write(pe, sop, area, address, block, value)
        if (address & self._block_mask) or self._holders.get(block):
            # Demote: either not a block boundary (the controller
            # replaces DW with W) or a remote copy exists, violating the
            # software contract ("no remote copy") — demote rather than
            # break coherence.
            self.stats.dw_demotions += 1
            return self._write(pe, sop, area, address, block, value)
        # Allocate without fetching: zero bus cycles unless a dirty
        # victim must be swapped out (the 5-cycle swap-out-only pattern).
        # The words not yet written are architecturally undefined (the
        # software contract says they will be written before being read);
        # the model gives them the shared-memory contents so that even a
        # contract-violating read stays deterministic.
        self.stats.dw_allocations += 1
        data = None
        if self.track_data:
            base = block << self._block_shift
            data = [self.memory.get(base + i, 0) for i in range(self._block_words)]
        victim_dirty = self._fill(pe, block, CacheState.EM, area, data)
        if self._dir is not None:
            # The only bus-free fill: the home node must still learn of
            # the new exclusive-dirty owner.
            self._dir.note_exclusive(pe, block)
        if self.track_data:
            self.caches[pe].peek(block).data[address & self._block_mask] = value
        if victim_dirty:
            cycles = self._bus(pe, BusPattern.SWAP_OUT_ONLY, area)
            return (cycles, 0, None)
        self.stats.pe_cycles[pe] += 1
        self.stats.hit_service_cycles += 1
        return _HIT

    def _purge(self, pe: int, area: int, block: int, line) -> None:
        """Forcibly drop a local block; a dirty purge is a swap-out avoided."""
        self.caches[pe].remove(block)
        self._drop_holder(block, pe)
        if line.state in DIRTY_STATES:
            self.stats.purges_dirty += 1
        else:
            self.stats.purges_clean += 1

    def _exclusive_read(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        last_word = (address & self._block_mask) == self._block_mask
        cache = self.caches[pe]
        # Inlined Cache.lookup, as in _read.
        line = cache._lines.get(block)
        if line is not None:
            cache._tick += 1
            line.lru = cache._tick
            # Case (ii): hit on the last word — read, then purge (RP).
            self.stats.hits[area][sop] += 1
            value = line.data[address & self._block_mask] if self.track_data else None
            if last_word:
                self._purge(pe, area, block, line)
            self.stats.pe_cycles[pe] += 1
            self.stats.hit_service_cycles += 1
            return (1, 0, value)
        remotes = self._remote_holders(pe, block)
        if remotes and not last_word:
            # Case (i): read invalidate — cache-to-cache transfer after
            # which the supplier's copy is invalidated.
            if self._locked_words and self._check_locks(pe, area, block):
                return (BLOCKED, 0, None)
            self.stats.supplier_invalidations += 1
            cycles = self._fetch_exclusive(pe, area, block, None)
            value = None
            if self.track_data:
                value = self.caches[pe].peek(block).data[address & self._block_mask]
            return (cycles, 0, value)
        # Case (iii): the controller replaces ER with plain R.
        self.stats.er_demotions += 1
        return self._read(pe, sop, area, address, block)

    def _read_purge(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        line = self.caches[pe].lookup(block)
        if line is not None:
            # Case (i): read, then forcibly purge.
            self.stats.hits[area][sop] += 1
            value = line.data[address & self._block_mask] if self.track_data else None
            self._purge(pe, area, block, line)
            self._no_bus(pe)
            return (1, 0, value)
        if self._locked_words and self._check_locks(pe, area, block):
            return (BLOCKED, 0, None)
        remotes = self._remote_holders(pe, block)
        if remotes:
            # Case (ii): supplier invalidated after the transfer; the
            # fetched block is consumed without being allocated.
            self.stats.command_counts[_FI] += 1
            supplier_pe, supplier = self._pick_supplier(block, remotes)
            data = list(supplier.data) if self.track_data else None
            if supplier.state in DIRTY_STATES:
                if self._fi_copyback:
                    self.stats.swap_outs += 1
                    self._writeback(block, supplier)
                self.stats.purges_dirty += 1
            else:
                self.stats.purges_clean += 1
            self._invalidate_remotes(pe, block, remotes)
            self.stats.supplier_invalidations += 1
            self.stats.c2c_transfers += 1
            cycles = self._bus(pe, _C2C, area, block, REQ_GETM_NA, remotes)
            value = data[address & self._block_mask] if self.track_data else None
            return (cycles, 0, value)
        # Miss with no remote copy: read through shared memory, nothing
        # to purge or allocate.
        self.stats.command_counts[_F] += 1
        data = self._memory_read(block)
        cycles = self._bus(pe, _SWAP_IN, area, block, REQ_GETS_NA)
        value = data[address & self._block_mask] if self.track_data else None
        return (cycles, 0, value)

    def _read_invalidate(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        line = self.caches[pe].lookup(block)
        if line is not None:
            # RI targets data just written by another PE; on a hit it
            # behaves as a plain read.
            self.stats.hits[area][sop] += 1
            self._no_bus(pe)
            value = line.data[address & self._block_mask] if self.track_data else None
            return (1, 0, value)
        if self._locked_words and self._check_locks(pe, area, block):
            return (BLOCKED, 0, None)
        self.stats.ri_exclusive_fetches += 1
        cycles = self._fetch_exclusive(pe, area, block, None)
        value = None
        if self.track_data:
            value = self.caches[pe].peek(block).data[address & self._block_mask]
        return (cycles, 0, value)

    # ------------------------------------------------------------------
    # Lock operations
    # ------------------------------------------------------------------

    def _register_lock(self, pe: int, address: int, block: int) -> None:
        directory = self.lock_directories[pe]
        overflows_before = directory.overflows
        directory.lock(address)
        self._locked_words.setdefault(block, []).append((pe, address))
        stats = self.stats
        if directory.max_occupancy > stats.lock_dir_max_occupancy:
            stats.lock_dir_max_occupancy = directory.max_occupancy
        stats.lock_dir_overflows += directory.overflows - overflows_before

    def _release_lock(self, pe: int, address: int, block: int) -> None:
        locked = self._locked_words.get(block)
        if locked is not None:
            try:
                locked.remove((pe, address))
            except ValueError:
                pass
            if not locked:
                del self._locked_words[block]

    def _lock_read(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        if self._locked_words and self._check_locks(pe, area, block):
            return (BLOCKED, 0, None)
        out_flags = 0
        if flags & FLAG_LOCK_CONTENDED:
            # Trace replay: re-enact the LH + busy-wait recorded at
            # generation time (replay order serializes the conflict away).
            self.stats.lh_responses += 1
            self._bus(pe, _INVALIDATION, area)
            out_flags = FLAG_LOCK_CONTENDED
        line = self.caches[pe].lookup(block)
        value = None
        if line is not None:
            self.stats.hits[area][sop] += 1
            if self.track_data:
                value = line.data[address & self._block_mask]
            if line.state in _EXCLUSIVE:
                # The whole point of the hardware lock: zero bus cycles.
                self._register_lock(pe, address, block)
                self.stats.lr_no_bus += 1
                self._no_bus(pe)
                return (1, out_flags, value)
            # Shared hit: I + LK to gain exclusivity before locking.
            # A remote SM owner dies in the broadcast without supplying
            # data, so its copy-back duty must transfer to this copy
            # (the copies agree word-for-word): end dirty, not EC.
            remotes = self._remote_holders(pe, block)
            remote_dirty = any(
                self.caches[other].peek(block).state in DIRTY_STATES
                for other in remotes
            )
            self._invalidate_remotes(pe, block, remotes)
            line.state = (
                CacheState.EM
                if remote_dirty or line.state == CacheState.SM
                else CacheState.EC
            )
            self._register_lock(pe, address, block)
            self.stats.lr_bus += 1
            self.stats.command_counts[_I] += 1
            self.stats.command_counts[BusCommand.LK] += 1
            cycles = self._bus(pe, _INVALIDATION, area, block, REQ_UPGR, remotes)
            return (cycles, out_flags, value)
        # Miss: FI + LK.
        self.stats.lr_bus += 1
        self.stats.command_counts[BusCommand.LK] += 1
        cycles = self._fetch_exclusive(pe, area, block, None)
        self._register_lock(pe, address, block)
        if self.track_data:
            value = self.caches[pe].peek(block).data[address & self._block_mask]
        return (cycles, out_flags, value)

    def _unlock_write(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        return self._unlock(pe, sop, area, address, block, True, value, flags)

    def _unlock_plain(
        self, pe: int, sop: int, area: int, address: int, block: int,
        value: int = 0, flags: int = 0,
    ) -> AccessResult:
        return self._unlock(pe, sop, area, address, block, False, value, flags)

    def _unlock(
        self,
        pe: int,
        sop: int,
        area: int,
        address: int,
        block: int,
        write: bool,
        value: int,
        flags: int,
    ) -> AccessResult:
        directory = self.lock_directories[pe]
        prior = directory.state(address)
        if prior == LockState.EMP:
            self.stats.spurious_unlocks += 1
            if write:
                return self._write(pe, sop, area, address, block, value)
            self._no_bus(pe)
            return (1, 0, None)
        total = 0
        if write:
            # The LR acquired the block exclusively, so this is normally a
            # silent write hit; a miss (local eviction since LR) refetches.
            # Perform the write while still holding the lock, so a rare
            # conflict with another lock in the same block can be retried
            # without having dropped our own entry.
            result = self._write(pe, sop, area, address, block, value)
            if result[0] == BLOCKED:
                return result
            total = result[0]
        else:
            self.stats.hits[area][sop] += 1
            total = self._no_bus(pe)
        directory.unlock(address)
        self._release_lock(pe, address, block)
        had_waiter = prior == LockState.LWAIT or bool(flags & FLAG_LOCK_CONTENDED)
        out_flags = 0
        if had_waiter:
            self.stats.unlocks_with_waiter += 1
            self.stats.command_counts[BusCommand.UL] += 1
            total += self._bus(pe, _INVALIDATION, area)
            out_flags = FLAG_LOCK_CONTENDED
            # Busy-waiting PEs will retry; clear their episode markers so
            # the retry performs a fresh (now unobstructed) lock check.
            for waiter, waited_block in list(self._waiting.items()):
                if waited_block == block:
                    del self._waiting[waiter]
        else:
            self.stats.unlocks_no_waiter += 1
        return (total, out_flags, None)

    def __repr__(self) -> str:
        return (
            f"PIMCacheSystem(n_pes={self.n_pes}, "
            f"protocol={self.config.protocol!r}, "
            f"cache={self.config.cache.capacity_words} words, "
            f"refs={self.stats.total_refs})"
        )
