"""A from-scratch KL1 / FGHC abstract machine (the paper's substrate).

The paper evaluates the PIM cache by running a parallel KL1 emulator
that feeds memory references to the cache simulator.  This package is
that emulator, rebuilt from the paper's description of the architecture
(Section 2): Flat Guarded Horn Clauses are parsed
(:mod:`repro.machine.parser`), compiled to an abstract instruction set
(:mod:`repro.machine.compiler`), and reduced by one engine per PE
(:mod:`repro.machine.engine`) over five shared storage areas — heap,
instruction, goal, suspension and communication — with an on-demand
work-stealing scheduler (:mod:`repro.machine.scheduler`).

Every access to the five areas is issued through a
:class:`~repro.machine.port.MemoryPort`, which drives the cache system
live (execution-driven) and/or records a trace for later replay.
Registers, goal-queue pointers and other processor state are *not*
counted, matching the paper's "liberal correspondence" of emulator
variables to target-machine registers.
"""

from repro.machine.errors import (
    DeadlockError,
    FGHCSyntaxError,
    MachineError,
    ProgramFailure,
    UnificationFailure,
)
from repro.machine.machine import KL1Machine, MachineResult
from repro.machine.parser import parse_program, parse_goal
from repro.machine.compiler import compile_program

__all__ = [
    "DeadlockError",
    "FGHCSyntaxError",
    "KL1Machine",
    "MachineError",
    "MachineResult",
    "ProgramFailure",
    "UnificationFailure",
    "compile_program",
    "parse_goal",
    "parse_program",
]
