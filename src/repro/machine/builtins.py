"""Builtin body goals (system-defined procedures).

FGHC bodies perform arithmetic through goals such as ``add(A, B, C)``
(the compiler flattens ``C := A + B`` into them).  Like any goal, a
builtin whose inputs are unbound *suspends* and is resumed when the
producer binds them — this is what makes ``X := Y + 1`` safe even when
``Y`` arrives later over a stream.

Each handler receives the engine and the argument words and returns
``None`` on success or a list of variable addresses to suspend on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.errors import ProgramFailure
from repro.machine.terms import INT, REF


def _two_ints(engine, args):
    """Dereference the first two arguments; returns (a, b) ints or a
    suspension list."""
    tag_a, val_a = engine.deref(args[0])
    if tag_a == REF:
        return None, [val_a]
    tag_b, val_b = engine.deref(args[1])
    if tag_b == REF:
        return None, [val_b]
    if tag_a != INT or tag_b != INT:
        raise ProgramFailure(
            "arithmetic on non-integer arguments "
            f"({engine.machine.format_word((tag_a, val_a))}, "
            f"{engine.machine.format_word((tag_b, val_b))})"
        )
    return (val_a, val_b), None


def _arith(operation):
    def handler(engine, args) -> Optional[List[int]]:
        values, suspend = _two_ints(engine, args)
        if suspend is not None:
            return suspend
        result = operation(values[0], values[1])
        engine.unify_words(args[2], (INT, result))
        return None

    return handler


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ProgramFailure("division by zero")
    return int(a / b)  # truncating division, as KL1's / on integers


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise ProgramFailure("mod by zero")
    return a - b * int(a / b)


#: name -> handler; the compiler interns these as ``name/3`` functors.
HANDLERS = {
    "add": _arith(lambda a, b: a + b),
    "sub": _arith(lambda a, b: a - b),
    "mul": _arith(lambda a, b: a * b),
    "div": _arith(_div),
    "mod": _arith(_mod),
}
