"""FGHC clause compiler.

Compiles parsed clauses into the abstract instruction set:

* head arguments become ``wait_*`` matching instructions with WAM-style
  read-mode sequences for nested structures (breadth-first via temporary
  registers);
* guards become ``guard_cmp`` / ``guard_integer`` / ``guard_wait``
  instructions whose expressions are evaluated against registers
  (guards are passive: they may read but never write the heap);
* body unifications build terms with ``put_*`` instructions and unify
  actively; ``:=`` arithmetic is flattened into builtin arithmetic
  *goals* (``add/3`` …) so an operand bound later simply suspends the
  arithmetic goal, as FGHC semantics require;
* every body goal is spawned as a goal record — the paper's accounting
  ("goal records are always written once and read once") is preserved
  by not short-circuiting even tail calls.

Register convention: ``X[0..arity-1]`` hold the incoming goal arguments;
clause variables and temporaries are allocated from ``X[arity]`` up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.machine.errors import CompileError
from repro.machine.instructions import CompiledClause, Instr, Procedure
from repro.machine.parser import COMPARISON_OPS, parse_program
from repro.machine.symbols import SymbolTable
from repro.machine.store import INSTR_BASE
from repro.machine.terms import (
    ATOM,
    INT,
    Clause,
    SAtom,
    SInt,
    SList,
    SStruct,
    STerm,
    SVar,
)

#: Builtin arithmetic goals ``name/3`` the ``:=`` flattener targets.
ARITH_BUILTINS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "mod": "mod"}

#: All builtin goal names (resolved before user procedures).
BUILTIN_GOALS = ("add", "sub", "mul", "div", "mod")

#: Instruction words charged per builtin goal reduction (its "microcode"
#: stub in the instruction area).
BUILTIN_STUB_WORDS = 2


class Program:
    """A compiled FGHC program, laid out in the instruction area."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self.procedures: Dict[int, Procedure] = {}
        #: functor id -> builtin name, for goals resolved natively.
        self.builtins: Dict[int, str] = {}
        #: builtin functor id -> instruction-area stub address.
        self.builtin_stubs: Dict[int, int] = {}
        self.code_words = 0
        self.source_lines = 0
        self.max_registers = 8

    def procedure(self, name: str, arity: int) -> Procedure:
        functor_id = self.symbols.functor(name, arity)
        proc = self.procedures.get(functor_id)
        if proc is None:
            raise KeyError(f"no procedure {name}/{arity}")
        return proc

    def listing(self) -> str:
        """Human-readable code listing (for debugging and docs)."""
        parts = []
        for proc in self.procedures.values():
            parts.append(f"{proc.name}/{proc.arity}:")
            for clause in proc.clauses:
                parts.append(clause.listing())
        return "\n".join(parts)


class _ClauseCompiler:
    """Compiles one clause; owns its register map."""

    def __init__(self, symbols: SymbolTable, max_goal_args: int):
        self.symbols = symbols
        self.max_goal_args = max_goal_args
        self.registers: Dict[str, int] = {}
        self.next_register = 0
        self.passive: List[Instr] = []
        self.body: List[Instr] = []

    # -- registers -------------------------------------------------------

    def fresh(self) -> int:
        register = self.next_register
        self.next_register += 1
        return register

    def lookup(self, name: str) -> Optional[int]:
        return self.registers.get(name)

    def assign(self, name: str, register: int) -> int:
        self.registers[name] = register
        return register

    # -- head --------------------------------------------------------

    def compile_head(self, head: SStruct) -> None:
        arity = len(head.args)
        self.next_register = arity
        pending: List[Tuple[int, STerm]] = []
        for index, arg in enumerate(head.args):
            self._match_register(index, arg, pending)
        while pending:
            register, term = pending.pop(0)
            self._match_structure(register, term, pending)

    def _match_register(self, register: int, term: STerm, pending) -> None:
        """Match *term* against the value in *register*."""
        if isinstance(term, SVar):
            if term.name == "_":
                return
            seen = self.lookup(term.name)
            if seen is None:
                destination = self.assign(term.name, self.fresh())
                self.passive.append(Instr("head_var", register, destination))
            else:
                self.passive.append(Instr("head_val", register, seen))
        elif isinstance(term, SInt):
            self.passive.append(Instr("wait_const", register, (INT, term.value)))
        elif isinstance(term, SAtom):
            self.passive.append(
                Instr("wait_const", register, (ATOM, self.symbols.atom(term.name)))
            )
        else:
            self._match_structure(register, term, pending)

    def _match_structure(self, register: int, term: STerm, pending) -> None:
        if isinstance(term, SList):
            self.passive.append(Instr("wait_list", register))
            self._read_argument(term.head, pending)
            self._read_argument(term.tail, pending)
        elif isinstance(term, SStruct):
            functor_id = self.symbols.functor(term.name, term.arity)
            self.passive.append(
                Instr("wait_struct", register, functor_id, term.arity)
            )
            for arg in term.args:
                self._read_argument(arg, pending)
        else:  # pragma: no cover - callers dispatch on type
            raise CompileError(f"cannot match {term} structurally")

    def _read_argument(self, term: STerm, pending) -> None:
        """Emit the read-mode instruction for one subterm cell."""
        if isinstance(term, SVar):
            if term.name == "_":
                self.passive.append(Instr("read_var", self.fresh()))
                return
            seen = self.lookup(term.name)
            if seen is None:
                destination = self.assign(term.name, self.fresh())
                self.passive.append(Instr("read_var", destination))
            else:
                self.passive.append(Instr("read_val", seen))
        elif isinstance(term, SInt):
            self.passive.append(Instr("read_const", (INT, term.value)))
        elif isinstance(term, SAtom):
            self.passive.append(
                Instr("read_const", (ATOM, self.symbols.atom(term.name)))
            )
        else:
            # Nested structure: pull the cell into a temporary register
            # and match it after the current level (breadth-first).
            temporary = self.fresh()
            self.passive.append(Instr("read_var", temporary))
            pending.append((temporary, term))

    # -- guards ------------------------------------------------------

    def compile_guard(self, goal: STerm) -> None:
        if isinstance(goal, SAtom):
            if goal.name in ("true", "otherwise"):
                # ``otherwise`` is modelled as an always-true guard on the
                # final clause (DESIGN.md notes the simplification).
                return
            raise CompileError(f"unsupported guard {goal}")
        if not isinstance(goal, SStruct):
            raise CompileError(f"unsupported guard {goal}")
        if goal.name in COMPARISON_OPS and goal.arity == 2:
            left = self._guard_expr(goal.args[0])
            right = self._guard_expr(goal.args[1])
            self.passive.append(Instr("guard_cmp", goal.name, left, right))
            return
        if goal.name == "integer" and goal.arity == 1:
            self.passive.append(
                Instr("guard_integer", self._guard_register(goal.args[0]))
            )
            return
        if goal.name == "wait" and goal.arity == 1:
            self.passive.append(
                Instr("guard_wait", self._guard_register(goal.args[0]))
            )
            return
        raise CompileError(f"unsupported guard {goal}")

    def _guard_register(self, term: STerm) -> int:
        if not isinstance(term, SVar) or term.name == "_":
            raise CompileError(f"guard argument must be a named variable: {term}")
        register = self.lookup(term.name)
        if register is None:
            raise CompileError(
                f"guard variable {term.name} does not occur in the head"
            )
        return register

    def _guard_expr(self, term: STerm):
        if isinstance(term, SInt):
            return ("int", term.value)
        if isinstance(term, SAtom):
            return ("atom", self.symbols.atom(term.name))
        if isinstance(term, SVar):
            register = self.lookup(term.name)
            if register is None:
                raise CompileError(
                    f"guard variable {term.name} does not occur in the head"
                )
            return ("reg", register)
        if isinstance(term, SStruct) and term.name in ARITH_BUILTINS and term.arity == 2:
            return (
                term.name,
                self._guard_expr(term.args[0]),
                self._guard_expr(term.args[1]),
            )
        raise CompileError(f"unsupported guard expression {term}")

    # -- body ----------------------------------------------------------

    def compile_body(self, goals: Tuple[STerm, ...]) -> None:
        for goal in goals:
            self.compile_body_goal(goal)
        self.body.append(Instr("proceed"))

    def compile_body_goal(self, goal: STerm) -> None:
        if isinstance(goal, SAtom):
            goal = SStruct(goal.name, ())
        if not isinstance(goal, SStruct):
            raise CompileError(f"unsupported body goal {goal}")
        if goal.name == "=" and goal.arity == 2:
            self._compile_unification(goal.args[0], goal.args[1])
            return
        if goal.name == ":=" and goal.arity == 2:
            self._compile_assignment(goal.args[0], goal.args[1])
            return
        if goal.arity > self.max_goal_args:
            raise CompileError(
                f"goal {goal.name}/{goal.arity} exceeds the goal record's "
                f"{self.max_goal_args} argument words"
            )
        registers = tuple(self._build(arg) for arg in goal.args)
        functor_id = self.symbols.functor(goal.name, goal.arity)
        self.body.append(Instr("spawn", functor_id, registers))

    def _compile_unification(self, left: STerm, right: STerm) -> None:
        # ``X = Term`` with X not yet seen is a pure register alias.
        if isinstance(left, SVar) and left.name != "_" and self.lookup(left.name) is None:
            self.assign(left.name, self._build(right))
            return
        if (
            isinstance(right, SVar)
            and right.name != "_"
            and self.lookup(right.name) is None
        ):
            self.assign(right.name, self._build(left))
            return
        self.body.append(Instr("body_unify", self._build(left), self._build(right)))

    def _compile_assignment(self, target: STerm, expression: STerm) -> None:
        result = self._flatten_arith(expression)
        if isinstance(target, SVar) and target.name != "_" and self.lookup(target.name) is None:
            self.assign(target.name, result)
            return
        self.body.append(Instr("body_unify", self._build(target), result))

    def _flatten_arith(self, expression: STerm) -> int:
        """Flatten an arithmetic expression into builtin goals; returns
        the register holding (a variable for) the result."""
        if isinstance(expression, (SInt, SVar, SAtom)):
            return self._build(expression)
        if (
            isinstance(expression, SStruct)
            and expression.name in ARITH_BUILTINS
            and expression.arity == 2
        ):
            left = self._flatten_arith(expression.args[0])
            right = self._flatten_arith(expression.args[1])
            output = self.fresh()
            self.body.append(Instr("put_var", output))
            builtin = ARITH_BUILTINS[expression.name]
            functor_id = self.symbols.functor(builtin, 3)
            self.body.append(Instr("spawn", functor_id, (left, right, output)))
            return output
        raise CompileError(f"unsupported arithmetic expression {expression}")

    def _build(self, term: STerm) -> int:
        """Emit instructions leaving *term* in a register; returns it."""
        if isinstance(term, SVar):
            if term.name == "_":
                register = self.fresh()
                self.body.append(Instr("put_var", register))
                return register
            seen = self.lookup(term.name)
            if seen is not None:
                return seen
            register = self.assign(term.name, self.fresh())
            self.body.append(Instr("put_var", register))
            return register
        if isinstance(term, SInt):
            register = self.fresh()
            self.body.append(Instr("put_int", register, term.value))
            return register
        if isinstance(term, SAtom):
            register = self.fresh()
            self.body.append(
                Instr("put_atom", register, self.symbols.atom(term.name))
            )
            return register
        if isinstance(term, SList):
            car = self._build(term.head)
            cdr = self._build(term.tail)
            register = self.fresh()
            self.body.append(Instr("put_list", register, car, cdr))
            return register
        if isinstance(term, SStruct):
            arguments = tuple(self._build(arg) for arg in term.args)
            register = self.fresh()
            functor_id = self.symbols.functor(term.name, term.arity)
            self.body.append(Instr("put_struct", register, functor_id, arguments))
            return register
        raise CompileError(f"cannot build term {term}")  # pragma: no cover


def compile_clause(
    clause: Clause, symbols: SymbolTable, max_goal_args: int = 5
) -> Tuple[CompiledClause, int]:
    """Compile one clause; returns it and the number of registers used."""
    if len(clause.head.args) > max_goal_args:
        raise CompileError(
            f"head {clause.head.name}/{len(clause.head.args)} exceeds the "
            f"goal record's {max_goal_args} argument words"
        )
    compiler = _ClauseCompiler(symbols, max_goal_args)
    compiler.compile_head(clause.head)
    for guard in clause.guards:
        compiler.compile_guard(guard)
    compiler.passive.append(Instr("commit"))
    compiler.compile_body(clause.body)
    compiled = CompiledClause(compiler.passive, compiler.body, source=str(clause))
    return compiled, compiler.next_register


def compile_program(
    source: str, symbols: Optional[SymbolTable] = None, max_goal_args: int = 5
) -> Program:
    """Parse and compile FGHC *source* into a :class:`Program`."""
    symbols = symbols if symbols is not None else SymbolTable()
    program = Program(symbols)
    program.source_lines = sum(
        1 for line in source.splitlines() if line.strip() and not line.strip().startswith("%")
    )
    # Reserve the builtin goal functors and their code stubs first.
    cursor = INSTR_BASE
    for name in BUILTIN_GOALS:
        functor_id = symbols.functor(name, 3)
        program.builtins[functor_id] = name
        program.builtin_stubs[functor_id] = cursor
        cursor += BUILTIN_STUB_WORDS
    max_registers = 8
    for clause in parse_program(source):
        functor_id = symbols.functor(clause.head.name, len(clause.head.args))
        if functor_id in program.builtins:
            raise CompileError(
                f"cannot redefine builtin {clause.head.name}/{len(clause.head.args)}"
            )
        proc = program.procedures.get(functor_id)
        if proc is None:
            proc = Procedure(functor_id, clause.head.name, len(clause.head.args))
            program.procedures[functor_id] = proc
        compiled, used = compile_clause(clause, symbols, max_goal_args)
        compiled.passive_base = cursor
        cursor += len(compiled.passive)
        compiled.body_base = cursor
        cursor += len(compiled.body)
        proc.clauses.append(compiled)
        if used > max_registers:
            max_registers = used
    program.code_words = cursor - INSTR_BASE
    program.max_registers = max_registers
    return program
