"""The per-PE reduction engine.

Each engine owns a register file and a goal list (a deque of goal-record
addresses; the list pointers themselves are processor registers and cost
no memory references, per the paper's accounting).  One call to
:meth:`Engine.step` performs one scheduler turn: answer any pending work
request, then either reduce one goal or run the idle (work-stealing)
protocol.

Reduction of a goal (Section 2.2): dequeue the record — reading it with
``ER``/``RP`` since a dequeued record is dead — try each clause's
passive part, commit to the first that succeeds, and run its body.  A
clause try *fails* on a mismatch and *suspend-candidates* on an unbound
variable; if no clause commits but candidates exist, the goal is written
back as a floating record and hooked to each variable through
suspension records.  Binding a hooked variable resumes the floating
goals onto the binder's goal list.

Variable bindings use the hardware lock (``LR`` … ``UW``); new
structures are pushed on the heap top with ``DW``.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.machine.errors import MachineError, ProgramFailure, UnificationFailure
from repro.machine import scheduler
from repro.machine.store import owner_of
from repro.machine.terms import ATOM, FUNCTOR, HOOK, INT, LIST, REF, STR, Word

#: Goal-record status word values.
STATUS_RUNNABLE = 0
STATUS_FLOATING = 1


class _ClauseFail(Exception):
    """Internal: the current clause's passive part failed."""


class _ClauseSuspend(Exception):
    """Internal: the current clause needs the value of an unbound
    variable (a suspension candidate)."""

    def __init__(self, address: int):
        self.address = address


class Engine:
    """One processing element's reduction engine."""

    __slots__ = (
        "machine",
        "pe",
        "X",
        "goal_list",
        "reductions",
        "suspensions",
        "awaiting",
        "_victim_order",
        "_victim_idx",
        "idle_backoff",
        "_backoff_step",
        "advertising",
    )

    def __init__(self, machine, pe: int, n_registers: int):
        self.machine = machine
        self.pe = pe
        self.X: List[Optional[Word]] = [None] * n_registers
        self.goal_list: deque = deque()
        self.reductions = 0
        self.suspensions = 0
        #: PE we posted a work request to, awaiting its reply.
        self.awaiting: Optional[int] = None
        self._victim_order = self._build_victim_order()
        self._victim_idx = -1  # cursor into the victim order
        #: Turns to stay quiet after an unsuccessful steal round.
        self.idle_backoff = 0
        self._backoff_step = 0
        #: Whether this PE's load-table hint currently advertises work.
        self.advertising = False

    # ------------------------------------------------------------------
    # Scheduler turn
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One scheduler turn: serve requests, then reduce or steal."""
        scheduler.poll_requests(self)
        if self.goal_list:
            self.reduce_one()
        else:
            scheduler.idle_step(self)

    def reduce_one(self) -> None:
        machine = self.machine
        pe = self.pe
        record = self.goal_list.popleft()
        machine.runnable -= 1
        # Read the record with ER (RP on the final word): once dequeued it
        # is dead, so both the local copy and any supplier copy may go.
        words = machine.read_goal_record(pe, record)
        functor_id = words[1]
        args = words[3:]
        machine.goal_area.release(record)
        procedure = machine.program.procedures.get(functor_id)
        if procedure is not None:
            suspend_vars = self.try_clauses(procedure, args)
        else:
            name = machine.program.builtins.get(functor_id)
            if name is None:
                raise ProgramFailure(
                    f"undefined procedure {machine.symbols.functor_str(functor_id)}"
                )
            stub = machine.program.builtin_stubs[functor_id]
            machine.fetch(pe, stub)
            machine.fetch(pe, stub + 1)
            suspend_vars = machine.builtin_handlers[name](self, list(args))
        if suspend_vars:
            self.suspend_goal(functor_id, args, suspend_vars)
        self.reductions += 1
        machine.total_reductions += 1

    # ------------------------------------------------------------------
    # Clause selection
    # ------------------------------------------------------------------

    def try_clauses(self, procedure, args) -> Optional[List[int]]:
        """Try each clause; commit and run the first whose passive part
        succeeds.  Returns None on commit, or the distinct variable
        addresses to suspend on."""
        X = self.X
        for index, word in enumerate(args):
            X[index] = word
        suspend_on: List[int] = []
        for clause in procedure.clauses:
            try:
                self.run_passive(clause)
            except _ClauseFail:
                continue
            except _ClauseSuspend as candidate:
                if candidate.address not in suspend_on:
                    suspend_on.append(candidate.address)
                continue
            self.run_body(clause)
            return None
        if suspend_on:
            return suspend_on
        raise ProgramFailure(
            f"{procedure.name}/{procedure.arity} failed on "
            f"({', '.join(self.machine.format_word(w) for w in args)})"
        )

    # ------------------------------------------------------------------
    # Passive part
    # ------------------------------------------------------------------

    def run_passive(self, clause) -> None:
        machine = self.machine
        pe = self.pe
        X = self.X
        fetch = machine.fetch
        base = clause.passive_base
        structure_pointer = 0  # the WAM "S" register (processor state)
        for offset, instr in enumerate(clause.passive):
            fetch(pe, base + offset)
            op = instr.op
            if op == "head_var":
                X[instr.b] = X[instr.a]
            elif op == "wait_list":
                tag, value = self.deref(X[instr.a])
                if tag == REF:
                    raise _ClauseSuspend(value)
                if tag != LIST:
                    raise _ClauseFail
                structure_pointer = value
            elif op == "read_var":
                X[instr.a] = machine.heap_read_i(pe, structure_pointer)
                structure_pointer += 1
            elif op == "read_val":
                word = machine.heap_read_i(pe, structure_pointer)
                structure_pointer += 1
                self.passive_unify(word, X[instr.a])
            elif op == "read_const":
                word = machine.heap_read_i(pe, structure_pointer)
                structure_pointer += 1
                tag, value = self.deref(word)
                if tag == REF:
                    raise _ClauseSuspend(value)
                if (tag, value) != instr.a:
                    raise _ClauseFail
            elif op == "wait_const":
                tag, value = self.deref(X[instr.a])
                if tag == REF:
                    raise _ClauseSuspend(value)
                if (tag, value) != instr.b:
                    raise _ClauseFail
            elif op == "wait_struct":
                tag, value = self.deref(X[instr.a])
                if tag == REF:
                    raise _ClauseSuspend(value)
                if tag != STR:
                    raise _ClauseFail
                _, functor_id = machine.heap_read_i(pe, value)
                if functor_id != instr.b:
                    raise _ClauseFail
                structure_pointer = value + 1
            elif op == "head_val":
                self.passive_unify(X[instr.a], X[instr.b])
            elif op == "guard_cmp":
                self.guard_compare(instr.a, instr.b, instr.c)
            elif op == "guard_integer":
                tag, value = self.deref(X[instr.a])
                if tag == REF:
                    raise _ClauseSuspend(value)
                if tag != INT:
                    raise _ClauseFail
            elif op == "guard_wait":
                tag, value = self.deref(X[instr.a])
                if tag == REF:
                    raise _ClauseSuspend(value)
            elif op == "commit":
                return
            else:  # pragma: no cover
                raise MachineError(f"unknown passive instruction {instr}")
        raise MachineError(  # pragma: no cover
            "passive part fell off the end without committing"
        )

    def deref(self, word: Word) -> Word:
        """Follow REF chains (reading each cell).  Returns ``(REF, a)``
        for an unbound (possibly hooked) variable at address *a*, or the
        bound value."""
        tag, value = word
        machine = self.machine
        pe = self.pe
        while tag == REF:
            cell_tag, cell_value = machine.heap_read_i(pe, value)
            if cell_tag == REF:
                if cell_value == value:
                    return (REF, value)
                value = cell_value
            elif cell_tag == HOOK:
                return (REF, value)
            else:
                return (cell_tag, cell_value)
        return (tag, value)

    def passive_unify(self, word_a: Word, word_b: Word) -> None:
        """Input-only unification: never binds; suspends when a binding
        would be needed, fails on a mismatch."""
        machine = self.machine
        pe = self.pe
        stack = [(word_a, word_b)]
        while stack:
            wa, wb = stack.pop()
            a_tag, a_value = self.deref(wa)
            b_tag, b_value = self.deref(wb)
            if a_tag == REF or b_tag == REF:
                if a_tag == REF and b_tag == REF and a_value == b_value:
                    continue
                raise _ClauseSuspend(a_value if a_tag == REF else b_value)
            if a_tag != b_tag:
                raise _ClauseFail
            if a_tag == INT or a_tag == ATOM:
                if a_value != b_value:
                    raise _ClauseFail
            elif a_tag == LIST:
                car_a = machine.heap_read_i(pe, a_value)
                car_b = machine.heap_read_i(pe, b_value)
                cdr_a = machine.heap_read_i(pe, a_value + 1)
                cdr_b = machine.heap_read_i(pe, b_value + 1)
                stack.append((cdr_a, cdr_b))
                stack.append((car_a, car_b))
            elif a_tag == STR:
                _, functor_a = machine.heap_read_i(pe, a_value)
                _, functor_b = machine.heap_read_i(pe, b_value)
                if functor_a != functor_b:
                    raise _ClauseFail
                arity = machine.symbols.functor_name(functor_a)[1]
                for index in range(arity, 0, -1):
                    stack.append(
                        (
                            machine.heap_read_i(pe, a_value + index),
                            machine.heap_read_i(pe, b_value + index),
                        )
                    )
            else:  # pragma: no cover
                raise _ClauseFail

    def guard_compare(self, operator: str, left, right) -> None:
        a_tag, a_value = self.eval_guard(left)
        b_tag, b_value = self.eval_guard(right)
        if operator == "==":
            if (a_tag, a_value) != (b_tag, b_value):
                raise _ClauseFail
            return
        if operator == "\\==":
            if (a_tag, a_value) == (b_tag, b_value):
                raise _ClauseFail
            return
        if a_tag != INT or b_tag != INT:
            raise _ClauseFail
        if operator == "<":
            ok = a_value < b_value
        elif operator == "=<":
            ok = a_value <= b_value
        elif operator == ">":
            ok = a_value > b_value
        elif operator == ">=":
            ok = a_value >= b_value
        elif operator == "=:=":
            ok = a_value == b_value
        elif operator == "=\\=":
            ok = a_value != b_value
        else:  # pragma: no cover
            raise MachineError(f"unknown comparison {operator}")
        if not ok:
            raise _ClauseFail

    def eval_guard(self, expression) -> Word:
        """Evaluate a guard expression tree to a tagged immediate,
        suspending on unbound variables."""
        kind = expression[0]
        if kind == "reg":
            tag, value = self.deref(self.X[expression[1]])
            if tag == REF:
                raise _ClauseSuspend(value)
            if tag == LIST or tag == STR:
                raise _ClauseFail
            return (tag, value)
        if kind == "int":
            return (INT, expression[1])
        if kind == "atom":
            return (ATOM, expression[1])
        a_tag, a_value = self.eval_guard(expression[1])
        b_tag, b_value = self.eval_guard(expression[2])
        if a_tag != INT or b_tag != INT:
            raise _ClauseFail
        if kind == "+":
            return (INT, a_value + b_value)
        if kind == "-":
            return (INT, a_value - b_value)
        if kind == "*":
            return (INT, a_value * b_value)
        if kind == "/":
            if b_value == 0:
                raise _ClauseFail
            return (INT, int(a_value / b_value))
        if kind == "mod":
            if b_value == 0:
                raise _ClauseFail
            return (INT, a_value - b_value * int(a_value / b_value))
        raise MachineError(f"unknown guard expression {expression}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Active part
    # ------------------------------------------------------------------

    def run_body(self, clause) -> None:
        machine = self.machine
        pe = self.pe
        X = self.X
        fetch = machine.fetch
        base = clause.body_base
        spawned: List[int] = []
        for offset, instr in enumerate(clause.body):
            fetch(pe, base + offset)
            op = instr.op
            if op == "put_int":
                X[instr.a] = (INT, instr.b)
            elif op == "put_atom":
                X[instr.a] = (ATOM, instr.b)
            elif op == "put_var":
                X[instr.a] = (REF, machine.heap_alloc_unbound_i(pe))
            elif op == "put_list":
                address = machine.heap_alloc_i(pe, X[instr.b])
                machine.heap_alloc_i(pe, X[instr.c])
                X[instr.a] = (LIST, address)
            elif op == "put_struct":
                address = machine.heap_alloc_i(pe, (FUNCTOR, instr.b))
                for register in instr.c:
                    machine.heap_alloc_i(pe, X[register])
                X[instr.a] = (STR, address)
            elif op == "body_unify":
                self.unify_words(X[instr.a], X[instr.b])
            elif op == "spawn":
                arguments = tuple(X[register] for register in instr.b)
                spawned.append(machine.create_goal(pe, instr.a, arguments))
            elif op == "proceed":
                break
            else:  # pragma: no cover
                raise MachineError(f"unknown body instruction {instr}")
        # Push in reverse so the first body goal is dequeued first
        # (depth-first, left-to-right).
        for record in reversed(spawned):
            self.goal_list.appendleft(record)
            machine.runnable += 1

    def unify_words(self, word_a: Word, word_b: Word) -> None:
        """Active (output) unification with hardware-locked bindings."""
        machine = self.machine
        pe = self.pe
        stack: List[Tuple[Word, Word]] = [(word_a, word_b)]
        while stack:
            wa, wb = stack.pop()
            a_tag, a_value = self.deref(wa)
            b_tag, b_value = self.deref(wb)
            if a_tag == REF and b_tag == REF:
                if a_value == b_value:
                    continue
                # Bind the higher address to the lower for stable chains.
                if a_value < b_value:
                    target, other = b_value, (REF, a_value)
                else:
                    target, other = a_value, (REF, b_value)
                found = self.bind(target, other)
                if found is not None:
                    stack.append((found, other))
            elif a_tag == REF:
                found = self.bind(a_value, (b_tag, b_value))
                if found is not None:
                    stack.append((found, (b_tag, b_value)))
            elif b_tag == REF:
                found = self.bind(b_value, (a_tag, a_value))
                if found is not None:
                    stack.append(((a_tag, a_value), found))
            elif a_tag != b_tag:
                raise UnificationFailure(
                    f"cannot unify {machine.format_word((a_tag, a_value))} "
                    f"with {machine.format_word((b_tag, b_value))}"
                )
            elif a_tag == INT or a_tag == ATOM:
                if a_value != b_value:
                    raise UnificationFailure(
                        f"cannot unify {machine.format_word((a_tag, a_value))} "
                        f"with {machine.format_word((b_tag, b_value))}"
                    )
            elif a_tag == LIST:
                stack.append(
                    (
                        machine.heap_read_i(pe, a_value + 1),
                        machine.heap_read_i(pe, b_value + 1),
                    )
                )
                stack.append(
                    (
                        machine.heap_read_i(pe, a_value),
                        machine.heap_read_i(pe, b_value),
                    )
                )
            else:  # STR
                _, functor_a = machine.heap_read_i(pe, a_value)
                _, functor_b = machine.heap_read_i(pe, b_value)
                if functor_a != functor_b:
                    raise UnificationFailure(
                        f"functor clash {machine.symbols.functor_str(functor_a)} "
                        f"vs {machine.symbols.functor_str(functor_b)}"
                    )
                arity = machine.symbols.functor_name(functor_a)[1]
                for index in range(arity, 0, -1):
                    stack.append(
                        (
                            machine.heap_read_i(pe, a_value + index),
                            machine.heap_read_i(pe, b_value + index),
                        )
                    )

    def bind(self, address: int, word: Word) -> Optional[Word]:
        """Bind the variable at *address* to *word* under the hardware
        lock.  Returns None on success (resuming any hooked goals), or
        the value found if the variable was concurrently bound."""
        machine = self.machine
        pe = self.pe
        flags = machine.port.roll_conflict(owner_of(address) != pe)
        tag, value = machine.heap_lock_read_i(pe, address, flags)
        if tag == REF and value == address:
            machine.heap_unlock_write_i(pe, address, word, flags)
            return None
        if tag == HOOK:
            machine.heap_unlock_write_i(pe, address, word, flags)
            self.resume_chain(value)
            return None
        machine.heap_unlock_i(pe, address, flags)
        return (tag, value)

    # ------------------------------------------------------------------
    # Suspension and resumption
    # ------------------------------------------------------------------

    def suspend_goal(self, functor_id: int, args, var_addresses: List[int]) -> None:
        """Write the goal back as a floating record and hook it to each
        variable through a suspension record."""
        machine = self.machine
        pe = self.pe
        record = machine.goal_area.allocate(pe)
        machine.goal_write_i(pe, record, STATUS_FLOATING)
        machine.goal_write_i(pe, record + 1, functor_id)
        machine.goal_write_i(pe, record + 2, len(args))
        for index, word in enumerate(args):
            machine.goal_write_i(pe, record + 3 + index, word)
        machine.floating += 1
        for address in var_addresses:
            suspension = machine.susp_area.allocate(pe)
            flags = machine.port.roll_conflict(owner_of(address) != pe)
            tag, value = machine.heap_lock_read_i(pe, address, flags)
            if tag == REF and value == address:
                chain = 0
            elif tag == HOOK:
                chain = value
            else:
                # Bound between the passive read and the hook (cannot
                # happen at reduction granularity; kept for robustness):
                # resume the floating record immediately and stop hooking.
                machine.heap_unlock_i(pe, address, flags)
                machine.susp_area.release(suspension)
                self._resume_record(record)
                break
            machine.susp_write_i(pe, suspension, chain)
            machine.susp_write_i(pe, suspension + 1, record)
            machine.susp_write_i(pe, suspension + 2, address)
            machine.heap_unlock_write_i(pe, address, (HOOK, suspension), flags)
        self.suspensions += 1
        machine.total_suspensions += 1

    def resume_chain(self, chain: int) -> None:
        """Walk a suspension chain after binding its variable, relinking
        each still-floating goal to this PE's goal list."""
        machine = self.machine
        pe = self.pe
        while chain:
            next_record = machine.susp_read_i(pe, chain)
            goal = machine.susp_read_i(pe, chain + 1)
            self._resume_record(goal)
            machine.susp_area.release(chain)
            chain = next_record

    def _resume_record(self, record: int) -> None:
        """Relink *record* to this PE's goal list unless another variable's
        binding already resumed it (the status word is checked under lock)."""
        machine = self.machine
        pe = self.pe
        flags = machine.port.roll_conflict(owner_of(record) != pe)
        status = machine.goal_lock_read_i(pe, record, flags)
        if status == STATUS_FLOATING:
            machine.goal_unlock_write_i(pe, record, STATUS_RUNNABLE, flags)
            self.goal_list.appendleft(record)
            machine.floating -= 1
            machine.runnable += 1
        else:
            machine.goal_unlock_i(pe, record, flags)

    # ------------------------------------------------------------------

    def _build_victim_order(self) -> "list[int]":
        """Cyclic victim order for work-requesting, with cluster affinity.

        On a flat machine (one cluster) this is plain round-robin over
        the other PEs, starting after ``self.pe`` — the exact sequence
        the pre-cluster scheduler produced.  On a clustered machine the
        same-cluster peers are interleaved ahead of remote PEs (one full
        local pass between successive remote candidates), so goals
        mostly circulate within a cluster bus and only occasionally
        migrate across the network — the cluster-affinity distribution
        that makes clustered benchmark traces cross-cluster-realistic.
        """
        machine = self.machine
        n_pes = machine.n_pes
        ring = [(self.pe + step) % n_pes for step in range(1, n_pes)]
        clusters = getattr(machine, "n_clusters", 1)
        if clusters <= 1:
            return ring
        pes_per_cluster = n_pes // clusters
        my_cluster = self.pe // pes_per_cluster
        local = [q for q in ring if q // pes_per_cluster == my_cluster]
        remote = [q for q in ring if q // pes_per_cluster != my_cluster]
        if not local:
            return remote
        order: "list[int]" = []
        for remote_pe in remote:
            order.extend(local)
            order.append(remote_pe)
        return order

    def next_victim(self) -> int:
        """Next PE to request work from (see :meth:`_build_victim_order`)."""
        order = self._victim_order
        if not order:
            return self.pe
        self._victim_idx = (self._victim_idx + 1) % len(order)
        return order[self._victim_idx]

    def __repr__(self) -> str:
        return (
            f"Engine(pe={self.pe}, goals={len(self.goal_list)}, "
            f"reductions={self.reductions})"
        )
