"""Exceptions raised by the KL1 machine."""

from __future__ import annotations


class MachineError(Exception):
    """Base class for all KL1 machine errors."""


class FGHCSyntaxError(MachineError):
    """Malformed FGHC source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class CompileError(MachineError):
    """A clause that parses but cannot be compiled (e.g. arity too large,
    output unification attempted in a guard)."""


class ProgramFailure(MachineError):
    """Every clause of a procedure failed with no suspension possible —
    the FGHC program itself has failed."""


class UnificationFailure(MachineError):
    """Active (body) unification of incompatible terms.  In FGHC this
    aborts the program."""


class DeadlockError(MachineError):
    """No runnable goals remain but suspended goals exist: the program
    is waiting on variables nobody will ever bind."""


class HeapOverflowError(MachineError):
    """A PE's heap segment is exhausted (the emulator does not run the
    stop-and-copy collector during measurement; enlarge the scale
    preset's segment instead)."""


class LimitExceededError(MachineError):
    """The run exceeded ``MachineConfig.max_reductions``."""
