"""Stop-and-copy heap garbage collection.

Section 4 notes that "the system measured uses stop-and-copy GC" and
excludes collection from the measured reference stream, so this
collector performs **no instrumented memory accesses**: it rewrites the
backing store directly and invalidates every cache afterwards (the
architectural effect of relocating the heap under the caches).

The algorithm is a Cheney-style copying collector generalized to the
per-PE heap segments: every live cell is copied into a fresh segment
owned by the same PE, with a forwarding map in place of in-cell
forwarding tags (from- and to-space share the address range, so cells
already holding final to-space words are tracked explicitly).  Roots are

* the argument words of every allocated goal record — runnable goals on
  the goal lists, floating (suspended) goals, and goals in flight
  between PEs all live in the goal area, which is free-list managed and
  does not move; and
* the query's answer variables.

Copy units follow the pointer tag: a ``REF`` target is a single cell
(unbound and hooked variables are always standalone cells), a ``LIST``
target is a two-cell cons, and a ``STR`` target is the functor cell plus
its arguments.  ``HOOK`` contents point into the suspension area and are
preserved verbatim.

Running the collector under ``track_data=True`` cache simulation is
rejected: relocation invalidates the modelled memory image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.machine.store import SEGMENT_SHIFT, HEAP_BASE, HeapStore
from repro.machine.terms import LIST, REF, STR, Word


@dataclass
class GCStats:
    """Outcome of one collection."""

    words_before: int
    words_after: int

    @property
    def words_reclaimed(self) -> int:
        return self.words_before - self.words_after


class _Collector:
    def __init__(self, machine):
        self.machine = machine
        self.old = machine.heap
        self.cells: List[List[Word]] = [[] for _ in range(machine.n_pes)]
        #: old address of a copied object's first cell -> new address.
        self.forwarded: Dict[int, int] = {}
        #: per-PE to-space indices whose contents are already final
        #: (the unbound-variable self-reference fixups).
        self.final: List[Set[int]] = [set() for _ in range(machine.n_pes)]
        #: per-PE scan cursor into the to-space segment.
        self.scan: List[int] = [0] * machine.n_pes

    # -- copying --------------------------------------------------------

    def copy_object(self, address: int, size: int) -> int:
        """Copy the *size*-cell object at from-space *address* (once)."""
        new_address = self.forwarded.get(address)
        if new_address is not None:
            return new_address
        pe = (address >> SEGMENT_SHIFT) & 0xF
        segment = self.cells[pe]
        new_address = HEAP_BASE | (pe << SEGMENT_SHIFT) | len(segment)
        self.forwarded[address] = new_address
        for offset in range(size):
            tag, value = self.old.read(address + offset)
            if tag == REF and value == address + offset:
                # An unbound variable: keep it self-referential, and mark
                # the cell final so the scan leaves it alone.
                self.final[pe].add(len(segment))
                segment.append((REF, new_address + offset))
            else:
                segment.append((tag, value))
        return new_address

    def forward_word(self, word: Word) -> Word:
        """Translate one from-space word to its to-space equivalent."""
        tag, value = word
        if tag == REF:
            return (REF, self.copy_object(value, 1))
        if tag == LIST:
            return (LIST, self.copy_object(value, 2))
        if tag == STR:
            # From-space stays intact during collection, so the functor
            # cell is readable whether or not the object is copied yet.
            _, functor_id = self.old.read(value)
            arity = self.machine.symbols.functor_name(functor_id)[1]
            return (STR, self.copy_object(value, 1 + arity))
        return word

    # -- phases ----------------------------------------------------------

    def copy_roots(self) -> None:
        machine = self.machine
        area = machine.goal_area
        stride = area.stride
        for pe in range(machine.n_pes):
            free = set(area.free[pe])
            segment_words = len(area.words[pe])
            for start in range(0, segment_words, stride):
                record = area.base | (pe << SEGMENT_SHIFT) | start
                if record in free:
                    continue
                arity = area.read(record + 2)
                if not isinstance(arity, int) or not 0 <= arity <= stride - 3:
                    continue  # a slot that never held a full record
                for index in range(arity):
                    word = area.read(record + 3 + index)
                    if isinstance(word, tuple):
                        area.write(record + 3 + index, self.forward_word(word))
        machine.query_roots = {
            name: self.copy_object(address, 1)
            for name, address in machine.query_roots.items()
        }

    def scan_to_space(self) -> None:
        """Cheney scan: forward the contents of every copied cell."""
        progressed = True
        while progressed:
            progressed = False
            for pe, segment in enumerate(self.cells):
                index = self.scan[pe]
                final = self.final[pe]
                while index < len(segment):
                    if index not in final:
                        segment[index] = self.forward_word(segment[index])
                    index += 1
                    progressed = True
                self.scan[pe] = index


def collect(machine) -> GCStats:
    """Run one stop-and-copy collection over *machine*'s heap."""
    if machine.system is not None and machine.system.track_data:
        raise RuntimeError(
            "stop-and-copy GC cannot run under track_data cache simulation: "
            "relocating the heap invalidates the modelled memory image"
        )
    before = machine.heap.total_words()
    collector = _Collector(machine)
    collector.copy_roots()
    collector.scan_to_space()
    fresh = HeapStore(machine.n_pes, limit=machine.heap.limit)
    fresh.cells = collector.cells
    machine.heap = fresh
    if machine.system is not None:
        # The heap moved under the caches: invalidate everything without
        # charging the (unmeasured) collection traffic.
        machine.system.flush_all(silent=True)
    machine.gc_collections += 1
    after = fresh.total_words()
    machine.gc_words_reclaimed += before - after
    return GCStats(words_before=before, words_after=after)
