"""The abstract instruction set (KL1-B flavoured).

Each instruction occupies one word of the instruction area; executing it
costs one instruction fetch.  The passive part of a clause (head
matching and guard tests) may *fail* (try the next clause) or find an
unbound variable it would need (*suspend candidate*); only after
``commit`` does the active part run.

Instructions are generic triples ``Instr(op, a, b, c)``; the operand
meaning per opcode is documented in :mod:`repro.machine.engine`, which
also implements the semantics.  Guard expressions are nested tuples with
``("reg", i)`` / ``("int", n)`` / ``("atom", id)`` leaves and
``("+", ea, eb)``-style interior nodes.
"""

from __future__ import annotations

from typing import Tuple


class Instr:
    """One instruction word: an opcode and up to three operands."""

    __slots__ = ("op", "a", "b", "c")

    def __init__(self, op: str, a=None, b=None, c=None):
        self.op = op
        self.a = a
        self.b = b
        self.c = c

    def __repr__(self) -> str:
        operands = [
            repr(value) for value in (self.a, self.b, self.c) if value is not None
        ]
        return f"{self.op}({', '.join(operands)})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Instr)
            and self.op == other.op
            and self.a == other.a
            and self.b == other.b
            and self.c == other.c
        )


#: Passive-part opcodes (head matching and guards).
PASSIVE_OPS = frozenset(
    {
        "head_var",  # a=arg register, b=destination register
        "head_val",  # a=arg register, b=register to passively unify with
        "wait_const",  # a=register, b=(tag, value)
        "wait_list",  # a=register (sets the S pointer)
        "wait_struct",  # a=register, b=functor id, c=arity
        "read_var",  # a=destination register (reads heap cell at S)
        "read_val",  # a=register to passively unify with heap cell at S
        "read_const",  # a=(tag, value)
        "guard_cmp",  # a=operator, b=left expr, c=right expr
        "guard_integer",  # a=register
        "guard_wait",  # a=register
        "commit",
    }
)

#: Active-part opcodes (body construction and goal spawning).
BODY_OPS = frozenset(
    {
        "put_atom",  # a=destination register, b=atom id
        "put_int",  # a=destination register, b=value
        "put_var",  # a=destination register (fresh heap variable)
        "put_list",  # a=destination, b=car register, c=cdr register
        "put_struct",  # a=destination, b=functor id, c=tuple of arg registers
        "body_unify",  # a, b = registers to actively unify
        "spawn",  # a=functor id, b=tuple of argument registers
        "proceed",
    }
)


class CompiledClause:
    """A clause's passive and active instruction sequences, plus the
    instruction-area addresses they are laid out at."""

    __slots__ = ("passive", "body", "passive_base", "body_base", "source")

    def __init__(self, passive, body, source: str = ""):
        self.passive: Tuple[Instr, ...] = tuple(passive)
        self.body: Tuple[Instr, ...] = tuple(body)
        self.passive_base = 0
        self.body_base = 0
        self.source = source

    @property
    def n_words(self) -> int:
        return len(self.passive) + len(self.body)

    def listing(self) -> str:
        lines = [f"  ; {self.source}"] if self.source else []
        for offset, instr in enumerate(self.passive):
            lines.append(f"  {self.passive_base + offset:#010x}  {instr}")
        for offset, instr in enumerate(self.body):
            lines.append(f"  {self.body_base + offset:#010x}  {instr}")
        return "\n".join(lines)


class Procedure:
    """All clauses of one ``name/arity`` predicate."""

    __slots__ = ("functor_id", "name", "arity", "clauses")

    def __init__(self, functor_id: int, name: str, arity: int):
        self.functor_id = functor_id
        self.name = name
        self.arity = arity
        self.clauses: list = []

    def __repr__(self) -> str:
        return f"Procedure({self.name}/{self.arity}, {len(self.clauses)} clauses)"
