"""The multi-PE KL1 machine facade.

:class:`KL1Machine` wires together the compiled program, the backing
stores, the per-PE engines, the scheduler, and the
:class:`~repro.machine.port.MemoryPort` that feeds the cache system
and/or a trace buffer.  :meth:`KL1Machine.run` executes a query to
completion, interleaving the PEs one scheduler turn at a time (the
paper's tools synchronize at each bus request; one reduction per turn is
the emulation quantum here, with the cache system serializing bus
timing).

All the ``*_i`` methods are the *instrumented* accessors the engines
use: they touch the backing store and issue the architecturally correct
memory operation — ``DW`` for heap/goal-record creation, ``ER``/``RP``
for dead-record reads, ``RI`` for message reads, ``LR``/``UW``/``U``
around bindings — through the port.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.cluster.network import NetworkStats
from repro.cluster.system import cluster_system
from repro.core.config import MachineConfig, SimulationConfig
from repro.core.replay import invariant_check_interval
from repro.core.stats import SystemStats
from repro.machine import builtins as builtin_module
from repro.machine.compiler import Program, compile_program
from repro.machine.engine import Engine, STATUS_RUNNABLE
from repro.machine.errors import (
    DeadlockError,
    LimitExceededError,
    MachineError,
    ProgramFailure,
)
from repro.machine.parser import parse_goal
from repro.machine.port import MemoryPort
from repro.machine.store import (
    CommArea,
    GOAL_BASE,
    HeapStore,
    RecordArea,
    SUSP_BASE,
    SUSP_STRIDE,
)
from repro.machine.terms import (
    ATOM,
    FUNCTOR,
    HOOK,
    INT,
    LIST,
    REF,
    STR,
    SAtom,
    SInt,
    SList,
    SStruct,
    STerm,
    SVar,
    Word,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op


@dataclass
class MachineResult:
    """Outcome of one :meth:`KL1Machine.run`."""

    #: Query-variable bindings, decoded to Python values.
    answer: Dict[str, object]
    reductions: int
    suspensions: int
    #: Instruction words fetched (the paper's "instr" column).
    instructions: int
    #: Total memory references, instruction + data.
    memory_refs: int
    wall_seconds: float
    #: Heap words allocated across all PEs.
    heap_words: int
    #: Per-PE reduction counts (load-balance visibility).
    pe_reductions: List[int] = field(default_factory=list)
    #: Stop-and-copy collections run (0 unless gc_threshold_words set).
    gc_collections: int = 0
    #: Heap words reclaimed across all collections.
    gc_words_reclaimed: int = 0
    #: Cache statistics of the execution-driven run (None if no cache).
    stats: Optional[SystemStats] = None
    #: Captured reference stream (None if capture was off).
    trace: Optional[TraceBuffer] = None
    #: Merged inter-cluster network counters (None on a one-bus machine).
    network: Optional[NetworkStats] = None

    def __repr__(self) -> str:
        return (
            f"MachineResult(reductions={self.reductions}, "
            f"suspensions={self.suspensions}, refs={self.memory_refs}, "
            f"answer={self.answer})"
        )


class KL1Machine:
    """A parallel KL1 abstract machine over a PIM cache system."""

    def __init__(
        self,
        program: Union[str, Program],
        config: MachineConfig = MachineConfig(),
        sim_config: Optional[SimulationConfig] = SimulationConfig(),
    ):
        """Build a machine for *program* (FGHC source or a compiled
        :class:`~repro.machine.compiler.Program`).

        ``sim_config`` of None runs without a cache (pure emulation /
        trace capture); otherwise the machine drives a
        :class:`~repro.core.system.PIMCacheSystem` execution-driven.
        """
        self.config = config
        self.n_pes = config.n_pes
        if isinstance(program, str):
            program = compile_program(program, max_goal_args=config.max_goal_args)
        self.program = program
        self.symbols = program.symbols
        # K > 1 in sim_config.cluster substitutes the hierarchical
        # system (per-cluster buses + inter-cluster network) for the
        # flat single-bus model; the facade exposes the same surface.
        self.system = cluster_system(sim_config, config.n_pes)
        self.n_clusters = (
            sim_config.cluster.n_clusters if sim_config is not None else 1
        )
        self.trace = TraceBuffer(config.n_pes) if config.capture_trace else None
        self.port = MemoryPort(
            self.system,
            self.trace,
            conflict_rate=config.lock_conflict_rate,
            seed=config.seed,
        )
        self.heap = HeapStore(config.n_pes)
        self.goal_area = RecordArea(GOAL_BASE, config.n_pes, config.goal_record_words)
        self.susp_area = RecordArea(SUSP_BASE, config.n_pes, SUSP_STRIDE)
        self.comm = CommArea(config.n_pes)
        self.builtin_handlers = dict(builtin_module.HANDLERS)
        registers = max(program.max_registers, config.max_goal_args) + 4
        self.engines = [Engine(self, pe, registers) for pe in range(config.n_pes)]
        # Global goal accounting (meta-counts; register-mapped, uncounted).
        self.runnable = 0
        self.floating = 0
        self.in_flight = 0
        self.total_reductions = 0
        self.total_suspensions = 0
        # Garbage collection (excluded from measurement, per the paper).
        self.query_roots: Dict[str, int] = {}
        self.gc_collections = 0
        self.gc_words_reclaimed = 0

    # ------------------------------------------------------------------
    # Instrumented access helpers (see module docstring)
    # ------------------------------------------------------------------

    def fetch(self, pe: int, address: int) -> None:
        """One instruction fetch."""
        self.port.issue(pe, Op.R, Area.INSTRUCTION, address)

    # -- heap ---------------------------------------------------------

    def heap_read_i(self, pe: int, address: int) -> Word:
        self.port.issue(pe, Op.R, Area.HEAP, address)
        return self.heap.read(address)

    def heap_alloc_i(self, pe: int, word: Word) -> int:
        """Push *word* on PE's heap top (a direct write)."""
        address = self.heap.allocate(pe, word[0], word[1])
        self.port.issue(pe, Op.DW, Area.HEAP, address)
        return address

    def heap_alloc_unbound_i(self, pe: int) -> int:
        address = self.heap.allocate_unbound(pe)
        self.port.issue(pe, Op.DW, Area.HEAP, address)
        return address

    def heap_lock_read_i(self, pe: int, address: int, flags: int) -> Word:
        self.port.issue(pe, Op.LR, Area.HEAP, address, flags)
        return self.heap.read(address)

    def heap_unlock_write_i(self, pe: int, address: int, word: Word, flags: int) -> None:
        self.heap.write(address, word[0], word[1])
        self.port.issue(pe, Op.UW, Area.HEAP, address, flags)

    def heap_unlock_i(self, pe: int, address: int, flags: int) -> None:
        self.port.issue(pe, Op.U, Area.HEAP, address, flags)

    # -- goal area ------------------------------------------------------

    def goal_write_i(self, pe: int, address: int, value: object) -> None:
        """Record-creation write (direct write; the controller demotes
        non-boundary words to plain writes)."""
        self.goal_area.write(address, value)
        self.port.issue(pe, Op.DW, Area.GOAL, address)

    def read_goal_record(self, pe: int, record: int) -> List[object]:
        """Read a dequeued record's words: ER for all but the last used
        word, RP for the last — the record is dead after this."""
        arity = self.goal_area.read(record + 2)
        used = 3 + arity
        words = []
        for index in range(used):
            op = Op.RP if index == used - 1 else Op.ER
            self.port.issue(pe, op, Area.GOAL, record + index)
            words.append(self.goal_area.read(record + index))
        return words

    def goal_read_word_i(self, pe: int, address: int) -> object:
        """Plain read of one goal-record word (link-chain walking)."""
        self.port.issue(pe, Op.R, Area.GOAL, address)
        return self.goal_area.read(address)

    def goal_relink_i(self, pe: int, address: int, value: object) -> None:
        """Rewrite a live record's link word (chaining stolen goals)."""
        self.goal_area.write(address, value)
        self.port.issue(pe, Op.W, Area.GOAL, address)

    def goal_lock_read_i(self, pe: int, address: int, flags: int) -> object:
        self.port.issue(pe, Op.LR, Area.GOAL, address, flags)
        return self.goal_area.read(address)

    def goal_unlock_write_i(self, pe: int, address: int, value: object, flags: int) -> None:
        self.goal_area.write(address, value)
        self.port.issue(pe, Op.UW, Area.GOAL, address, flags)

    def goal_unlock_i(self, pe: int, address: int, flags: int) -> None:
        self.port.issue(pe, Op.U, Area.GOAL, address, flags)

    # -- suspension area -------------------------------------------------

    def susp_read_i(self, pe: int, address: int) -> object:
        self.port.issue(pe, Op.R, Area.SUSPENSION, address)
        return self.susp_area.read(address)

    def susp_write_i(self, pe: int, address: int, value: object) -> None:
        self.susp_area.write(address, value)
        self.port.issue(pe, Op.W, Area.SUSPENSION, address)

    # -- communication area -----------------------------------------------

    def comm_read_i(self, pe: int, address: int, invalidate: bool) -> object:
        """Read a mailbox word — with RI when the word will be rewritten
        right after (message consumption), plain R for flag polling."""
        self.port.issue(pe, Op.RI if invalidate else Op.R, Area.COMMUNICATION, address)
        return self.comm.read(address)

    def comm_write_i(self, pe: int, address: int, value: object) -> None:
        self.comm.write(address, value)
        self.port.issue(pe, Op.W, Area.COMMUNICATION, address)

    def comm_lock_read_i(self, pe: int, address: int, flags: int) -> object:
        self.port.issue(pe, Op.LR, Area.COMMUNICATION, address, flags)
        return self.comm.read(address)

    def comm_unlock_write_i(self, pe: int, address: int, value: object, flags: int) -> None:
        self.comm.write(address, value)
        self.port.issue(pe, Op.UW, Area.COMMUNICATION, address, flags)

    def comm_unlock_i(self, pe: int, address: int, flags: int) -> None:
        self.port.issue(pe, Op.U, Area.COMMUNICATION, address, flags)

    # ------------------------------------------------------------------
    # Goal creation and query setup
    # ------------------------------------------------------------------

    def create_goal(self, pe: int, functor_id: int, args) -> int:
        """Write a runnable goal record; the caller links it to a list."""
        record = self.goal_area.allocate(pe)
        self.goal_write_i(pe, record, STATUS_RUNNABLE)
        self.goal_write_i(pe, record + 1, functor_id)
        self.goal_write_i(pe, record + 2, len(args))
        for index, word in enumerate(args):
            self.goal_write_i(pe, record + 3 + index, word)
        return record

    def build_term(self, pe: int, term: STerm, variables: Dict[str, int]) -> Word:
        """Construct a source term on PE's heap (for query arguments)."""
        if isinstance(term, SVar):
            if term.name != "_" and term.name in variables:
                return (REF, variables[term.name])
            address = self.heap_alloc_unbound_i(pe)
            if term.name != "_":
                variables[term.name] = address
            return (REF, address)
        if isinstance(term, SInt):
            return (INT, term.value)
        if isinstance(term, SAtom):
            return (ATOM, self.symbols.atom(term.name))
        if isinstance(term, SList):
            head = self.build_term(pe, term.head, variables)
            tail = self.build_term(pe, term.tail, variables)
            address = self.heap_alloc_i(pe, head)
            self.heap_alloc_i(pe, tail)
            return (LIST, address)
        if isinstance(term, SStruct):
            words = [self.build_term(pe, arg, variables) for arg in term.args]
            functor_id = self.symbols.functor(term.name, term.arity)
            address = self.heap_alloc_i(pe, (FUNCTOR, functor_id))
            for word in words:
                self.heap_alloc_i(pe, word)
            return (STR, address)
        raise MachineError(f"cannot build query term {term}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, query: str, max_reductions: Optional[int] = None) -> MachineResult:
        """Reduce *query* (e.g. ``"main(12, Result)"``) to completion."""
        goal = parse_goal(query)
        functor_id = self.symbols.functor(goal.name, len(goal.args))
        if (
            functor_id not in self.program.procedures
            and functor_id not in self.program.builtins
        ):
            raise ProgramFailure(
                f"query names undefined procedure {goal.name}/{len(goal.args)}"
            )
        self.query_roots = {}
        args = tuple(self.build_term(0, arg, self.query_roots) for arg in goal.args)
        record = self.create_goal(0, functor_id, args)
        self.engines[0].goal_list.append(record)
        self.runnable += 1

        cap = max_reductions if max_reductions is not None else self.config.max_reductions
        gc_threshold = self.config.gc_threshold_words
        engines = self.engines
        n_pes = self.n_pes
        sweep = 0
        # REPRO_CHECK_INVARIANTS debug mode: verify the coherence
        # invariants every N scheduler sweeps (off by default; see
        # docs/OBSERVABILITY.md).
        check_every = (
            invariant_check_interval() if self.system is not None else None
        )
        started = time.perf_counter()
        while True:
            if self.runnable == 0 and self.in_flight == 0:
                if self.floating == 0:
                    break
                raise DeadlockError(
                    f"{self.floating} goal(s) suspended forever; "
                    "the program is waiting on variables nobody will bind"
                )
            offset = sweep % n_pes
            for position in range(n_pes):
                engines[(position + offset) % n_pes].step()
            sweep += 1
            if check_every and sweep % check_every == 0:
                self.system.check_invariants()
            if self.total_reductions > cap:
                raise LimitExceededError(
                    f"exceeded {cap} reductions; raise max_reductions if intended"
                )
            if gc_threshold is not None and any(
                self.heap.top(pe) > gc_threshold for pe in range(n_pes)
            ):
                self.collect()
        wall = time.perf_counter() - started

        answer = {
            name: self.decode((REF, address))
            for name, address in self.query_roots.items()
        }
        return MachineResult(
            answer=answer,
            reductions=self.total_reductions,
            suspensions=self.total_suspensions,
            instructions=self.port.instruction_refs,
            memory_refs=self.port.total_refs,
            wall_seconds=wall,
            heap_words=self.heap.total_words(),
            pe_reductions=[engine.reductions for engine in engines],
            gc_collections=self.gc_collections,
            gc_words_reclaimed=self.gc_words_reclaimed,
            stats=self.system.stats if self.system is not None else None,
            trace=self.trace,
            network=(
                NetworkStats.merged(
                    [network.stats for network in self.system.networks]
                )
                if getattr(self.system, "networks", None)
                else None
            ),
        )

    def collect(self):
        """Run one stop-and-copy garbage collection (see
        :mod:`repro.machine.gc`)."""
        from repro.machine import gc as gc_module

        return gc_module.collect(self)

    # ------------------------------------------------------------------
    # Decoding (uninstrumented; for answers, tests and error messages)
    # ------------------------------------------------------------------

    def decode(self, word: Word):
        """Decode a tagged word to a Python value: ints, atom strings,
        lists, ``(functor, args...)`` tuples; unbound variables decode to
        ``"_G<address>"`` strings."""
        tag, value = self._peek(word)
        if tag == REF:
            return f"_G{value:x}"
        if tag == INT:
            return value
        if tag == ATOM:
            return self.symbols.atom_name(value)
        if tag == LIST:
            items = []
            while tag == LIST:
                items.append(self.decode(self.heap.read(value)))
                tag, value = self._peek(self.heap.read(value + 1))
            if tag == ATOM and self.symbols.atom_name(value) == "[]":
                return items
            return (items, self.decode((tag, value)))  # improper list
        if tag == STR:
            _, functor_id = self.heap.read(value)
            name, arity = self.symbols.functor_name(functor_id)
            return tuple(
                [name]
                + [self.decode(self.heap.read(value + 1 + i)) for i in range(arity)]
            )
        raise MachineError(f"cannot decode word {(tag, value)}")  # pragma: no cover

    def _peek(self, word: Word) -> Word:
        """Uninstrumented dereference."""
        tag, value = word
        while tag == REF:
            cell_tag, cell_value = self.heap.read(value)
            if cell_tag == REF:
                if cell_value == value:
                    return (REF, value)
                value = cell_value
            elif cell_tag == HOOK:
                return (REF, value)
            else:
                return (cell_tag, cell_value)
        return (tag, value)

    def format_word(self, word: Word) -> str:
        """Render a tagged word for error messages."""
        decoded = self.decode(word)
        return repr(decoded)

    def __repr__(self) -> str:
        return (
            f"KL1Machine(n_pes={self.n_pes}, "
            f"procedures={len(self.program.procedures)}, "
            f"reductions={self.total_reductions})"
        )
