"""FGHC source parser.

The grammar is the committed-choice subset the paper's benchmarks need::

    program  ::= clause*
    clause   ::= head ( ":-" conj )? "."
    head     ::= atom | atom "(" term ("," term)* ")"
    conj     ::= goals ( "|" goals )?        -- guards | body
    goals    ::= goal ("," goal)*
    goal     ::= comparison | assignment | unification | call | atom
    term     ::= var | int | atom | list | struct | "(" expr ")" | expr

Guard goals are built-in tests only (``<``, ``=<``, ``>``, ``>=``,
``=:=``, ``=\\=``, ``==``, ``\\==``, ``integer/1``, ``wait/1``,
``otherwise``, ``true``); body goals are user calls, ``=`` unification,
and ``:=`` arithmetic assignment.  Arithmetic expressions support
``+ - * / mod`` with the usual precedence and parenthesization, plus
unary minus.  ``%`` starts a comment running to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.machine.errors import FGHCSyntaxError
from repro.machine.terms import (
    NIL,
    Clause,
    SAtom,
    SInt,
    SList,
    SStruct,
    STerm,
    SVar,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<int>\d+)
  | (?P<var>[A-Z_][A-Za-z0-9_]*)
  | (?P<atom>[a-z][A-Za-z0-9_]*)
  | (?P<punct>:=|:-|=<|>=|=:=|=\\=|==|\\==|\|\||[()\[\],.|<>=+\-*/])
    """,
    re.VERBOSE,
)

#: Binary comparison operators legal in guards.
COMPARISON_OPS = ("<", "=<", ">", ">=", "=:=", "=\\=", "==", "\\==")

#: Arithmetic operators, by precedence level (loosest first).
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/", "mod")


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise FGHCSyntaxError(
                f"unexpected character {source[position]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            tokens.append(_Token(kind, text, line, position - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.position = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise FGHCSyntaxError("unexpected end of input")
        self.position += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise FGHCSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _at(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.text == text

    # -- grammar --------------------------------------------------------

    def program(self) -> List[Clause]:
        clauses = []
        while self._peek() is not None:
            clauses.append(self.clause())
        return clauses

    def clause(self) -> Clause:
        head = self.term()
        if isinstance(head, SAtom):
            head = SStruct(head.name, ())
        if not isinstance(head, SStruct):
            token = self._peek()
            raise FGHCSyntaxError(
                f"clause head must be a predicate, found {head}",
                token.line if token else 0,
                token.column if token else 0,
            )
        guards: Tuple[STerm, ...] = ()
        body: Tuple[STerm, ...] = ()
        if self._at(":-"):
            self._next()
            first = self.goals()
            if self._at("|"):
                self._next()
                guards = tuple(first)
                body = tuple(self.goals())
            else:
                body = tuple(first)
        self._expect(".")
        guards = tuple(g for g in guards if not _is_true(g))
        body = tuple(b for b in body if not _is_true(b))
        return Clause(head, guards, body)

    def goals(self) -> List[STerm]:
        items = [self.goal()]
        while self._at(","):
            self._next()
            items.append(self.goal())
        return items

    def goal(self) -> STerm:
        left = self.expr()
        token = self._peek()
        if token is not None and (
            token.text in COMPARISON_OPS or token.text in ("=", ":=")
        ):
            op = self._next().text
            right = self.expr()
            return SStruct(op, (left, right))
        return left

    def expr(self) -> STerm:
        """Additive-precedence expression."""
        left = self.mul_expr()
        while True:
            token = self._peek()
            if token is None or token.text not in _ADD_OPS:
                return left
            op = self._next().text
            right = self.mul_expr()
            left = SStruct(op, (left, right))

    def mul_expr(self) -> STerm:
        left = self.unary_expr()
        while True:
            token = self._peek()
            if token is None or token.text not in _MUL_OPS:
                return left
            # ``mod`` is an atom token; only treat it as an operator when
            # something follows that can start an operand.
            op = self._next().text
            right = self.unary_expr()
            left = SStruct(op, (left, right))

    def unary_expr(self) -> STerm:
        if self._at("-"):
            self._next()
            operand = self.unary_expr()
            if isinstance(operand, SInt):
                return SInt(-operand.value)
            return SStruct("-", (SInt(0), operand))
        return self.primary()

    def primary(self) -> STerm:
        token = self._next()
        if token.kind == "int":
            return SInt(int(token.text))
        if token.kind == "var":
            return SVar(token.text)
        if token.kind == "atom":
            if token.text == "mod":
                raise FGHCSyntaxError(
                    "'mod' is an operator, not an atom", token.line, token.column
                )
            if self._at("("):
                self._next()
                args = [self.term()]
                while self._at(","):
                    self._next()
                    args.append(self.term())
                self._expect(")")
                return SStruct(token.text, tuple(args))
            return SAtom(token.text)
        if token.text == "(":
            inner = self.expr()
            self._expect(")")
            return inner
        if token.text == "[":
            return self.list_tail()
        raise FGHCSyntaxError(
            f"unexpected token {token.text!r}", token.line, token.column
        )

    def term(self) -> STerm:
        """A term in argument position — arithmetic operators allowed so
        benchmarks can write e.g. ``p(N - 1, X)`` via explicit structs."""
        return self.expr()

    def list_tail(self) -> STerm:
        if self._at("]"):
            self._next()
            return NIL
        items = [self.term()]
        while self._at(","):
            self._next()
            items.append(self.term())
        tail: STerm = NIL
        if self._at("|"):
            self._next()
            tail = self.term()
        self._expect("]")
        result = tail
        for item in reversed(items):
            result = SList(item, result)
        return result


def _is_true(goal: STerm) -> bool:
    return isinstance(goal, SAtom) and goal.name == "true"


def parse_program(source: str) -> List[Clause]:
    """Parse FGHC *source* text into a list of clauses."""
    return _Parser(source).program()


def parse_goal(source: str) -> STerm:
    """Parse a single goal (for queries), e.g. ``"main(12, R)"``."""
    parser = _Parser(source if source.rstrip().endswith(".") else source + " .")
    goal = parser.goal()
    parser._expect(".")
    if parser._peek() is not None:
        token = parser._peek()
        raise FGHCSyntaxError(
            f"trailing input after goal: {token.text!r}", token.line, token.column
        )
    if isinstance(goal, SAtom):
        goal = SStruct(goal.name, ())
    return goal
