"""The memory port: where the machine meets the cache.

Every reference the abstract machine makes to the five storage areas
passes through :meth:`MemoryPort.issue`, which (a) drives the cache
system live when one is attached (execution-driven mode, the paper's
setup) and (b) appends to a :class:`~repro.trace.buffer.TraceBuffer`
when one is attached, so the identical stream can later be replayed
against other cache geometries.

Lock-conflict injection
-----------------------

The emulator interleaves PEs at reduction granularity, and KL1 lock
windows (LR ... UW) never span a reduction, so genuine directory
conflicts cannot arise during emulation — yet the paper measures a
small, nonzero conflict rate (0.1-2.4 % of unlocks find a waiter,
Table 5).  :meth:`MemoryPort.roll_conflict` injects that tail
stochastically: a lock on *shared* data (data in another PE's segment,
or hooked variables) is marked contended with probability
``conflict_rate``, and the flag makes the cache system re-enact the LH
response and UL broadcast.  EXPERIMENTS.md documents this substitution.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import FLAG_LOCK_CONTENDED


class MemoryPort:
    """Instrumentation funnel for the abstract machine's memory traffic."""

    __slots__ = (
        "system",
        "trace",
        "conflict_rate",
        "_rng",
        "total_refs",
        "instruction_refs",
    )

    def __init__(
        self,
        system: Optional[PIMCacheSystem] = None,
        trace: Optional[TraceBuffer] = None,
        conflict_rate: float = 0.0,
        seed: int = 0,
    ):
        self.system = system
        self.trace = trace
        self.conflict_rate = conflict_rate
        self._rng = random.Random(seed)
        self.total_refs = 0
        self.instruction_refs = 0

    def issue(self, pe: int, op: int, area: int, address: int, flags: int = 0) -> None:
        """Issue one memory reference."""
        self.total_refs += 1
        if area == 0:  # Area.INSTRUCTION
            self.instruction_refs += 1
        system = self.system
        if system is not None:
            cycles, out_flags, _ = system.access(pe, op, area, address, 0, flags)
            if cycles == BLOCKED:  # pragma: no cover - see module docstring
                raise RuntimeError(
                    f"PE{pe} blocked on a lock during emulation; reduction-"
                    "granularity interleaving should make this impossible"
                )
            flags |= out_flags
        if self.trace is not None:
            self.trace.append(pe, op, area, address, flags)

    def roll_conflict(self, shared: bool) -> int:
        """Flags for a lock pair: contended with ``conflict_rate``
        probability when the datum is *shared*."""
        if shared and self.conflict_rate > 0.0:
            if self._rng.random() < self.conflict_rate:
                return FLAG_LOCK_CONTENDED
        return 0
