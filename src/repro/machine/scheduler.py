"""The on-demand (work-stealing) scheduler over the communication area.

The paper's KL1 system balances load by letting *idle* PEs request a
goal from busy PEs through the shared communication area (Section 2.2);
messages are two words, written once and read once, and requests are
posted under the hardware lock because several idle PEs may race for the
same victim.

Protocol, per PE mailbox (a request-flag word and a two-word reply slot):

* requester (idle): ``LR`` the victim's flag; if clear, ``UW`` its own
  id into it and await; else ``U`` and try the next victim next turn.
* victim (every turn): plain-read its own flag — a cache hit in S until
  a requester's locked write invalidates it.  On a request: detach the
  *tail* goal of its list if it has a spare, write the two reply words
  into the requester's slot, clear the flag.
* requester: poll its reply slot with ``RI`` — the slot will be
  rewritten (cleared) right after reading, so fetching it exclusively
  avoids a later invalidate.  A received goal-record address is linked
  into the requester's goal list; the record's *contents* transfer
  cache-to-cache, supplier-invalidated, when the requester dequeues it
  with ``ER`` — exactly the scenario the exclusive-read command exists
  for.
"""

from __future__ import annotations

#: Reply-slot payload markers.  Goal-record addresses are never 0.
EMPTY = 0
NO_GOAL = -1

#: Most goals handed over per work request (chained via link words).
MAX_STEAL_BATCH = 8


def poll_requests(engine) -> None:
    """Serve one pending work request, and keep the advertised-load
    hint current (runs every turn)."""
    machine = engine.machine
    if machine.n_pes == 1:
        return  # nobody to request work
    pe = engine.pe
    # Load-table hint: advertise when there are stealable goals, retract
    # when drained.  Idle PEs poll the hint (cheap, cacheable) before
    # paying for a locked request.
    pending = len(engine.goal_list)
    if pending >= 2 and not engine.advertising:
        machine.comm_write_i(pe, machine.comm.load_address(pe), 1)
        engine.advertising = True
    elif pending <= 1 and engine.advertising:
        machine.comm_write_i(pe, machine.comm.load_address(pe), 0)
        engine.advertising = False
    flag_address = machine.comm.flag_address(pe)
    value = machine.comm_read_i(pe, flag_address, invalidate=False)
    if value == 0:
        return
    requester = value - 1
    pending = len(engine.goal_list)
    if pending >= 2:
        # Batch steal: hand over up to half the list (the oldest goals,
        # usually the largest subtrees), chained through the records'
        # link words — the linked-list representation of Section 2.2.
        count = min(pending // 2, MAX_STEAL_BATCH)
        goals = [engine.goal_list.pop() for _ in range(count)]
        machine.runnable -= count
        machine.in_flight += count
        for index, goal in enumerate(goals):
            next_goal = goals[index + 1] if index + 1 < count else 0
            machine.goal_relink_i(pe, goal, next_goal)
        payload = goals[0]
    else:
        payload = NO_GOAL
    reply = machine.comm.reply_address(requester)
    machine.comm_write_i(pe, reply + 1, pe)
    machine.comm_write_i(pe, reply, payload)
    machine.comm_write_i(pe, flag_address, 0)


def idle_step(engine) -> None:
    """One turn of the idle protocol: poll for a reply or post a request."""
    machine = engine.machine
    pe = engine.pe
    if machine.n_pes == 1:
        return
    if engine.awaiting is not None:
        reply = machine.comm.reply_address(pe)
        payload = machine.comm_read_i(pe, reply, invalidate=True)
        if payload == EMPTY:
            return
        machine.comm_read_i(pe, reply + 1, invalidate=True)  # sender id
        machine.comm_write_i(pe, reply, EMPTY)
        engine.awaiting = None
        if payload == NO_GOAL:
            # Nothing to steal there: back off (exponentially, capped)
            # before bothering the next victim, as the real scheduler's
            # idle loop does.
            engine._backoff_step = min(engine._backoff_step + 1, 6)
            engine.idle_backoff = (1 << engine._backoff_step) - 1
            return
        # Walk the link-word chain of the stolen batch.
        goal = payload
        while goal:
            next_goal = machine.goal_read_word_i(pe, goal)
            engine.goal_list.append(goal)
            machine.in_flight -= 1
            machine.runnable += 1
            goal = next_goal
        engine._backoff_step = 0
        return
    if engine.idle_backoff > 0:
        engine.idle_backoff -= 1
        return
    victim = engine.next_victim()
    # Consult the victim's advertised load before paying for a locked
    # request; the hint is a cache hit in S unless it recently changed.
    load = machine.comm_read_i(pe, machine.comm.load_address(victim), invalidate=False)
    if not load:
        return  # try the next victim next turn
    flag_address = machine.comm.flag_address(victim)
    flags = machine.port.roll_conflict(True)
    value = machine.comm_lock_read_i(pe, flag_address, flags)
    if value == 0:
        machine.comm_unlock_write_i(pe, flag_address, pe + 1, flags)
        engine.awaiting = victim
    else:
        # Another idle PE beat us to this victim; release and move on.
        machine.comm_unlock_i(pe, flag_address, flags)
