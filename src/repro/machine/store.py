"""Backing stores for the five storage areas, with address arithmetic.

Addresses are words in a single flat space: bits 28+ select the area
(see :mod:`repro.trace.events`), bits 24-27 select the owning PE's
segment, bits 0-23 the offset.  The stores here hold the *contents*
(Python objects); all instrumentation — which operation touches the
cache and appears in the trace — is issued by the engine through
:class:`repro.machine.port.MemoryPort`, keeping policy (R vs ER vs DW)
visible in one place, next to the architecture logic that decides it.

Management disciplines follow Section 2.2: the heap grows from the top
and is never reused during measurement; the goal, suspension and
communication areas are free-list managed.  Free-list head pointers are
processor registers (not counted as memory references).
"""

from __future__ import annotations

from typing import List

from repro.machine.errors import HeapOverflowError
from repro.machine.terms import REF, Word
from repro.trace.events import AREA_BASE, Area

#: Bits of offset within one PE's segment of an area.
SEGMENT_SHIFT = 24
SEGMENT_MASK = (1 << SEGMENT_SHIFT) - 1

HEAP_BASE = AREA_BASE[Area.HEAP]
GOAL_BASE = AREA_BASE[Area.GOAL]
SUSP_BASE = AREA_BASE[Area.SUSPENSION]
COMM_BASE = AREA_BASE[Area.COMMUNICATION]
INSTR_BASE = AREA_BASE[Area.INSTRUCTION]

#: Suspension records are packed at this stride (3 words used).
SUSP_STRIDE = 4

#: Offsets within a PE's communication mailbox.
COMM_FLAG_OFFSET = 0  #: request flag word (locked by requesters)
COMM_LOAD_OFFSET = 4  #: advertised-load hint word (read by idle PEs)
COMM_REPLY_OFFSET = 8  #: two-word reply message slot


def segment_base(area_base: int, pe: int) -> int:
    return area_base | (pe << SEGMENT_SHIFT)


def owner_of(address: int) -> int:
    """The PE whose segment contains *address*."""
    return (address >> SEGMENT_SHIFT) & 0xF


class HeapStore:
    """Tagged-cell heap, one top-allocated segment per PE."""

    __slots__ = ("cells", "limit")

    def __init__(self, n_pes: int, limit: int = SEGMENT_MASK):
        self.cells: List[List[Word]] = [[] for _ in range(n_pes)]
        self.limit = limit

    def allocate(self, pe: int, tag: int, value: int) -> int:
        """Push one cell on PE's heap top; returns its address."""
        segment = self.cells[pe]
        index = len(segment)
        if index >= self.limit:
            raise HeapOverflowError(
                f"PE{pe} heap segment full ({index} cells); "
                "use a larger scale preset or raise the segment limit"
            )
        segment.append((tag, value))
        return HEAP_BASE | (pe << SEGMENT_SHIFT) | index

    def allocate_unbound(self, pe: int) -> int:
        """Push a fresh unbound variable (a REF to itself)."""
        segment = self.cells[pe]
        index = len(segment)
        if index >= self.limit:
            raise HeapOverflowError(f"PE{pe} heap segment full ({index} cells)")
        address = HEAP_BASE | (pe << SEGMENT_SHIFT) | index
        segment.append((REF, address))
        return address

    def read(self, address: int) -> Word:
        return self.cells[(address >> SEGMENT_SHIFT) & 0xF][address & SEGMENT_MASK]

    def write(self, address: int, tag: int, value: int) -> None:
        self.cells[(address >> SEGMENT_SHIFT) & 0xF][address & SEGMENT_MASK] = (
            tag,
            value,
        )

    def top(self, pe: int) -> int:
        """Words allocated in PE's segment so far."""
        return len(self.cells[pe])

    def total_words(self) -> int:
        return sum(len(segment) for segment in self.cells)


class RecordArea:
    """A free-list-managed area of fixed-stride records (goal and
    suspension areas).  Record words hold arbitrary Python objects
    (tagged words, ints)."""

    __slots__ = ("base", "stride", "words", "free", "high_water")

    def __init__(self, area_base: int, n_pes: int, stride: int):
        self.base = area_base
        self.stride = stride
        self.words: List[List[object]] = [[] for _ in range(n_pes)]
        #: Per-PE free list of record base addresses (a register-mapped
        #: stack; its pushes/pops are not memory references).
        self.free: List[List[int]] = [[] for _ in range(n_pes)]
        self.high_water = [0] * n_pes

    def allocate(self, pe: int) -> int:
        """Take a record from PE's free list, extending the area if empty."""
        free = self.free[pe]
        if free:
            return free.pop()
        words = self.words[pe]
        index = len(words)
        words.extend([0] * self.stride)
        self.high_water[pe] = len(words)
        return self.base | (pe << SEGMENT_SHIFT) | index

    def release(self, address: int) -> None:
        """Return a record to its owning segment's free list."""
        self.free[(address >> SEGMENT_SHIFT) & 0xF].append(address)

    def read(self, address: int) -> object:
        return self.words[(address >> SEGMENT_SHIFT) & 0xF][address & SEGMENT_MASK]

    def write(self, address: int, value: object) -> None:
        self.words[(address >> SEGMENT_SHIFT) & 0xF][address & SEGMENT_MASK] = value


class CommArea:
    """Per-PE mailboxes: a request-flag word, an advertised-load hint
    word, and a two-word reply slot.

    The flag is written by requesters under lock (several idle PEs may
    race for the same victim); the load hint is written by its owner and
    polled by idle PEs (a cache hit in S until it changes); the reply
    slot is written once by the victim and read once — with RI — by the
    requester.  Flag, hint and reply sit in different four-word blocks
    to avoid false sharing at the base block size.
    """

    __slots__ = ("words",)

    #: Words reserved per mailbox (flag at +0, load at +4, reply at +8).
    MAILBOX_WORDS = 16

    def __init__(self, n_pes: int):
        self.words: List[List[object]] = [
            [0] * self.MAILBOX_WORDS for _ in range(n_pes)
        ]

    def flag_address(self, pe: int) -> int:
        return COMM_BASE | (pe << SEGMENT_SHIFT) | COMM_FLAG_OFFSET

    def load_address(self, pe: int) -> int:
        return COMM_BASE | (pe << SEGMENT_SHIFT) | COMM_LOAD_OFFSET

    def reply_address(self, pe: int) -> int:
        return COMM_BASE | (pe << SEGMENT_SHIFT) | COMM_REPLY_OFFSET

    def read(self, address: int) -> object:
        return self.words[(address >> SEGMENT_SHIFT) & 0xF][address & SEGMENT_MASK]

    def write(self, address: int, value: object) -> None:
        self.words[(address >> SEGMENT_SHIFT) & 0xF][address & SEGMENT_MASK] = value
