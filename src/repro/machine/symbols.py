"""Interning of atoms and functors.

Runtime words carry integer ids; this table maps them back to names for
decoding answers and debugging.  Procedure names are functor ids, so the
table also serves as the procedure namespace.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class SymbolTable:
    """Bidirectional atom and functor interning."""

    def __init__(self) -> None:
        self._atom_ids: Dict[str, int] = {}
        self._atom_names: List[str] = []
        self._functor_ids: Dict[Tuple[str, int], int] = {}
        self._functors: List[Tuple[str, int]] = []

    def atom(self, name: str) -> int:
        """Intern *name*, returning its atom id."""
        atom_id = self._atom_ids.get(name)
        if atom_id is None:
            atom_id = len(self._atom_names)
            self._atom_ids[name] = atom_id
            self._atom_names.append(name)
        return atom_id

    def atom_name(self, atom_id: int) -> str:
        return self._atom_names[atom_id]

    def functor(self, name: str, arity: int) -> int:
        """Intern ``name/arity``, returning its functor id."""
        key = (name, arity)
        functor_id = self._functor_ids.get(key)
        if functor_id is None:
            functor_id = len(self._functors)
            self._functor_ids[key] = functor_id
            self._functors.append(key)
        return functor_id

    def functor_name(self, functor_id: int) -> Tuple[str, int]:
        return self._functors[functor_id]

    def functor_str(self, functor_id: int) -> str:
        name, arity = self._functors[functor_id]
        return f"{name}/{arity}"

    def __repr__(self) -> str:
        return (
            f"SymbolTable({len(self._atom_names)} atoms, "
            f"{len(self._functors)} functors)"
        )
