"""Term representations.

Two levels exist:

* **Source terms** (``SVar``, ``SAtom``, ``SInt``, ``SList``, ``SStruct``)
  — the parse tree produced by :mod:`repro.machine.parser` and consumed
  by the compiler.  These never exist at run time.
* **Runtime tagged words** — a ``(tag, value)`` pair, the contents of
  one heap/goal-area word and of an engine register.  ``REF`` points at
  a heap cell (an unbound variable is a ``REF`` to itself), ``HOOK``
  points at a suspension-record chain, ``LIST``/``STR`` point at heap
  cells, ``ATOM``/``INT`` are immediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

# ----------------------------------------------------------------------
# Runtime tags
# ----------------------------------------------------------------------

REF = 0  #: pointer to a heap cell; self-pointing = unbound variable
ATOM = 1  #: immediate interned atom id
INT = 2  #: immediate integer
LIST = 3  #: pointer to a two-cell cons (car at addr, cdr at addr+1)
STR = 4  #: pointer to a functor cell followed by the arguments
FUNCTOR = 5  #: functor id, only ever stored at a structure's first cell
HOOK = 6  #: unbound variable with waiters; value = suspension-record addr

TAG_NAMES = ("REF", "ATOM", "INT", "LIST", "STR", "FUNCTOR", "HOOK")

#: A runtime tagged word.
Word = Tuple[int, int]


def is_unbound(tag: int, value: int, address: int) -> bool:
    """Whether the cell at *address* containing ``(tag, value)`` is an
    unbound variable (with or without suspended waiters)."""
    return (tag == REF and value == address) or tag == HOOK


# ----------------------------------------------------------------------
# Source (parse-tree) terms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SVar:
    """A source variable.  ``_`` is anonymous: every occurrence is fresh."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SAtom:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SInt:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SList:
    """A cons cell ``[Head | Tail]``."""

    head: "STerm"
    tail: "STerm"

    def __str__(self) -> str:
        items = []
        node: STerm = self
        while isinstance(node, SList):
            items.append(str(node.head))
            node = node.tail
        if isinstance(node, SAtom) and node.name == "[]":
            return "[" + ", ".join(items) + "]"
        return "[" + ", ".join(items) + " | " + str(node) + "]"


@dataclass(frozen=True)
class SStruct:
    name: str
    args: Tuple["STerm", ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


STerm = Union[SVar, SAtom, SInt, SList, SStruct]

NIL = SAtom("[]")


def slist(*items: STerm, tail: STerm = NIL) -> STerm:
    """Build a source list from *items* (convenience for tests)."""
    result = tail
    for item in reversed(items):
        result = SList(item, result)
    return result


def source_vars(term: STerm, acc=None):
    """All variable names occurring in *term*, in first-occurrence order."""
    if acc is None:
        acc = []
    if isinstance(term, SVar):
        if term.name != "_" and term.name not in acc:
            acc.append(term.name)
    elif isinstance(term, SList):
        source_vars(term.head, acc)
        source_vars(term.tail, acc)
    elif isinstance(term, SStruct):
        for arg in term.args:
            source_vars(arg, acc)
    return acc


@dataclass(frozen=True)
class Clause:
    """One FGHC clause: ``head :- guards | body``.

    ``guards`` contains only builtin test terms (the passive part);
    ``body`` contains user goals, unifications and builtin goals (the
    active part).
    """

    head: SStruct
    guards: Tuple[STerm, ...]
    body: Tuple[STerm, ...]

    def __str__(self) -> str:
        guard_text = ", ".join(str(g) for g in self.guards) or "true"
        body_text = ", ".join(str(b) for b in self.body) or "true"
        return f"{self.head} :- {guard_text} | {body_text}."
