"""``repro.obs`` — observability over the cache system.

The probe/sink layer turns protocol activity into structured events,
the window layer turns counters into time series, the exporters feed
Perfetto and offline tooling, and manifests stamp every result with its
provenance.  See ``docs/OBSERVABILITY.md`` for the full tour.

Nothing here runs unless explicitly attached: with no sink, the replay
kernel and :meth:`PIMCacheSystem.access` keep their uninstrumented hot
paths (enforced by the ``repro bench`` overhead check).
"""

from repro.obs.events import EVENT_KIND_NAMES, EventKind, ProtocolEvent
from repro.obs.export import block_histogram, chrome_trace, write_chrome_trace
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest, config_fingerprint, write_manifest
from repro.obs.probe import ProtocolProbe
from repro.obs.profile import ProfileResult, profile_trace, write_profile
from repro.obs.sink import (
    CollectorSink,
    EventSink,
    JsonlSink,
    RingBufferSink,
    write_events_jsonl,
)
from repro.obs.windows import (
    Window,
    WindowedMetrics,
    windowed_replay,
    write_windows_jsonl,
)

__all__ = [
    "EVENT_KIND_NAMES",
    "EventKind",
    "ProtocolEvent",
    "ProtocolProbe",
    "EventSink",
    "RingBufferSink",
    "CollectorSink",
    "JsonlSink",
    "write_events_jsonl",
    "Window",
    "WindowedMetrics",
    "windowed_replay",
    "write_windows_jsonl",
    "block_histogram",
    "chrome_trace",
    "write_chrome_trace",
    "build_manifest",
    "config_fingerprint",
    "write_manifest",
    "ProfileResult",
    "profile_trace",
    "write_profile",
    "configure_logging",
    "get_logger",
]
