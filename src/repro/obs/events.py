"""Structured protocol events emitted by the observability probe.

The cache system's behaviour is defined by per-access transitions
(DESIGN.md's state tables); the probe turns each observable effect of an
access into one :class:`ProtocolEvent` so tools can see *when* things
happen, not just end-of-run totals:

* ``TRANSITION`` — the issuing PE's copy of the referenced block changed
  protocol state (``INV->S``, ``S->EM``, ``EM->INV`` ...).
* ``BUS`` — a bus access pattern occupied the common bus
  (``detail`` names the pattern, ``value`` is the cycles held,
  ``cycle`` is the cycle at which the bus freed again).
* ``DEMOTION`` — an optimized command fell back to a plain one
  (``DW->W``, ``ER->R``).
* ``PURGE`` — a local copy was forcibly dropped by ER/RP
  (``detail`` is ``clean`` or ``dirty``).
* ``LOCK`` — lock-protocol activity: ``LH`` (conflict drawn, busy-wait
  entered), ``UL`` (unlock broadcast to waiters), ``LR_NO_BUS`` (lock
  acquired with zero bus cycles), ``LR_BUS``, ``SPURIOUS_UNLOCK``.
* ``NETWORK`` — an access crossed the inter-cluster boundary
  (:mod:`repro.cluster`): ``detail`` names the destination cluster and
  the fetch/write/invalidate forwards charged, ``value`` is the cycles
  the issuing PE stalled (queue wait + transit).
* ``DIRECTORY`` — a home-node directory resolved the transaction with
  third-party messages (:mod:`repro.core.interconnect`): ``detail``
  counts the forwards/invalidations charged, ``value`` is the extra
  indirection cycles added to the issuing PE.

Events are cheap named tuples; :meth:`ProtocolEvent.to_dict` renders the
JSONL form (see ``docs/OBSERVABILITY.md`` for the schema).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.trace.events import AREA_NAMES, OP_NAMES


class EventKind(enum.IntEnum):
    """Classes of protocol events (see module docstring)."""

    TRANSITION = 0
    BUS = 1
    DEMOTION = 2
    PURGE = 3
    LOCK = 4
    NETWORK = 5
    DIRECTORY = 6


#: Human-readable event-kind names, indexed by ``EventKind`` value.
EVENT_KIND_NAMES = tuple(kind.name.lower() for kind in EventKind)


class ProtocolEvent(NamedTuple):
    """One observed protocol event.

    ``seq`` is the probe's global emission counter, ``ref`` the
    zero-based index of the reference that caused the event (−1 when
    unknown), ``cycle`` the simulated clock after the access (the bus
    clock for ``BUS`` events, the issuing PE's clock otherwise).
    ``detail`` is a kind-specific tag (transition arrow, pattern name,
    lock verb); ``value`` a kind-specific integer (bus cycles held,
    block number, ...).  ``protocol`` names the coherence protocol of
    the observed system (empty when the emitter predates protocol
    tagging or synthesizes events by hand), so cross-protocol event
    streams stay attributable after mixing.
    """

    seq: int
    ref: int
    cycle: int
    kind: int
    pe: int
    op: int
    area: int
    address: int
    detail: str
    value: int
    protocol: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form (one JSONL record)."""
        record = {
            "seq": self.seq,
            "ref": self.ref,
            "cycle": self.cycle,
            "kind": EVENT_KIND_NAMES[self.kind],
            "pe": self.pe,
            "op": OP_NAMES[self.op],
            "area": AREA_NAMES[self.area],
            "address": self.address,
            "detail": self.detail,
            "value": self.value,
        }
        if self.protocol:
            record["protocol"] = self.protocol
        return record

    def format(self) -> str:
        """One human-readable line (the ``repro events`` rendering)."""
        return (
            f"[{self.cycle:>8}] PE{self.pe} {OP_NAMES[self.op]:<2} "
            f"{AREA_NAMES[self.area]:<13} {self.address:#011x} "
            f"{EVENT_KIND_NAMES[self.kind]:<10} {self.detail}"
            + (f" ({self.value})" if self.kind == EventKind.BUS else "")
        )
