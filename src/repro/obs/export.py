"""Exporters: Perfetto-loadable traces and block hotness histograms.

:func:`chrome_trace` renders a probe's event stream in the Chrome
trace-event JSON format (the ``traceEvents`` array form), which both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* pid 0 is the **common bus** — every bus access pattern becomes a
  complete ("X") slice whose duration is the cycles the bus was held,
  so bus occupancy is visible at a glance;
* pid 1 groups the **processing elements**, one thread row per PE —
  lock busy-wait episodes (LH) are slices, unlock broadcasts (UL) and
  cache-state transitions are instant events on the issuing PE's row;
  home-node directory indirection (directory interconnect runs only)
  is a slice on the issuing PE's row covering the extra cycles its
  third-party messages cost;
* pid 2 is the **inter-cluster network** (clustered runs only) — each
  remote forward becomes a slice on the issuing PE's row whose duration
  is the stall the network charged, so remote-traffic hot spots line up
  against the bus and PE lanes;
* pid 3 carries the **counter tracks** (see :mod:`repro.obs.metrics`)
  when the caller merges them in via ``counter_events``.

Timestamps are simulated cycles reported in the ``ts``/``dur``
microsecond fields (1 cycle = 1 "us"); absolute wall time is
meaningless inside the simulation, so no clock sync metadata is needed.

:func:`block_histogram` is trace-level (no simulation needed): per
cache block, how many references landed on it and how many distinct PEs
touched it — the hotness/sharing profile that explains invalidation
traffic and false-sharing suspicion.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.events import EventKind, ProtocolEvent
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_NAMES, OP_NAMES, WRITE_LIKE_OPS

#: Schema tags for the exported artifacts.
TRACE_SCHEMA = "repro.obs/chrome-trace/v1"
HOTNESS_SCHEMA = "repro.obs/hotness/v1"

#: Cycles a busy-wait episode holds the bus for (the aborted request's
#: address cycle plus the LH response — see ``PIMCacheSystem._check_locks``).
LH_BUS_CYCLES = 2


def chrome_trace(
    events: Iterable[ProtocolEvent],
    n_pes: Optional[int] = None,
    counter_events: Optional[Iterable[dict]] = None,
) -> dict:
    """Render *events* as a Chrome trace-event / Perfetto JSON object.

    *counter_events* (prebuilt "C"-phase records, e.g. from
    :func:`repro.obs.metrics.counter_track_events`) are appended
    verbatim so one file carries slices and counter tracks together.
    """
    events = list(events)
    if n_pes is None:
        n_pes = max((event.pe for event in events), default=0) + 1
    trace_events: List[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "common bus"}},
        {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
         "args": {"name": "bus"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "processing elements"}},
    ]
    for pe in range(n_pes):
        trace_events.append(
            {"ph": "M", "pid": 1, "tid": pe, "name": "thread_name",
             "args": {"name": f"PE{pe}"}}
        )
    # The network lane only exists in clustered runs; its metadata is
    # added lazily so single-bus traces keep their two-process layout.
    network_rows: set = set()
    for event in events:
        args = {
            "pe": event.pe,
            "op": OP_NAMES[event.op],
            "area": AREA_NAMES[event.area],
            "address": hex(event.address),
            "ref": event.ref,
        }
        if event.kind == EventKind.BUS:
            trace_events.append({
                "name": f"{OP_NAMES[event.op]} {event.detail}",
                "cat": "bus",
                "ph": "X",
                "ts": max(0, event.cycle - event.value),
                "dur": event.value,
                "pid": 0,
                "tid": 0,
                "args": args,
            })
        elif event.kind == EventKind.LOCK and event.detail == "LH":
            trace_events.append({
                "name": "busy-wait (LH)",
                "cat": "lock",
                "ph": "X",
                "ts": max(0, event.cycle - LH_BUS_CYCLES),
                "dur": LH_BUS_CYCLES,
                "pid": 1,
                "tid": event.pe,
                "args": args,
            })
        elif event.kind == EventKind.LOCK and event.detail == "UL":
            trace_events.append({
                "name": "unlock broadcast (UL)",
                "cat": "lock",
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": 1,
                "tid": event.pe,
                "args": args,
            })
        elif event.kind == EventKind.TRANSITION:
            trace_events.append({
                "name": event.detail,
                "cat": "state",
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": 1,
                "tid": event.pe,
                "args": args,
            })
        elif event.kind == EventKind.NETWORK:
            if not network_rows:
                trace_events.append(
                    {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
                     "args": {"name": "inter-cluster network"}}
                )
            if event.pe not in network_rows:
                network_rows.add(event.pe)
                trace_events.append(
                    {"ph": "M", "pid": 2, "tid": event.pe,
                     "name": "thread_name",
                     "args": {"name": f"PE{event.pe} forwards"}}
                )
            trace_events.append({
                "name": event.detail,
                "cat": "network",
                "ph": "X",
                "ts": max(0, event.cycle - event.value),
                "dur": event.value,
                "pid": 2,
                "tid": event.pe,
                "args": args,
            })
        elif event.kind == EventKind.DIRECTORY:
            # Home-node indirection rides on the issuing PE's row: the
            # slice covers the extra cycles the directory's third-party
            # messages added to the transaction.
            trace_events.append({
                "name": f"directory {event.detail}",
                "cat": "directory",
                "ph": "X",
                "ts": max(0, event.cycle - event.value),
                "dur": event.value,
                "pid": 1,
                "tid": event.pe,
                "args": args,
            })
    if counter_events is not None:
        trace_events.extend(counter_events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "clock": "simulated cycles"},
    }


def write_chrome_trace(
    events: Iterable[ProtocolEvent],
    path: Union[str, Path],
    n_pes: Optional[int] = None,
    counter_events: Optional[Iterable[dict]] = None,
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(
            chrome_trace(events, n_pes=n_pes, counter_events=counter_events)
        )
        + "\n"
    )
    return path


def block_histogram(
    buffer: TraceBuffer, block_words: int = 4, top: int = 20
) -> dict:
    """Block-address hotness and sharing profile of a trace.

    Returns totals, a sharing histogram (how many blocks were touched
    by exactly *k* distinct PEs), and the *top* hottest blocks with
    their reference counts, writer/reader split, distinct-PE count and
    the areas they belong to.
    """
    if block_words < 1 or block_words & (block_words - 1):
        raise ValueError(
            f"block_words must be a positive power of two, got {block_words}"
        )
    shift = block_words.bit_length() - 1
    pe_col, op_col, area_col, addr_col, _ = buffer.columns()
    refs: Counter = Counter()
    writes: Counter = Counter()
    holders: Dict[int, set] = {}
    block_area: Dict[int, int] = {}
    for pe, op, area, addr in zip(pe_col, op_col, area_col, addr_col):
        block = addr >> shift
        refs[block] += 1
        if op in WRITE_LIKE_OPS:
            writes[block] += 1
        holder_set = holders.get(block)
        if holder_set is None:
            holders[block] = {pe}
            block_area[block] = area
        else:
            holder_set.add(pe)
    sharing: Counter = Counter(len(pes) for pes in holders.values())
    hottest = [
        {
            "block": block,
            "address": block << shift,
            "area": AREA_NAMES[block_area[block]],
            "refs": count,
            "writes": writes[block],
            "reads": count - writes[block],
            "pes": len(holders[block]),
        }
        for block, count in refs.most_common(top)
    ]
    return {
        "schema": HOTNESS_SCHEMA,
        "block_words": block_words,
        "total_refs": len(buffer),
        "distinct_blocks": len(refs),
        "shared_blocks": sum(1 for pes in holders.values() if len(pes) > 1),
        "sharing_histogram": {str(k): sharing[k] for k in sorted(sharing)},
        "top_blocks": hottest,
    }


def write_block_histogram(
    buffer: TraceBuffer,
    path: Union[str, Path],
    block_words: int = 4,
    top: int = 20,
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(block_histogram(buffer, block_words, top), indent=2) + "\n"
    )
    return path
