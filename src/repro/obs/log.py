"""Logging setup for the ``repro`` package.

Library modules log through :func:`get_logger` and never print; only
the CLI prints results.  The CLI calls :func:`configure` once, mapping
``-v/--verbose`` and ``-q/--quiet`` onto levels:

===========  =========
flags        level
===========  =========
``-q``       ERROR
(default)    WARNING
``-v``       INFO
``-vv``      DEBUG
===========  =========

:func:`configure` is idempotent — it owns exactly one handler on the
``repro`` logger and replaces it on reconfiguration, so tests and
repeated CLI invocations in one process never stack duplicate handlers.
"""

from __future__ import annotations

import logging
from typing import Optional

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"

#: Marker attribute identifying the handler :func:`configure` installs.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child of the ``repro`` logger (``repro.<name>``), or the root."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def verbosity_to_level(verbosity: int = 0, quiet: bool = False) -> int:
    if quiet:
        return logging.ERROR
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(
    verbosity: int = 0, quiet: bool = False, stream=None
) -> logging.Logger:
    """Install (or replace) the package's single stderr log handler."""
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(verbosity_to_level(verbosity, quiet))
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    # The CLI handler is the sink of record; don't also bubble to the
    # root logger (which pytest and applications may configure).
    logger.propagate = False
    return logger
