"""Run provenance manifests.

Every sweep result and benchmark report should say exactly what
produced it: the simulated configuration (hashed, so two results are
comparable at a glance), the machine seed, the trace-cache key the
reference stream came from, the git commit of the simulator, and the
interpreter that ran it.  :func:`build_manifest` collects all of that
into one JSON-ready dict (schema ``repro.obs/manifest/v1``, validated
by :mod:`repro.obs.schema`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Union

from repro.core.config import SimulationConfig

MANIFEST_SCHEMA = "repro.obs/manifest/v1"


def config_to_dict(config: SimulationConfig) -> dict:
    """Flatten a :class:`SimulationConfig` into plain JSON types."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_dict`
    output (e.g. the ``config`` entry of a manifest or checkpoint).

    The round trip is exact: every field of the dataclass tree is a
    plain scalar, so ``config_from_dict(config_to_dict(c)) == c``.
    """
    from repro.core.config import (
        BusConfig,
        CacheConfig,
        ClusterConfig,
        OptimizationConfig,
    )

    kwargs = dict(data)
    for key, cls in (
        ("cache", CacheConfig),
        ("bus", BusConfig),
        ("opts", OptimizationConfig),
        ("cluster", ClusterConfig),
    ):
        if key in kwargs and isinstance(kwargs[key], dict):
            kwargs[key] = cls(**kwargs[key])
    return SimulationConfig(**kwargs)


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable short hash of a simulation configuration.

    Equal configs hash equal regardless of construction order; the hash
    is over the canonical (sorted-key) JSON of the dataclass tree.
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_sha() -> Optional[str]:
    """Commit SHA of the working tree, or None outside a git checkout."""
    for root in (Path.cwd(), Path(__file__).resolve().parents[3]):
        try:
            out = subprocess.run(
                ["git", "-C", str(root), "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                check=False,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        sha = out.stdout.strip()
        if out.returncode == 0 and sha:
            return sha
    return None


def build_manifest(
    config: Optional[SimulationConfig] = None,
    seed: Optional[int] = None,
    trace_cache_key: Optional[str] = None,
    wall_seconds: Optional[float] = None,
    command: Optional[str] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble one provenance manifest.

    *extra* entries are merged under the ``"extra"`` key so callers can
    attach run-specific context (benchmark name, scale, window size)
    without loosening the schema.
    """
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": round(time.time(), 3),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "command": command if command is not None else " ".join(sys.argv),
        "config": config_to_dict(config) if config is not None else None,
        "config_hash": config_fingerprint(config) if config is not None else None,
        # Surfaced from the config so cross-protocol and multi-cluster
        # results stay attributable without digging through the nested
        # config dict.
        "protocol": config.protocol if config is not None else None,
        "clusters": config.cluster.n_clusters if config is not None else None,
        "seed": seed,
        "trace_cache_key": trace_cache_key,
        "wall_seconds": wall_seconds,
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(manifest: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
