"""Cycle-ledger metrics: labeled registries, attribution, exporters.

The paper's evaluation is an attribution exercise — which references
cost bus cycles, which coherence actions removed them — but end-of-run
aggregates only say *how many* cycles were spent, not *on what*.  This
module closes that gap with three pieces:

* a lightweight labeled **metric registry** (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram` under a :class:`MetricsRegistry`)
  rendered in the OpenMetrics text format — the endpoint surface a
  future ``repro serve`` exposes, usable today as a file artifact;
* the **cycle ledger** (:func:`cycle_ledger`): per-run attribution of
  every simulated PE cycle into hit service, bus issue, bus-arbitration
  wait, bus occupancy by pattern class, lock-directory spin and
  inter-cluster network stalls — asserted to sum *exactly* to
  ``sum(pe_cycles)`` (the timing model leaks no cycle);
* **Perfetto counter tracks** (:func:`counter_track_events`): the
  windowed time series as ``"C"``-phase trace events, so miss ratio and
  bus utilization plot as counters alongside the event slices in
  https://ui.perfetto.dev.

Ledger identity
---------------

Every ``pe_cycles`` advance in :class:`~repro.core.system.
PIMCacheSystem` lands in exactly one bucket:

* bus-free accesses (cache hits, DW's fetch-free allocation) advance a
  PE clock by one cycle — ``hit_service_cycles``;
* a bus transaction advances the requester by ``1`` (issue) ``+``
  arbitration wait (``bus_wait_cycles``) ``+`` the pattern occupancy
  (``pattern_cycles``); the issue cycles equal ``sum(pattern_counts)``;
* a busy-wait re-issue after an LH response burns one spin cycle —
  ``lock_spin_cycles``;
* a remote-homed access in a clustered machine additionally stalls for
  the network round trip — ``NetworkStats.stall_cycles``.

``memory_busy_cycles`` is deliberately **off-ledger**: the shared
memory modules are busy *in parallel with* (not in addition to) the PE
clocks, so the ledger reports it as a gauge beside the attribution, not
inside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.states import BusPattern
from repro.core.stats import SystemStats

#: Schema tag of the ``repro metrics`` JSON record.
METRICS_SCHEMA = "repro.obs/metrics/v1"


# ----------------------------------------------------------------------
# Labeled metric registry
# ----------------------------------------------------------------------

def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics text format.

    Backslash, double quote and line feed are the three characters the
    exposition format escapes; everything else passes through.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


_NAME_OK = set("abcdefghijklmnopqrstuvwxyz_0123456789:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_OK for c in name):
        raise ValueError(
            f"metric name {name!r} must be lowercase "
            "[a-z_:][a-z0-9_:]* (OpenMetrics)"
        )
    return name


class Metric:
    """One named metric family holding labeled sample series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._series: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def labels(self) -> List[Dict[str, str]]:
        return [dict(key) for key in self._series]

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """``(suffix, label_key, value)`` rows for the text exposition."""
        return [("", key, value) for key, value in sorted(self._series.items())]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ],
        }


class Counter(Metric):
    """Monotonically increasing count (OpenMetrics ``counter``)."""

    kind = "counter"

    def inc(self, amount: Union[int, float] = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def samples(self):
        # Counter sample lines carry the mandatory ``_total`` suffix.
        return [
            ("_total", key, value)
            for key, value in sorted(self._series.items())
        ]


class Gauge(Metric):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def set(self, value: Union[int, float], **labels: str) -> None:
        self._series[_label_key(labels)] = value

    def inc(self, amount: Union[int, float] = 1, **labels: str) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount


class Histogram(Metric):
    """Cumulative-bucket histogram (OpenMetrics ``histogram``)."""

    kind = "histogram"

    DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                       500.0, 1000.0)

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Iterable[float]] = None):
        super().__init__(name, help)
        bounds = tuple(sorted(buckets)) if buckets is not None \
            else self.DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def observe(self, value: Union[int, float], **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] += value
        self._series[key] = self._series.get(key, 0) + 1  # observation count

    def samples(self):
        rows = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                bucket_key = key + (("le", repr(float(bound))),)
                rows.append(("_bucket", bucket_key, cumulative))
            cumulative += counts[-1]
            rows.append(("_bucket", key + (("le", "+Inf"),), cumulative))
            rows.append(("_count", key, cumulative))
            rows.append(("_sum", key, self._sums[key]))
        return rows

    def as_dict(self) -> dict:
        record = super().as_dict()
        record["buckets"] = list(self.buckets)
        return record


class MetricsRegistry:
    """A named collection of metrics with one text exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered "
                    f"as a {existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        return self._register(Histogram(name, help, buckets))  # type: ignore[return-value]

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def render_openmetrics(self) -> str:
        """The OpenMetrics text exposition of every registered metric.

        Families are emitted in registration order, each with its
        ``# TYPE`` / ``# HELP`` header; the exposition ends with the
        mandatory ``# EOF`` terminator.
        """
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} "
                    + metric.help.replace("\\", "\\\\").replace("\n", "\\n")
                )
            for suffix, key, value in metric.samples():
                rendered = (
                    f"{value:g}" if isinstance(value, float) else str(value)
                )
                lines.append(
                    f"{metric.name}{suffix}{_render_labels(key)} {rendered}"
                )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def write_openmetrics(registry: MetricsRegistry,
                      path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(registry.render_openmetrics())
    return path


# ----------------------------------------------------------------------
# Cycle ledger
# ----------------------------------------------------------------------

class LedgerError(AssertionError):
    """The cycle attribution does not sum to ``pe_cycles``.

    Raised when a timing-model change advanced a PE clock without
    landing the cycles in a ledger bucket (or double-counted one) —
    the invariant the golden identity tests pin down.
    """


@dataclass
class CycleLedger:
    """Per-run attribution of every simulated PE cycle."""

    pe_cycles_total: int
    #: Attribution buckets, each an exact cycle count.  ``bus_busy_*``
    #: entries break the bus occupancy down by access-pattern class.
    entries: Dict[str, int]
    #: Module-side cycles that overlap (not add to) the PE clocks.
    off_ledger: Dict[str, int] = field(default_factory=dict)

    @property
    def attributed_total(self) -> int:
        return sum(self.entries.values())

    def verify(self) -> "CycleLedger":
        """Raise :class:`LedgerError` unless the attribution is exact."""
        attributed = self.attributed_total
        if attributed != self.pe_cycles_total:
            raise LedgerError(
                f"cycle ledger does not sum to pe_cycles: attributed "
                f"{attributed} != {self.pe_cycles_total} "
                f"(diff {self.pe_cycles_total - attributed}); entries: "
                + ", ".join(f"{k}={v}" for k, v in self.entries.items())
            )
        return self

    def fractions(self) -> Dict[str, float]:
        total = self.pe_cycles_total
        if not total:
            return {name: 0.0 for name in self.entries}
        return {name: value / total for name, value in self.entries.items()}

    def as_dict(self) -> dict:
        return {
            "pe_cycles_total": self.pe_cycles_total,
            "attributed_total": self.attributed_total,
            "entries": dict(self.entries),
            "fractions": {
                name: round(value, 6)
                for name, value in self.fractions().items()
            },
            "off_ledger": dict(self.off_ledger),
        }

    def to_registry(self, registry: Optional[MetricsRegistry] = None,
                    **labels: str) -> MetricsRegistry:
        """Export the ledger into a registry as labeled counters."""
        if registry is None:
            registry = MetricsRegistry()
        cycles = registry.counter(
            "repro_cycles",
            "simulated PE cycles attributed by the cycle ledger",
        )
        for name, value in self.entries.items():
            cycles.inc(value, bucket=name, **labels)
        gauge = registry.gauge(
            "repro_memory_busy_cycles",
            "shared-memory module busy cycles (overlap the PE clocks)",
        )
        gauge.set(self.off_ledger.get("memory_busy_cycles", 0), **labels)
        return registry


def cycle_ledger(
    stats: SystemStats,
    network=None,
    verify: bool = True,
) -> CycleLedger:
    """Attribute a run's ``pe_cycles`` into ledger buckets.

    *network* is a :class:`~repro.cluster.network.NetworkStats` (or any
    object with ``stall_cycles``) for clustered runs; flat runs pass
    ``None`` and get a zero ``network_stall`` entry.  With *verify*
    (the default) the attribution is asserted to sum exactly to
    ``sum(pe_cycles)``.
    """
    entries: Dict[str, int] = {
        "hit_service": stats.hit_service_cycles,
        "bus_issue": sum(stats.pattern_counts),
        "bus_wait": stats.bus_wait_cycles,
    }
    for pattern in BusPattern:
        cycles = stats.pattern_cycles[pattern]
        if cycles:
            entries[f"bus_busy_{pattern.name.lower()}"] = cycles
    entries["lock_spin"] = stats.lock_spin_cycles
    # Home-node directory indirection (hop cost per third-party
    # message); identically zero under the snooping bus.
    entries["directory_indirection"] = stats.directory_indirection_cycles
    entries["network_stall"] = (
        network.stall_cycles if network is not None else 0
    )
    ledger = CycleLedger(
        pe_cycles_total=sum(stats.pe_cycles),
        entries=entries,
        off_ledger={"memory_busy_cycles": stats.memory_busy_cycles},
    )
    return ledger.verify() if verify else ledger


def format_ledger(ledger: CycleLedger, title: str = "cycle ledger") -> str:
    """Human-readable attribution table."""
    lines = [f"{title} ({ledger.pe_cycles_total:,} PE cycles)"]
    width = max((len(name) for name in ledger.entries), default=10)
    fractions = ledger.fractions()
    for name, value in ledger.entries.items():
        lines.append(
            f"  {name:<{width}}  {value:>14,}  {100 * fractions[name]:6.2f}%"
        )
    lines.append(
        f"  {'total':<{width}}  {ledger.attributed_total:>14,}  100.00%"
        "  (== pe_cycles, identity verified)"
    )
    for name, value in ledger.off_ledger.items():
        lines.append(f"  off-ledger {name}: {value:,} cycles (overlapped)")
    return "\n".join(lines)


def metrics_record(
    ledger: CycleLedger,
    manifest: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """The schema-validated ``repro metrics`` JSON record."""
    record = {
        "schema": METRICS_SCHEMA,
        "ledger": ledger.as_dict(),
        "manifest": manifest,
    }
    if extra:
        record["extra"] = dict(extra)
    return record


# ----------------------------------------------------------------------
# Perfetto counter tracks
# ----------------------------------------------------------------------

#: pid the counter tracks live under in the exported Chrome trace
#: (0 = bus, 1 = PEs, 2 = network — see repro.obs.export).
COUNTER_PID = 3

#: Window fields exported as counter tracks, with display names.
COUNTER_TRACKS = (
    ("miss_ratio", "miss ratio"),
    ("bus_utilization", "bus utilization"),
    ("memory_busy_cycles", "memory busy cycles"),
    ("lh_responses", "lock conflicts (LH)"),
)


def counter_track_events(windows) -> List[dict]:
    """Render windowed metrics as ``"C"``-phase counter events.

    Each :class:`~repro.obs.windows.Window` contributes one sample per
    track at the window's closing cycle (the cumulative slowest-PE
    clock), so Perfetto draws the time series against the same
    simulated-cycle axis as the event slices.
    """
    if not windows:
        return []
    events: List[dict] = [
        {"ph": "M", "pid": COUNTER_PID, "tid": 0, "name": "process_name",
         "args": {"name": "windowed metrics"}},
    ]
    cycle = 0
    for window in windows:
        cycle += window.cycles
        for attr, name in COUNTER_TRACKS:
            events.append({
                "name": name,
                "cat": "metrics",
                "ph": "C",
                "ts": cycle,
                "pid": COUNTER_PID,
                "args": {name: getattr(window, attr)},
            })
    return events
