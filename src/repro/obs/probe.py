"""The protocol probe: turns per-access state changes into events.

The probe is the counters-to-events bridge.  It is attached with
:meth:`repro.core.system.PIMCacheSystem.attach_probe`, which wraps every
dispatch-table handler so the probe snapshots cheap state before the
access and diffs it after — the handlers themselves are untouched, so
the uninstrumented hot path keeps its exact shape (and its performance:
with no probe attached the wrapping never happens).

Per access the probe emits:

* one ``TRANSITION`` event when the issuing PE's copy of the referenced
  block changed protocol state (misses, invalidating write hits,
  purges, DW allocations ...);
* one ``BUS`` event per bus access pattern charged (diffed from
  ``pattern_counts``, stamped with the bus clock);
* ``DEMOTION`` / ``PURGE`` / ``LOCK`` events diffed from the matching
  :class:`~repro.core.stats.SystemStats` counters.

Remote side effects (supplier state changes, invalidated sharers) ride
on the ``BUS`` events that caused them; diffing every remote cache per
access would make instrumented runs quadratic in PEs for little
diagnostic gain.
"""

from __future__ import annotations

from typing import Optional

from repro.core.states import BusPattern, CacheState
from repro.obs.events import EventKind, ProtocolEvent
from repro.obs.sink import EventSink

#: Pattern names as they appear in BUS event ``detail`` fields.
PATTERN_NAMES = tuple(p.name.lower() for p in BusPattern)

_STATE_NAMES = {state: state.name for state in CacheState}

#: (stats attribute, LOCK event detail) pairs diffed per access.
_LOCK_COUNTERS = (
    ("lh_responses", "LH"),
    ("unlocks_with_waiter", "UL"),
    ("lr_no_bus", "LR_NO_BUS"),
    ("lr_bus", "LR_BUS"),
    ("spurious_unlocks", "SPURIOUS_UNLOCK"),
)


class ProtocolProbe:
    """Observes one :class:`~repro.core.system.PIMCacheSystem`.

    ``ref`` tracks the zero-based ordinal of the access being observed
    (one access per trace reference on the replay paths); driver loops
    that know the true trace index may overwrite it between accesses.
    """

    def __init__(self, sink: EventSink):
        self.sink = sink
        self.seq = 0
        self.ref = -1
        #: Protocol name of the attached system; stamped on every event.
        self.protocol = ""
        self._system = None
        self._before: Optional[tuple] = None

    # -- lifecycle (called by PIMCacheSystem.attach_probe/detach_probe) --

    def attach(self, system) -> None:
        if self._system is not None:
            raise RuntimeError("probe is already attached to a system")
        self._system = system
        self.protocol = system.config.protocol

    def detach(self, system) -> None:
        if self._system is not system:
            raise RuntimeError("probe is not attached to this system")
        self._system = None

    # -- per-access hooks ------------------------------------------------

    def before_access(
        self, pe: int, op: int, area: int, address: int, block: int
    ) -> None:
        system = self._system
        stats = system.stats
        line = system.caches[pe]._lines.get(block)
        self.ref += 1
        self._before = (
            line.state if line is not None else CacheState.INV,
            tuple(stats.pattern_counts),
            stats.dw_demotions,
            stats.er_demotions,
            stats.purges_clean,
            stats.purges_dirty,
            tuple(getattr(stats, name) for name, _ in _LOCK_COUNTERS),
            (
                stats.directory_forwards,
                stats.directory_invalidations,
                stats.directory_indirection_cycles,
            ),
        )

    def after_access(
        self, pe: int, op: int, area: int, address: int, block: int, result
    ) -> None:
        system = self._system
        stats = system.stats
        (
            state_before,
            patterns_before,
            dw_demotions,
            er_demotions,
            purges_clean,
            purges_dirty,
            locks_before,
            directory_before,
        ) = self._before
        pe_clock = stats.pe_cycles[pe]

        line = system.caches[pe]._lines.get(block)
        state_after = line.state if line is not None else CacheState.INV
        if state_after is not state_before:
            self._emit(
                EventKind.TRANSITION, pe_clock, pe, op, area, address,
                f"{_STATE_NAMES[state_before]}->{_STATE_NAMES[state_after]}",
                block,
            )

        pattern_counts = stats.pattern_counts
        bus_clock = system.bus_free_at
        for index, before in enumerate(patterns_before):
            gained = pattern_counts[index] - before
            if gained:
                cycles = system._pattern_cost[index]
                for _ in range(gained):
                    self._emit(
                        EventKind.BUS, bus_clock, pe, op, area, address,
                        PATTERN_NAMES[index], cycles,
                    )

        if stats.dw_demotions != dw_demotions:
            self._emit(
                EventKind.DEMOTION, pe_clock, pe, op, area, address,
                "DW->W", block,
            )
        if stats.er_demotions != er_demotions:
            self._emit(
                EventKind.DEMOTION, pe_clock, pe, op, area, address,
                "ER->R", block,
            )
        if stats.purges_clean != purges_clean:
            self._emit(
                EventKind.PURGE, pe_clock, pe, op, area, address, "clean", block
            )
        if stats.purges_dirty != purges_dirty:
            self._emit(
                EventKind.PURGE, pe_clock, pe, op, area, address, "dirty", block
            )
        for (name, detail), before in zip(_LOCK_COUNTERS, locks_before):
            if getattr(stats, name) != before:
                self._emit(
                    EventKind.LOCK, pe_clock, pe, op, area, address, detail, block
                )

        fwd_before, inv_before, extra_before = directory_before
        forwards = stats.directory_forwards - fwd_before
        invals = stats.directory_invalidations - inv_before
        extra = stats.directory_indirection_cycles - extra_before
        if forwards or invals:
            self._emit(
                EventKind.DIRECTORY, pe_clock, pe, op, area, address,
                f"fwd={forwards} inval={invals}", extra,
            )

    # -- internals -------------------------------------------------------

    def _emit(
        self, kind: int, cycle: int, pe: int, op: int, area: int,
        address: int, detail: str, value: int,
    ) -> None:
        self.sink.emit(
            ProtocolEvent(
                self.seq, self.ref, cycle, kind, pe, op, area, address,
                detail, value, self.protocol,
            )
        )
        self.seq += 1
