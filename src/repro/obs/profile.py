"""One-pass profiling: events + windowed metrics + provenance.

:func:`profile_trace` replays a reference stream once with a
:class:`~repro.obs.probe.ProtocolProbe` attached, producing everything
``repro profile`` surfaces:

* the protocol event stream (bounded ring, newest events win),
* the windowed time-series metrics,
* the block hotness/sharing histogram (trace-level),
* a run manifest stamping config hash, seed, trace key, git SHA,
  interpreter and wall time,
* the ordinary end-of-run :class:`~repro.core.stats.SystemStats`.

:func:`write_profile` lays the artifacts out as
``<name>.trace.json`` (Chrome trace-event / Perfetto),
``<name>.windows.jsonl``, ``<name>.events.jsonl``,
``<name>.hotness.json`` and ``<name>.manifest.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.config import SimulationConfig
from repro.core.stats import SystemStats
from repro.obs.events import ProtocolEvent
from repro.obs.export import (
    block_histogram,
    write_block_histogram,
    write_chrome_trace,
)
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import counter_track_events
from repro.obs.probe import ProtocolProbe
from repro.obs.sink import RingBufferSink, write_events_jsonl
from repro.obs.windows import Window, windowed_replay, write_windows_jsonl
from repro.trace.buffer import TraceBuffer

logger = get_logger("obs.profile")


@dataclass
class ProfileResult:
    """Everything one profiled replay produced."""

    stats: SystemStats
    windows: List[Window]
    events: List[ProtocolEvent]
    events_emitted: int
    events_dropped: int
    hotness: dict
    manifest: dict
    n_pes: int
    wall_seconds: float = 0.0
    paths: Dict[str, Path] = field(default_factory=dict)


def profile_trace(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    window: int = 4096,
    event_capacity: int = 65536,
    top_blocks: int = 20,
    seed: Optional[int] = None,
    trace_cache_key: Optional[str] = None,
    extra: Optional[dict] = None,
    check_invariants_every: Optional[int] = None,
) -> ProfileResult:
    """Profile one replay of *buffer* (see module docstring)."""
    if config is None:
        config = SimulationConfig()
    pes = n_pes if n_pes is not None else buffer.n_pes
    sink = RingBufferSink(event_capacity)
    probe = ProtocolProbe(sink)
    logger.info(
        "profiling %d refs on %d PEs (window=%d, ring=%d)",
        len(buffer), pes, window, event_capacity,
    )
    started = time.perf_counter()
    stats, windows = windowed_replay(
        buffer,
        config,
        n_pes=pes,
        window=window,
        probe=probe,
        check_invariants_every=check_invariants_every,
    )
    wall = time.perf_counter() - started
    hotness = block_histogram(buffer, config.cache.block_words, top=top_blocks)
    manifest_extra = {
        "kind": "profile",
        "refs": len(buffer),
        "n_pes": pes,
        "window": window,
        "windows": len(windows),
        "event_capacity": event_capacity,
        "events_emitted": sink.emitted,
        "events_dropped": sink.dropped,
    }
    if extra:
        manifest_extra.update(extra)
    manifest = build_manifest(
        config=config,
        seed=seed,
        trace_cache_key=trace_cache_key,
        wall_seconds=round(wall, 3),
        extra=manifest_extra,
    )
    logger.info(
        "profile done: %d events (%d dropped), %d windows, %.2fs",
        sink.emitted, sink.dropped, len(windows), wall,
    )
    if sink.dropped > 0:
        logger.warning(
            "event ring overflowed: %d of %d events dropped — the "
            "exported stream is incomplete (raise the event capacity, "
            "e.g. repro profile --events)",
            sink.dropped, sink.emitted,
        )
    return ProfileResult(
        stats=stats,
        windows=windows,
        events=sink.events,
        events_emitted=sink.emitted,
        events_dropped=sink.dropped,
        hotness=hotness,
        manifest=manifest,
        n_pes=pes,
        wall_seconds=wall,
    )


def write_profile(
    result: ProfileResult,
    out_dir: Union[str, Path],
    name: str,
    buffer: Optional[TraceBuffer] = None,
) -> Dict[str, Path]:
    """Write every profile artifact under *out_dir*; returns the paths.

    *buffer* is only needed to regenerate the hotness report with a
    different block size; normally the precomputed one is written.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "trace": write_chrome_trace(
            result.events,
            out_dir / f"{name}.trace.json",
            n_pes=result.n_pes,
            counter_events=counter_track_events(result.windows),
        ),
        "windows": write_windows_jsonl(
            result.windows, out_dir / f"{name}.windows.jsonl"
        ),
        "events": write_events_jsonl(
            result.events, out_dir / f"{name}.events.jsonl"
        ),
        "manifest": write_manifest(
            result.manifest, out_dir / f"{name}.manifest.json"
        ),
    }
    hotness_path = out_dir / f"{name}.hotness.json"
    if buffer is not None:
        paths["hotness"] = write_block_histogram(buffer, hotness_path)
    else:
        import json

        hotness_path.write_text(json.dumps(result.hotness, indent=2) + "\n")
        paths["hotness"] = hotness_path
    result.paths = paths
    return paths
