"""Hand-rolled validators for the observability artifacts.

No external JSON-schema dependency: each ``validate_*`` function checks
the required keys and types of one artifact (manifest, event record,
window record, hotness report, Chrome trace) and raises
:class:`SchemaError` with a readable path on the first violation.  CI
runs these over the ``repro profile`` outputs so a drive-by field
rename cannot silently break downstream tooling.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.events import EVENT_KIND_NAMES
from repro.obs.export import HOTNESS_SCHEMA, TRACE_SCHEMA
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.windows import WINDOW_SCHEMA
from repro.trace.events import AREA_NAMES, OP_NAMES


class SchemaError(ValueError):
    """An artifact does not match its published schema."""


def _require(record: Mapping, where: str, key: str, types) -> object:
    if key not in record:
        raise SchemaError(f"{where}: missing required key {key!r}")
    value = record[key]
    if types is not None and not isinstance(value, types):
        raise SchemaError(
            f"{where}.{key}: expected {types}, got {type(value).__name__}"
        )
    return value


def _require_number_list(record: Mapping, where: str, key: str) -> list:
    value = _require(record, where, key, list)
    for index, item in enumerate(value):
        if not isinstance(item, (int, float)) or isinstance(item, bool):
            raise SchemaError(
                f"{where}.{key}[{index}]: expected a number, "
                f"got {type(item).__name__}"
            )
    return value


def validate_manifest(record: Mapping) -> Mapping:
    where = "manifest"
    schema = _require(record, where, "schema", str)
    if schema != MANIFEST_SCHEMA:
        raise SchemaError(f"{where}.schema: expected {MANIFEST_SCHEMA!r}, got {schema!r}")
    _require(record, where, "created_unix", (int, float))
    _require(record, where, "python_version", str)
    _require(record, where, "platform", str)
    _require(record, where, "command", str)
    for key in ("git_sha", "config_hash", "trace_cache_key"):
        value = _require(record, where, key, None)
        if value is not None and not isinstance(value, str):
            raise SchemaError(f"{where}.{key}: expected str or null")
    if "protocol" in record and record["protocol"] is not None:
        if not isinstance(record["protocol"], str):
            raise SchemaError(f"{where}.protocol: expected str or null")
    if "clusters" in record and record["clusters"] is not None:
        clusters = record["clusters"]
        if not isinstance(clusters, int) or isinstance(clusters, bool) or clusters < 1:
            raise SchemaError(f"{where}.clusters: expected a positive int or null")
    config = _require(record, where, "config", None)
    if config is not None and not isinstance(config, Mapping):
        raise SchemaError(f"{where}.config: expected an object or null")
    if "wall_seconds" in record and record["wall_seconds"] is not None:
        if not isinstance(record["wall_seconds"], (int, float)):
            raise SchemaError(f"{where}.wall_seconds: expected a number or null")
    return record


def validate_event(record: Mapping) -> Mapping:
    where = "event"
    for key in ("seq", "ref", "cycle", "pe", "address", "value"):
        value = _require(record, where, key, int)
        if isinstance(value, bool):
            raise SchemaError(f"{where}.{key}: expected int, got bool")
    kind = _require(record, where, "kind", str)
    if kind not in EVENT_KIND_NAMES:
        raise SchemaError(f"{where}.kind: unknown kind {kind!r}")
    op = _require(record, where, "op", str)
    if op not in OP_NAMES:
        raise SchemaError(f"{where}.op: unknown operation {op!r}")
    area = _require(record, where, "area", str)
    if area not in AREA_NAMES:
        raise SchemaError(f"{where}.area: unknown area {area!r}")
    _require(record, where, "detail", str)
    if "protocol" in record and not isinstance(record["protocol"], str):
        raise SchemaError(f"{where}.protocol: expected str")
    return record


def validate_window(record: Mapping) -> Mapping:
    where = "window"
    schema = _require(record, where, "schema", str)
    if schema != WINDOW_SCHEMA:
        raise SchemaError(f"{where}.schema: expected {WINDOW_SCHEMA!r}, got {schema!r}")
    for key in (
        "index", "start", "refs", "hits", "misses", "cycles", "bus_cycles",
        "memory_busy_cycles", "lh_responses", "unlocks_with_waiter",
    ):
        _require(record, where, key, int)
    for key in ("miss_ratio", "bus_utilization"):
        value = _require(record, where, key, (int, float))
        if not 0.0 <= float(value) <= 1.0 and key == "miss_ratio":
            raise SchemaError(f"{where}.{key}: {value} outside [0, 1]")
    for key in ("refs_by_area", "misses_by_area", "bus_cycles_by_area", "pe_cycles"):
        _require_number_list(record, where, key)
    if record["refs"] < 1:
        raise SchemaError(f"{where}.refs: windows are never empty, got {record['refs']}")
    if record["refs"] != record["hits"] + record["misses"]:
        raise SchemaError(f"{where}: refs != hits + misses")
    return record


#: Schema tag of ``repro compare --json`` output (the producer lives in
#: :mod:`repro.analysis.protocols`; the tag lives here so the validator
#: has no upward dependency on the analysis layer).
COMPARISON_SCHEMA = "repro.obs/comparison/v1"


def validate_comparison(record: Mapping) -> Mapping:
    """Validate one machine-readable protocol/cluster comparison."""
    where = "comparison"
    schema = _require(record, where, "schema", str)
    if schema != COMPARISON_SCHEMA:
        raise SchemaError(
            f"{where}.schema: expected {COMPARISON_SCHEMA!r}, got {schema!r}"
        )
    rows = _require(record, where, "rows", list)
    if not rows:
        raise SchemaError(f"{where}.rows: a comparison needs at least one row")
    for index, row in enumerate(rows):
        entry = f"{where}.rows[{index}]"
        if not isinstance(row, Mapping):
            raise SchemaError(f"{entry}: expected an object")
        _require(row, entry, "protocol", str)
        for key in (
            "bus_cycles", "memory_busy_cycles", "swap_outs", "c2c_transfers",
        ):
            value = _require(row, entry, key, int)
            if isinstance(value, bool):
                raise SchemaError(f"{entry}.{key}: expected int, got bool")
        ratio = _require(row, entry, "miss_ratio", (int, float))
        if not 0.0 <= float(ratio) <= 1.0:
            raise SchemaError(f"{entry}.miss_ratio: {ratio} outside [0, 1]")
        for key in ("network_messages", "network_stall_cycles"):
            if key in row and (
                not isinstance(row[key], int) or isinstance(row[key], bool)
            ):
                raise SchemaError(f"{entry}.{key}: expected int")
    if "clusters" in record and record["clusters"] is not None:
        clusters = record["clusters"]
        if not isinstance(clusters, int) or isinstance(clusters, bool) or clusters < 1:
            raise SchemaError(f"{where}.clusters: expected a positive int or null")
    if "manifest" in record and record["manifest"] is not None:
        validate_manifest(record["manifest"])
    return record


#: Schema tag of ``repro verify --json`` output (produced by
#: :mod:`repro.cli` from :mod:`repro.verify` results; the tag lives here
#: with the other artifact tags).
VERIFY_SCHEMA = "repro.obs/verify/v1"


def validate_verify(record: Mapping) -> Mapping:
    """Validate one machine-readable verification report."""
    where = "verify"
    schema = _require(record, where, "schema", str)
    if schema != VERIFY_SCHEMA:
        raise SchemaError(
            f"{where}.schema: expected {VERIFY_SCHEMA!r}, got {schema!r}"
        )
    clean = _require(record, where, "clean", bool)
    model_check = _require(record, where, "model_check", None)
    fuzz = _require(record, where, "fuzz", None)
    if model_check is None and fuzz is None:
        raise SchemaError(f"{where}: needs model_check results or a fuzz report")
    if model_check is not None:
        if not isinstance(model_check, list) or not model_check:
            raise SchemaError(f"{where}.model_check: expected a non-empty list")
        for index, result in enumerate(model_check):
            entry = f"{where}.model_check[{index}]"
            if not isinstance(result, Mapping):
                raise SchemaError(f"{entry}: expected an object")
            _require(result, entry, "protocol", str)
            _require(result, entry, "clean", bool)
            for key in ("states", "transitions"):
                value = _require(result, entry, key, int)
                if isinstance(value, bool) or value < 0:
                    raise SchemaError(f"{entry}.{key}: expected a count")
            _require(result, entry, "complete", bool)
            counterexample = _require(result, entry, "counterexample", None)
            if result["clean"] != (counterexample is None):
                raise SchemaError(
                    f"{entry}: clean results carry no counterexample "
                    "and violations carry one"
                )
            if counterexample is not None:
                ce = f"{entry}.counterexample"
                if not isinstance(counterexample, Mapping):
                    raise SchemaError(f"{ce}: expected an object")
                _require(counterexample, ce, "invariant", str)
                _require(counterexample, ce, "detail", str)
                steps = _require(counterexample, ce, "steps", list)
                if not steps:
                    raise SchemaError(f"{ce}.steps: expected at least one step")
    if fuzz is not None:
        entry = f"{where}.fuzz"
        if not isinstance(fuzz, Mapping):
            raise SchemaError(f"{entry}: expected an object")
        for key in ("seed", "budget", "n_pes", "refs_total"):
            value = _require(fuzz, entry, key, int)
            if isinstance(value, bool):
                raise SchemaError(f"{entry}.{key}: expected int, got bool")
        _require(fuzz, entry, "clean", bool)
        cases = _require(fuzz, entry, "cases", list)
        for index, case in enumerate(cases):
            case_where = f"{entry}.cases[{index}]"
            if not isinstance(case, Mapping):
                raise SchemaError(f"{case_where}: expected an object")
            _require(case, case_where, "protocol", str)
            _require(case, case_where, "variant", str)
            _require(case, case_where, "ok", bool)
    if "manifest" in record and record["manifest"] is not None:
        validate_manifest(record["manifest"])
    return record


def validate_hotness(record: Mapping) -> Mapping:
    where = "hotness"
    schema = _require(record, where, "schema", str)
    if schema != HOTNESS_SCHEMA:
        raise SchemaError(f"{where}.schema: expected {HOTNESS_SCHEMA!r}, got {schema!r}")
    for key in ("block_words", "total_refs", "distinct_blocks", "shared_blocks"):
        _require(record, where, key, int)
    _require(record, where, "sharing_histogram", Mapping)
    top = _require(record, where, "top_blocks", list)
    for index, entry in enumerate(top):
        for key in ("block", "address", "refs", "writes", "reads", "pes"):
            _require(entry, f"{where}.top_blocks[{index}]", key, int)
        _require(entry, f"{where}.top_blocks[{index}]", "area", str)
    return record


def validate_chrome_trace(record: Mapping) -> Mapping:
    where = "chrome-trace"
    events = _require(record, where, "traceEvents", list)
    other = _require(record, where, "otherData", Mapping)
    if other.get("schema") != TRACE_SCHEMA:
        raise SchemaError(f"{where}.otherData.schema: expected {TRACE_SCHEMA!r}")
    for index, event in enumerate(events):
        entry = f"{where}.traceEvents[{index}]"
        phase = _require(event, entry, "ph", str)
        _require(event, entry, "pid", int)
        _require(event, entry, "name", str)
        if phase == "X":
            ts = _require(event, entry, "ts", (int, float))
            dur = _require(event, entry, "dur", (int, float))
            if ts < 0 or dur < 0:
                raise SchemaError(f"{entry}: negative ts/dur")
        elif phase == "i":
            _require(event, entry, "ts", (int, float))
        elif phase == "C":
            # Counter sample: a timestamp plus at least one series value.
            _require(event, entry, "ts", (int, float))
            args = _require(event, entry, "args", Mapping)
            if not args:
                raise SchemaError(f"{entry}.args: a counter sample needs a value")
        elif phase != "M":
            raise SchemaError(f"{entry}.ph: unexpected phase {phase!r}")
    return record


def validate_metrics(record: Mapping) -> Mapping:
    """Validate one ``repro metrics`` record, identity included.

    Beyond shape, this re-checks the cycle-ledger accounting identity —
    the attributed buckets must sum exactly to ``pe_cycles_total`` — so
    a record that passed through ``round``-happy tooling cannot claim
    attribution it does not have.
    """
    where = "metrics"
    schema = _require(record, where, "schema", str)
    if schema != METRICS_SCHEMA:
        raise SchemaError(f"{where}.schema: expected {METRICS_SCHEMA!r}, got {schema!r}")
    ledger = _require(record, where, "ledger", Mapping)
    entry = f"{where}.ledger"
    total = _require(ledger, entry, "pe_cycles_total", int)
    attributed = _require(ledger, entry, "attributed_total", int)
    entries = _require(ledger, entry, "entries", Mapping)
    if not entries:
        raise SchemaError(f"{entry}.entries: a ledger needs at least one bucket")
    for name, value in entries.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise SchemaError(f"{entry}.entries[{name!r}]: expected a count")
    if sum(entries.values()) != total or attributed != total:
        raise SchemaError(
            f"{entry}: attribution identity violated "
            f"(entries sum {sum(entries.values())}, attributed {attributed}, "
            f"pe_cycles_total {total})"
        )
    off_ledger = _require(ledger, entry, "off_ledger", Mapping)
    for name, value in off_ledger.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise SchemaError(f"{entry}.off_ledger[{name!r}]: expected a count")
    fractions = _require(ledger, entry, "fractions", Mapping)
    for name, value in fractions.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SchemaError(f"{entry}.fractions[{name!r}]: expected a number")
    manifest = _require(record, where, "manifest", None)
    if manifest is not None:
        validate_manifest(manifest)
    return record


def _require_rate(record: Mapping, where: str, key: str) -> object:
    """A refs/sec-style field: a positive number or the ``"skipped"``
    marker some sections record on hosts that cannot run them."""
    value = _require(record, where, key, None)
    if value == "skipped":
        return value
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise SchemaError(f"{where}.{key}: expected a positive rate or 'skipped'")
    return value


def validate_bench(record: Mapping) -> Mapping:
    """Validate one ``repro bench`` report (``BENCH_replay.json``)."""
    where = "bench"
    benchmark = _require(record, where, "benchmark", str)
    if benchmark != "replay":
        raise SchemaError(f"{where}.benchmark: expected 'replay', got {benchmark!r}")
    _require(record, where, "quick", bool)
    for key in ("host_cpus", "repeats"):
        value = _require(record, where, key, int)
        if isinstance(value, bool) or value < 1:
            raise SchemaError(f"{where}.{key}: expected a positive int")
    workloads = _require(record, where, "workloads", Mapping)
    if not workloads:
        raise SchemaError(f"{where}.workloads: a bench report needs workloads")
    for name, entry in workloads.items():
        sub = f"{where}.workloads[{name!r}]"
        if not isinstance(entry, Mapping):
            raise SchemaError(f"{sub}: expected an object")
        _require(entry, sub, "refs", int)
        _require_rate(entry, sub, "refs_per_sec")
        ratio = _require(entry, sub, "hit_ratio", (int, float))
        if not 0.0 <= float(ratio) <= 1.0:
            raise SchemaError(f"{sub}.hit_ratio: {ratio} outside [0, 1]")
    kernels = record.get("kernels")
    if kernels is not None:
        sub = f"{where}.kernels"
        if not isinstance(kernels, Mapping):
            raise SchemaError(f"{sub}: expected an object")
        _require_rate(kernels, sub, "interpreted_refs_per_sec")
        _require_rate(kernels, sub, "generated_refs_per_sec")
    sweep = record.get("sweep")
    if sweep is not None:
        sub = f"{where}.sweep"
        if not isinstance(sweep, Mapping):
            raise SchemaError(f"{sub}: expected an object")
        _require(sweep, sub, "points", int)
        _require(sweep, sub, "refs", int)
        speedup = _require(sweep, sub, "parallel_speedup", None)
        if speedup is not None and speedup != "skipped":
            if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
                raise SchemaError(
                    f"{sub}.parallel_speedup: expected a number, 'skipped' or null"
                )
    cluster = record.get("cluster")
    if cluster is not None:
        sub = f"{where}.cluster"
        if not isinstance(cluster, Mapping):
            raise SchemaError(f"{sub}: expected an object")
        _require_rate(cluster, sub, "refs_per_sec_serial")
        _require_rate(cluster, sub, "refs_per_sec_parallel")
    manifest = record.get("manifest")
    if manifest is not None:
        validate_manifest(manifest)
    return record


#: Schema tag of ``BENCH_history.jsonl`` records (the producer lives in
#: :mod:`repro.analysis.history`; the tag lives here so the validator
#: has no upward dependency on the analysis layer).
BENCH_HISTORY_SCHEMA = "repro.obs/bench-history/v1"


def validate_bench_history(record: Mapping) -> Mapping:
    """Validate one bench-history JSONL record."""
    where = "bench-history"
    schema = _require(record, where, "schema", str)
    if schema != BENCH_HISTORY_SCHEMA:
        raise SchemaError(
            f"{where}.schema: expected {BENCH_HISTORY_SCHEMA!r}, got {schema!r}"
        )
    _require(record, where, "created_unix", (int, float))
    host = _require(record, where, "host", Mapping)
    _require(host, f"{where}.host", "fingerprint", str)
    _require(host, f"{where}.host", "hostname", str)
    _require(host, f"{where}.host", "machine", str)
    cpus = _require(host, f"{where}.host", "cpus", int)
    if isinstance(cpus, bool) or cpus < 1:
        raise SchemaError(f"{where}.host.cpus: expected a positive int")
    git_sha = _require(record, where, "git_sha", None)
    if git_sha is not None and not isinstance(git_sha, str):
        raise SchemaError(f"{where}.git_sha: expected str or null")
    _require(record, where, "quick", bool)
    _require(record, where, "repeats", int)
    sections = _require(record, where, "sections", Mapping)
    if not sections:
        raise SchemaError(f"{where}.sections: a history record needs sections")
    for name, value in sections.items():
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or value <= 0
        ):
            raise SchemaError(f"{where}.sections[{name!r}]: expected a positive number")
    return record


#: Schema tag of simulator checkpoints (produced by
#: :mod:`repro.serve.checkpoint`; the tag lives here with the other
#: artifact tags so the validator has no upward dependency).
CHECKPOINT_SCHEMA = "repro.obs/checkpoint/v1"

#: Schema tag of job-ledger records (produced by
#: :mod:`repro.serve.jobs`).
JOB_SCHEMA = "repro.obs/job/v1"

#: The job lifecycle.  ``queued`` → ``running`` → (``checkpointed`` ⇄
#: ``running``) → ``done`` | ``failed``.
JOB_STATES = ("queued", "running", "checkpointed", "done", "failed")


def _require_pair_list(record: Mapping, where: str, key: str, width: int) -> list:
    value = _require(record, where, key, list)
    for index, item in enumerate(value):
        if not isinstance(item, (list, tuple)) or len(item) != width:
            raise SchemaError(
                f"{where}.{key}[{index}]: expected a {width}-element row"
            )
    return value


def _validate_checkpoint_stats(stats: Mapping, where: str) -> None:
    for key in ("refs", "hits"):
        rows = _require(stats, where, key, list)
        for index, row in enumerate(rows):
            if not isinstance(row, list):
                raise SchemaError(f"{where}.{key}[{index}]: expected a list")
    for key in (
        "pattern_counts", "pattern_cycles", "bus_cycles_by_area",
        "command_counts", "pe_cycles",
    ):
        _require_number_list(stats, where, key)
    scalars = _require(stats, where, "scalars", Mapping)
    for name, value in scalars.items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(f"{where}.scalars[{name!r}]: expected an int")


def _validate_checkpoint_system(state: Mapping, where: str) -> None:
    caches = _require(state, where, "caches", list)
    if not caches:
        raise SchemaError(f"{where}.caches: a system has at least one cache")
    for index, cache in enumerate(caches):
        entry = f"{where}.caches[{index}]"
        if not isinstance(cache, Mapping):
            raise SchemaError(f"{entry}: expected an object")
        tick = _require(cache, entry, "tick", int)
        if isinstance(tick, bool) or tick < 0:
            raise SchemaError(f"{entry}.tick: expected a non-negative int")
        # Each line is [block, state, area, lru, data].
        _require_pair_list(cache, entry, "lines", 5)
    locks = _require(state, where, "locks", list)
    for index, lock in enumerate(locks):
        entry = f"{where}.locks[{index}]"
        if not isinstance(lock, Mapping):
            raise SchemaError(f"{entry}: expected an object")
        _require_pair_list(lock, entry, "entries", 2)
        for key in ("max_occupancy", "overflows"):
            value = _require(lock, entry, key, int)
            if isinstance(value, bool) or value < 0:
                raise SchemaError(f"{entry}.{key}: expected a count")
    _require_pair_list(state, where, "memory", 2)
    _require_pair_list(state, where, "locked_words", 2)
    _require_pair_list(state, where, "waiting", 2)
    stats = _require(state, where, "stats", Mapping)
    _validate_checkpoint_stats(stats, f"{where}.stats")
    interconnect = _require(state, where, "interconnect", Mapping)
    entry = f"{where}.interconnect"
    free_at = _require(interconnect, entry, "free_at", int)
    if isinstance(free_at, bool) or free_at < 0:
        raise SchemaError(f"{entry}.free_at: expected a non-negative int")
    if interconnect.get("entries") is not None:
        # Each directory entry is [block, state, owner, sharers].
        _require_pair_list(interconnect, entry, "entries", 4)
    if "network" in state and state["network"] is not None:
        network = state["network"]
        entry = f"{where}.network"
        if not isinstance(network, Mapping):
            raise SchemaError(f"{entry}: expected an object")
        _require(network, entry, "link_free_at", int)
        net_stats = _require(network, entry, "stats", Mapping)
        for name, value in net_stats.items():
            if name == "forwards_by_home":
                _require_number_list(net_stats, entry + ".stats", name)
            elif not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(
                    f"{entry}.stats[{name!r}]: expected an int"
                )
        cluster_index = _require(state, where, "cluster_index", int)
        if isinstance(cluster_index, bool) or cluster_index < 0:
            raise SchemaError(f"{where}.cluster_index: expected an index")


def validate_checkpoint(record: Mapping) -> Mapping:
    """Validate one full-simulator checkpoint."""
    where = "checkpoint"
    schema = _require(record, where, "schema", str)
    if schema != CHECKPOINT_SCHEMA:
        raise SchemaError(
            f"{where}.schema: expected {CHECKPOINT_SCHEMA!r}, got {schema!r}"
        )
    kind = _require(record, where, "kind", str)
    if kind not in ("flat", "clustered"):
        raise SchemaError(f"{where}.kind: unknown kind {kind!r}")
    _require(record, where, "config", Mapping)
    n_pes = _require(record, where, "n_pes", int)
    if isinstance(n_pes, bool) or n_pes < 1:
        raise SchemaError(f"{where}.n_pes: expected a positive int")
    systems = _require(record, where, "systems", list)
    if not systems:
        raise SchemaError(f"{where}.systems: expected at least one system")
    if kind == "flat" and len(systems) != 1:
        raise SchemaError(
            f"{where}.systems: a flat checkpoint holds one system, "
            f"got {len(systems)}"
        )
    for index, state in enumerate(systems):
        entry = f"{where}.systems[{index}]"
        if not isinstance(state, Mapping):
            raise SchemaError(f"{entry}: expected an object")
        _validate_checkpoint_system(state, entry)
    return record


def validate_job(record: Mapping) -> Mapping:
    """Validate one job-ledger record."""
    where = "job"
    schema = _require(record, where, "schema", str)
    if schema != JOB_SCHEMA:
        raise SchemaError(f"{where}.schema: expected {JOB_SCHEMA!r}, got {schema!r}")
    job_id = _require(record, where, "id", str)
    if not job_id:
        raise SchemaError(f"{where}.id: expected a non-empty id")
    state = _require(record, where, "state", str)
    if state not in JOB_STATES:
        raise SchemaError(f"{where}.state: unknown state {state!r}")
    _require(record, where, "trace", str)
    for key in ("n_pes", "chunk_refs", "checkpoint_every", "max_retries"):
        value = _require(record, where, key, int)
        if isinstance(value, bool) or value < 1:
            raise SchemaError(f"{where}.{key}: expected a positive int")
    retries = _require(record, where, "retries", int)
    if isinstance(retries, bool) or retries < 0:
        raise SchemaError(f"{where}.retries: expected a non-negative int")
    kernel = _require(record, where, "kernel", None)
    if kernel is not None and not isinstance(kernel, str):
        raise SchemaError(f"{where}.kernel: expected str or null")
    # Optional speculative-mode fields (absent in pre-mode ledgers).
    mode = record.get("mode")
    if mode is not None and mode not in ("pessimistic", "lazypim"):
        raise SchemaError(f"{where}.mode: unknown mode {mode!r}")
    for key in ("batch_refs", "signature_bits"):
        value = record.get(key)
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value < 1
        ):
            raise SchemaError(f"{where}.{key}: expected a positive int or null")
    error = _require(record, where, "error", None)
    if error is not None:
        entry = f"{where}.error"
        if not isinstance(error, Mapping):
            raise SchemaError(f"{entry}: expected an object or null")
        _require(error, entry, "kind", str)
        _require(error, entry, "detail", str)
    if state == "failed" and error is None:
        raise SchemaError(f"{where}: failed jobs record a structured error")
    manifest = _require(record, where, "manifest", Mapping)
    validate_manifest(manifest)
    return record


def validate_jsonl(lines: Iterable[str], validator) -> int:
    """Validate every JSONL line with *validator*; returns the count."""
    import json

    count = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaError(f"line {number}: invalid JSON ({error})") from error
        validator(record)
        count += 1
    return count
