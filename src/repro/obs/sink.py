"""Event sinks: where the probe's protocol events go.

A sink is anything with ``emit(event)`` and ``close()``.  Two concrete
sinks cover the two diagnostic styles:

* :class:`RingBufferSink` keeps the last *capacity* events in memory —
  bounded, so a billion-reference replay cannot exhaust RAM; the drop
  count records how much history was shed.
* :class:`JsonlSink` streams every event to a JSON-lines file for
  offline tooling (``repro events -o``, the Perfetto exporter).

Attaching any sink puts the system on the instrumented path; with no
sink attached the hot loops are untouched (see
:meth:`repro.core.system.PIMCacheSystem.attach_probe`).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, List, Optional, Union

from repro.obs.events import ProtocolEvent


class EventSink:
    """Base sink: counts emissions, drops everything."""

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, event: ProtocolEvent) -> None:
        self.emitted += 1

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RingBufferSink(EventSink):
    """Keep the most recent *capacity* events in a bounded ring."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__()
        self.capacity = capacity
        self._ring: "deque[ProtocolEvent]" = deque(maxlen=capacity)

    @property
    def dropped(self) -> int:
        """Events shed off the old end of the ring."""
        return self.emitted - len(self._ring)

    def emit(self, event: ProtocolEvent) -> None:
        self.emitted += 1
        self._ring.append(event)

    @property
    def events(self) -> List[ProtocolEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)


class CollectorSink(EventSink):
    """Unbounded in-memory sink (tests and small traces only)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[ProtocolEvent] = []

    def emit(self, event: ProtocolEvent) -> None:
        self.emitted += 1
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class JsonlSink(EventSink):
    """Stream events to a JSON-lines file (one object per line)."""

    def __init__(self, target: Union[str, Path, IO[str]]):
        super().__init__()
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._file = open(self.path, "w", encoding="utf-8")
            self._owns = True

    def emit(self, event: ProtocolEvent) -> None:
        self.emitted += 1
        self._file.write(json.dumps(event.to_dict()) + "\n")

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()


def write_events_jsonl(events: Iterable[ProtocolEvent], path: Union[str, Path]) -> Path:
    """Write an event collection (e.g. a ring's contents) as JSONL."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict()) + "\n")
    return path
