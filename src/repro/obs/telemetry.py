"""Sweep-fleet telemetry: worker heartbeats, progress, stall detection.

A parallel sweep fans points out to worker processes that are silent
until they return — a fleet you cannot watch.  This module gives each
worker a **heartbeat stream**: periodic progress records (current sweep
point, references done, replay rate, a windowed miss-ratio snapshot)
sent over a multiprocessing queue to a collector thread in the parent.

The pieces are deliberately layered for testability:

* :func:`heartbeat` / :data:`HEARTBEAT_SCHEMA` — the record format
  (plain dicts: pickle-friendly across ``fork`` and ``spawn``, JSON-
  friendly for manifests);
* :class:`StallDetector` — pure bookkeeping over injected timestamps
  (``observe``/``stalled``), so stall logic is tested without clocks,
  sleeps or processes;
* :class:`TelemetryCollector` — drains a queue on a background thread,
  keeps the latest record per worker, logs a ``repro.obs.log`` warning
  when a worker goes quiet, and renders progress lines;
* :class:`SweepTelemetry` — the wiring: owns the
  ``multiprocessing.Manager`` queue (a proxy, so it pickles into
  ``ProcessPoolExecutor`` initargs under both start methods) and the
  collector, exposed as a context manager.

The worker-side emission loop lives in
:mod:`repro.analysis.parallel` (it needs the replay machinery); this
module has no dependency on it.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.obs.log import get_logger

logger = get_logger("obs.telemetry")

#: Schema tag carried by every heartbeat record.
HEARTBEAT_SCHEMA = "repro.obs/heartbeat/v1"

#: Default seconds between worker heartbeats.
DEFAULT_INTERVAL_SECONDS = 0.5

#: Default missed-heartbeat count before a worker is declared stalled.
DEFAULT_STALL_MISSES = 5

#: References per worker replay chunk (the heartbeat check cadence).
DEFAULT_CHUNK_REFS = 32_768


def heartbeat(
    worker: int,
    seq: int,
    point: int,
    points_done: int,
    refs_done: int,
    refs_total: int,
    refs_per_sec: float,
    miss_ratio: float,
    done: bool = False,
    timestamp: Optional[float] = None,
) -> dict:
    """Build one heartbeat record (see :data:`HEARTBEAT_SCHEMA`)."""
    return {
        "schema": HEARTBEAT_SCHEMA,
        "worker": worker,
        "seq": seq,
        "point": point,
        "points_done": points_done,
        "refs_done": refs_done,
        "refs_total": refs_total,
        "refs_per_sec": round(refs_per_sec, 1),
        "miss_ratio": round(miss_ratio, 4),
        "done": done,
        "timestamp": timestamp if timestamp is not None else time.time(),
    }


class StallDetector:
    """Declare a worker stalled after *misses* missed heartbeats.

    Pure bookkeeping: callers pass explicit ``now`` timestamps, so the
    tests drive it with synthetic clocks.  A worker is *stalled* when
    ``now - last_seen > interval * misses``; :meth:`stalled` reports
    each stall episode once (a later :meth:`observe` re-arms it, so a
    recovered-then-stuck worker warns again).
    """

    def __init__(
        self,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        misses: int = DEFAULT_STALL_MISSES,
    ):
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        if misses < 1:
            raise ValueError(f"misses must be >= 1, got {misses}")
        self.interval_seconds = interval_seconds
        self.misses = misses
        self._last_seen: Dict[int, float] = {}
        self._reported: Dict[int, bool] = {}
        self.stall_events = 0

    @property
    def timeout_seconds(self) -> float:
        return self.interval_seconds * self.misses

    def observe(self, worker: int, now: float) -> None:
        """Record a heartbeat from *worker* at time *now*."""
        self._last_seen[worker] = now
        self._reported[worker] = False

    def forget(self, worker: int) -> None:
        """Stop watching *worker* (it finished cleanly)."""
        self._last_seen.pop(worker, None)
        self._reported.pop(worker, None)

    def silent_for(self, worker: int, now: float) -> Optional[float]:
        last = self._last_seen.get(worker)
        return None if last is None else now - last

    def stalled(self, now: float) -> List[int]:
        """Workers newly past the stall deadline (each episode once)."""
        newly = []
        for worker, last in self._last_seen.items():
            if now - last > self.timeout_seconds and not self._reported[worker]:
                self._reported[worker] = True
                self.stall_events += 1
                newly.append(worker)
        return sorted(newly)


class TelemetryCollector:
    """Drain heartbeats from a queue on a background thread.

    Keeps the latest record per worker, counts totals, warns through
    :mod:`repro.obs.log` when the :class:`StallDetector` trips, and
    invokes *on_heartbeat* (when given) with each record — the hook
    ``repro sweep --progress`` renders live lines from.
    """

    _POLL_SECONDS = 0.1

    def __init__(
        self,
        source,
        detector: Optional[StallDetector] = None,
        on_heartbeat: Optional[Callable[[dict], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._source = source
        self.detector = detector if detector is not None else StallDetector()
        self._on_heartbeat = on_heartbeat
        self._clock = clock
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.latest: Dict[int, dict] = {}
        self.heartbeats = 0
        self.points_completed = 0

    # -- queue draining ------------------------------------------------

    def handle(self, record: dict) -> None:
        """Fold one heartbeat record in (the thread calls this)."""
        worker = record.get("worker", -1)
        with self._lock:
            self.heartbeats += 1
            self.latest[worker] = record
            if record.get("done"):
                # A ``done`` record closes one sweep point; the worker
                # goes idle (or picks up another point, whose first
                # heartbeat re-arms the detector), so stop watching it.
                self.points_completed += 1
                self.detector.forget(worker)
            else:
                self.detector.observe(worker, self._clock())
        if self._on_heartbeat is not None:
            self._on_heartbeat(record)

    def check_stalls(self) -> List[int]:
        """Run the stall detector once, warning on new episodes."""
        with self._lock:
            newly = self.detector.stalled(self._clock())
        for worker in newly:
            logger.warning(
                "sweep worker %d missed %d heartbeats (silent > %.1fs) — "
                "stalled or very slow sweep point",
                worker, self.detector.misses, self.detector.timeout_seconds,
            )
        return newly

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                record = self._source.get(timeout=self._POLL_SECONDS)
            except queue_module.Empty:
                self.check_stalls()
                continue
            if record is None:  # shutdown sentinel
                break
            self.handle(record)
            self.check_stalls()

    def start(self) -> "TelemetryCollector":
        if self._thread is not None:
            raise RuntimeError("collector already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        self.drain()

    def drain(self) -> None:
        """Synchronously fold in everything currently queued.

        Worker ``put`` calls complete before the worker returns its
        sweep point, so once a sweep's results are in hand a drain makes
        the collector's totals complete — no racing the poll thread.
        """
        while True:
            try:
                record = self._source.get_nowait()
            except (queue_module.Empty, OSError, EOFError):
                break
            if record is not None:
                self.handle(record)

    # -- summaries -----------------------------------------------------

    def progress(self) -> dict:
        """Aggregate fleet progress (refs done / total over live points)."""
        with self._lock:
            latest = dict(self.latest)
        refs_done = sum(r.get("refs_done", 0) for r in latest.values())
        refs_total = sum(r.get("refs_total", 0) for r in latest.values())
        rate = sum(
            r.get("refs_per_sec", 0.0)
            for r in latest.values()
            if not r.get("done")
        )
        return {
            "workers": len(latest),
            "refs_done": refs_done,
            "refs_total": refs_total,
            "refs_per_sec": round(rate, 1),
        }

    def summary(self) -> dict:
        """JSON-ready fleet summary for the run manifest."""
        with self._lock:
            return {
                "heartbeats": self.heartbeats,
                "workers": len(self.latest),
                "points_completed": self.points_completed,
                "stall_events": self.detector.stall_events,
                "interval_seconds": self.detector.interval_seconds,
                "stall_misses": self.detector.misses,
            }


def format_heartbeat(record: dict) -> str:
    """One progress line for ``repro sweep --progress``."""
    total = record.get("refs_total") or 0
    done = record.get("refs_done", 0)
    percent = 100.0 * done / total if total else 0.0
    state = "done" if record.get("done") else f"{percent:5.1f}%"
    return (
        f"worker {record.get('worker')}: point {record.get('point')} "
        f"[{state}] {done:,}/{total:,} refs, "
        f"{record.get('refs_per_sec', 0):,.0f} refs/sec, "
        f"miss {record.get('miss_ratio', 0.0):.4f}"
    )


class SweepTelemetry:
    """The parent side of sweep-fleet telemetry, wired and owned.

    Builds the ``multiprocessing.Manager`` queue workers stream to (a
    managed proxy — unlike a bare ``mp.Queue`` it pickles into
    ``ProcessPoolExecutor`` initargs under both ``fork`` and ``spawn``)
    plus the collector thread that drains it.  Use as a context
    manager; pass to :class:`~repro.analysis.parallel.SweepPool`::

        with SweepTelemetry(on_heartbeat=print) as telemetry:
            with SweepPool(trace, jobs=4, telemetry=telemetry) as pool:
                results = pool.map(grid)
        summary = telemetry.summary()
    """

    def __init__(
        self,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        stall_misses: int = DEFAULT_STALL_MISSES,
        chunk_refs: int = DEFAULT_CHUNK_REFS,
        on_heartbeat: Optional[Callable[[dict], None]] = None,
        use_processes: bool = True,
    ):
        if chunk_refs < 1:
            raise ValueError(f"chunk_refs must be >= 1, got {chunk_refs}")
        self.interval_seconds = interval_seconds
        self.chunk_refs = chunk_refs
        if use_processes:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self.queue = self._manager.Queue()
        else:
            # Serial sweeps emit from the parent process itself; a plain
            # in-process queue avoids spawning a manager for nothing.
            self._manager = None
            self.queue = queue_module.Queue()
        self.collector = TelemetryCollector(
            self.queue,
            detector=StallDetector(interval_seconds, stall_misses),
            on_heartbeat=on_heartbeat,
        )
        self.collector.start()

    def summary(self) -> dict:
        self.collector.drain()
        return self.collector.summary()

    def close(self) -> None:
        self.collector.stop()
        manager = self._manager
        if manager is not None:
            manager.shutdown()
            self._manager = None

    def __enter__(self) -> "SweepTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
