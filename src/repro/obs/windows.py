"""Windowed time-series metrics over a replayed reference stream.

End-of-run aggregates (the paper's Tables 2-5) cannot show *when* bus
traffic spikes or lock busy-waiting clusters.  :func:`windowed_replay`
replays a trace while snapshotting the :class:`~repro.core.stats.
SystemStats` counters every *window* references; each delta becomes one
:class:`Window` record — a per-window miss ratio, bus utilization,
memory-module busy time, lock contention, and per-PE / per-area
breakdowns.

Bucketing: windows are contiguous runs of *window* references in trace
order; the final window holds the remainder when the trace length is
not a multiple (it is never empty — a trace ending exactly on a window
boundary produces no trailing empty record).  The sum of every additive
field over all windows equals the end-of-run aggregate.

By default this is a diagnosis path: it drives
:meth:`PIMCacheSystem.access` directly (counter-for-counter identical
to :func:`repro.core.replay.replay`, which the tests assert) and leaves
the no-sink replay kernel untouched.  Passing ``kernel=`` instead
segments the trace at window boundaries and replays each segment
through the production replay kernels (``"auto"``/``"generated"``/
``"interpreted"``), so time-series metrics no longer force the slowest
path: every deferred counter fold settles per :func:`~repro.core.
replay.replay` call, which makes the segmented run — and therefore
every window record — counter-identical to the per-access loop.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.config import SimulationConfig
from repro.core.replay import ReplayBlockedError
from repro.core.replay import replay as kernel_replay
from repro.core.stats import SystemStats
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.buffer import TraceBuffer

#: Schema tag written into every window JSONL record.
WINDOW_SCHEMA = "repro.obs/window/v1"


@dataclass
class Window:
    """Counter deltas over one run of consecutive references."""

    index: int
    start: int  #: zero-based trace index of the window's first reference
    refs: int
    hits: int
    misses: int
    miss_ratio: float
    cycles: int  #: simulated elapsed cycles (slowest-PE clock advance)
    bus_cycles: int
    bus_utilization: float  #: bus_cycles / cycles (0 when no time passed)
    memory_busy_cycles: int
    lh_responses: int
    unlocks_with_waiter: int
    refs_by_area: List[int] = field(default_factory=list)
    misses_by_area: List[int] = field(default_factory=list)
    bus_cycles_by_area: List[int] = field(default_factory=list)
    pe_cycles: List[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        record = {"schema": WINDOW_SCHEMA}
        record.update(asdict(self))
        return record


class WindowedMetrics:
    """Snapshot-and-diff collector over a live :class:`SystemStats`."""

    def __init__(self, stats: SystemStats, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.windows: List[Window] = []
        self._stats = stats
        self._start = 0
        self._mark = self._capture()

    def _capture(self) -> tuple:
        stats = self._stats
        return (
            [sum(row) for row in stats.refs],
            [sum(row) for row in stats.hits],
            sum(stats.pattern_cycles),
            list(stats.bus_cycles_by_area),
            stats.memory_busy_cycles,
            stats.lh_responses,
            stats.unlocks_with_waiter,
            list(stats.pe_cycles),
        )

    def close_window(self) -> Optional[Window]:
        """Seal the counters accumulated since the last close into a
        :class:`Window`; a zero-reference delta is discarded (None)."""
        now = self._capture()
        (refs_a, hits_a, bus, bus_by_area, mem, lh, ul, pe_cycles) = self._mark
        (refs_b, hits_b, bus_n, bus_by_area_n, mem_n, lh_n, ul_n, pe_n) = now
        refs = sum(refs_b) - sum(refs_a)
        if refs == 0:
            self._mark = now
            return None
        hits = sum(hits_b) - sum(hits_a)
        elapsed = max(pe_n) - max(pe_cycles) if pe_n else 0
        bus_delta = bus_n - bus
        window = Window(
            index=len(self.windows),
            start=self._start,
            refs=refs,
            hits=hits,
            misses=refs - hits,
            miss_ratio=(refs - hits) / refs,
            cycles=elapsed,
            bus_cycles=bus_delta,
            bus_utilization=bus_delta / elapsed if elapsed > 0 else 0.0,
            memory_busy_cycles=mem_n - mem,
            lh_responses=lh_n - lh,
            unlocks_with_waiter=ul_n - ul,
            refs_by_area=[b - a for a, b in zip(refs_a, refs_b)],
            misses_by_area=[
                (rb - ra) - (hb - ha)
                for ra, rb, ha, hb in zip(refs_a, refs_b, hits_a, hits_b)
            ],
            bus_cycles_by_area=[b - a for a, b in zip(bus_by_area, bus_by_area_n)],
            pe_cycles=[b - a for a, b in zip(pe_cycles, pe_n)],
        )
        self.windows.append(window)
        self._start += refs
        self._mark = now
        return window


def windowed_replay(
    buffer: TraceBuffer,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    window: int = 4096,
    probe=None,
    check_invariants_every: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Tuple[SystemStats, List[Window]]:
    """Replay *buffer*, returning ``(stats, windows)``.

    Optionally attaches *probe* (a :class:`~repro.obs.probe.
    ProtocolProbe`) so one pass yields both the event stream and the
    time series, and runs :meth:`PIMCacheSystem.check_invariants` every
    *check_invariants_every* references (the ``REPRO_CHECK_INVARIANTS``
    debug mode).

    *kernel* (``"auto"``/``"generated"``/``"interpreted"``) replays
    window-sized trace segments through :func:`repro.core.replay.
    replay` instead of the per-access loop — the fast tier, counter-
    identical by construction (see the module docstring).  With a
    *kernel*, invariant checks run at window boundaries rather than
    every N references, and a probe observes only what the chosen
    kernel's handler calls emit (the fast kernels bypass the probe for
    bus-free hits).
    """
    if config is None:
        config = SimulationConfig()
    system = PIMCacheSystem(config, n_pes if n_pes is not None else buffer.n_pes)
    if probe is not None:
        system.attach_probe(probe)
    metrics = WindowedMetrics(system.stats, window)
    if kernel is not None:
        for start in range(0, len(buffer), window):
            segment = buffer.slice(start, min(start + window, len(buffer)))
            kernel_replay(segment, system=system, kernel=kernel)
            metrics.close_window()
            if check_invariants_every:
                system.check_invariants()
        return system.stats, metrics.windows
    access = system.access
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    in_window = 0
    index = -1
    for index, (pe, op, area, addr, flags) in enumerate(
        zip(pe_col, op_col, area_col, addr_col, flags_col)
    ):
        if access(pe, op, area, addr, 0, flags)[0] == BLOCKED:
            raise ReplayBlockedError(index, pe, op, area, addr)
        in_window += 1
        if in_window == window:
            metrics.close_window()
            in_window = 0
        if check_invariants_every and (index + 1) % check_invariants_every == 0:
            system.check_invariants()
    if in_window:
        metrics.close_window()
    return system.stats, metrics.windows


def write_windows_jsonl(
    windows: List[Window], path: Union[str, Path]
) -> Path:
    """Write the time series as JSON lines (one window per line)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for window in windows:
            handle.write(json.dumps(window.to_dict()) + "\n")
    return path
