"""The paper's four KL1 benchmarks, re-implemented in FGHC.

The original sources (Tick's benchmark suite) are not in the paper; the
re-implementations reproduce the documented *shape* of each workload:

* :mod:`~repro.programs.tri` — triangle peg-solitaire search: a tree of
  height ~12 expanding 36 candidate jumps per node (the paper's own
  description), essentially suspension-free, with many small tasks whose
  distribution stresses the scheduler (Tri's bus traffic is
  communication-dominated at 8 PEs).
* :mod:`~repro.programs.semi` — semigroup closure: breadth rounds of
  products filtered through membership scans; read-heavy (the paper
  measures 93 % reads) with a small working set, and stream filters that
  suspend heavily.
* :mod:`~repro.programs.puzzle` — exhaustive packing (domino tiling):
  every placement copies the board, making it the heap-heaviest
  benchmark (81 % of bus cycles from the heap in the paper).
* :mod:`~repro.programs.pascal` — Pascal's-triangle row pipeline: one
  process per row consuming its predecessor's stream as it is produced;
  suspension- and communication-heavy.

Each benchmark exposes scale presets; ``"paper"`` approaches the
original workload sizes (hundreds of thousands of reductions) and the
smaller presets keep the pure-Python emulator affordable, as DESIGN.md's
substitution table records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.programs import pascal, puzzle, semi, tri


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: FGHC source plus scale presets and an oracle."""

    name: str
    #: FGHC program text.
    source: str
    #: scale name -> query string.
    queries: Dict[str, str]
    #: The query variable holding the checkable result.
    answer_var: str
    #: scale name -> expected decoded answer (Python reference).
    expected: Dict[str, object]

    def query(self, scale: str = "small") -> str:
        try:
            return self.queries[scale]
        except KeyError:
            raise KeyError(
                f"benchmark {self.name!r} has no scale {scale!r}; "
                f"available: {sorted(self.queries)}"
            ) from None


#: Scale presets shared by all benchmarks.
SCALES = ("tiny", "small", "medium", "paper")


def _build() -> Dict[str, Benchmark]:
    registry = {}
    for module in (tri, semi, puzzle, pascal):
        benchmark = module.benchmark()
        registry[benchmark.name] = benchmark
    return registry


_REGISTRY = None


def get(name: str) -> Benchmark:
    """Look up a benchmark by name (``tri``, ``semi``, ``puzzle``,
    ``pascal``)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def names() -> Tuple[str, ...]:
    """All benchmark names, in the paper's order."""
    return ("tri", "semi", "puzzle", "pascal")
