"""Pascal: a Pascal's-triangle row pipeline.

Row ``i+1`` of Pascal's triangle is computed by a dedicated process
consuming row ``i`` *as it is produced*: the rows are streams, and every
``nextrow`` process suspends at its input's unbound tail until the
upstream process extends it.  All ``N`` row processes are spawned up
front, so the machine runs a deep producer/consumer pipeline — the
stream-AND-parallel style Section 2.1 describes — making Pascal the
suspension- and communication-heavy benchmark of the suite (the paper
reports 17 681 suspensions and a 25 % communication share of bus
cycles).

The answer is the sum of row ``N``'s entries, ``2^(N-1)``, which also
exercises big integers for large ``N`` (the original benchmark computed
bignum rows).
"""

from __future__ import annotations

from typing import Dict

SOURCE = """
% Pascal: row I+1 is computed from row I's stream as it is produced;
% one process per row, all spawned up front.
pascal(N, Sum) :- rows(1, N, [1], Sum).

rows(I, N, Row, Sum) :- I =:= N | total(Row, 0, Sum).
rows(I, N, Row, Sum) :- I < N |
    nextrow(Row, Row2),
    I1 := I + 1,
    rows(I1, N, Row2, Sum).

% [1 | pairwise sums | 1] -- the trailing 1 comes from the [A] case.
nextrow(Row, Out) :- Out = [1|Out2], pairs(Row, Out2).

pairs([A], Out) :- Out = [A].
pairs([A, B|Rest], Out) :-
    S := A + B,
    Out = [S|Out2],
    pairs([B|Rest], Out2).

total([], Acc, Sum) :- Sum = Acc.
total([X|Xs], Acc, Sum) :-
    Acc2 := Acc + X,
    total(Xs, Acc2, Sum).

main(N, Sum) :- pascal(N, Sum).
"""


def reference(n_rows: int) -> int:
    """Python oracle: the sum of row ``n_rows`` is 2^(n_rows - 1)."""
    return 2 ** (n_rows - 1)


#: scale -> number of rows.
SCALE_ROWS: Dict[str, int] = {
    "tiny": 12,
    "small": 100,
    "medium": 160,
    "paper": 300,
}


def benchmark():
    from repro.programs import Benchmark

    return Benchmark(
        name="pascal",
        source=SOURCE,
        queries={
            scale: f"main({rows}, Sum)" for scale, rows in SCALE_ROWS.items()
        },
        answer_var="Sum",
        expected={scale: reference(rows) for scale, rows in SCALE_ROWS.items()},
    )
