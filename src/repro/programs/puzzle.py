"""Puzzle: exhaustive packing search (domino tilings).

A 2-D descendant of the classic packing-puzzle benchmark: count the ways
to tile a ``W`` x ``H`` board with dominoes.  The board is a flat list of
cells; every placement rebuilds the board list twice (one copy per
covered cell), so the workload is dominated by dynamic structure
creation — matching the paper's Puzzle, whose heap accounts for 81 % of
bus cycles and which has the largest data structures of the four
benchmarks (Section 4.4 notes its heavy swap and cache-to-cache traffic).

The search finds the first free cell, tries a horizontal and a vertical
domino there, and recurses; the two orientations are AND-parallel
subtrees.
"""

from __future__ import annotations

from typing import Dict, Tuple

SOURCE = """
% Puzzle: count domino tilings of a W x H board held as a flat cell
% list (0 = free, 1 = covered); each placement copies the board.
puzzle(W, H, Count) :-
    S := W * H,
    board(S, B),
    fill(B, W, Count).

board(0, B) :- B = [].
board(N, B) :- N > 0 | B = [0|B2], N1 := N - 1, board(N1, B2).

fill(B, W, Count) :-
    firstfree(B, 0, I),
    place(I, B, W, Count).

% No free cell: one complete tiling.
place(-1, B, W, Count) :- Count = 1.
place(I, B, W, Count) :- I >= 0 |
    hplace(I, B, W, C1),
    vplace(I, B, W, C2),
    Count := C1 + C2.

% Horizontal domino at I, I+1 (same row, next cell free).
hplace(I, B, W, C) :- (I + 1) mod W =\\= 0 |
    I1 := I + 1,
    cell(B, I1, V),
    hplace2(V, I, B, W, C).
hplace(I, B, W, C) :- (I + 1) mod W =:= 0 | C = 0.

hplace2(1, I, B, W, C) :- C = 0.
hplace2(0, I, B, W, C) :-
    I1 := I + 1,
    setcell(B, I, B1),
    setcell(B1, I1, B2),
    fill(B2, W, C).

% Vertical domino at I, I+W.
vplace(I, B, W, C) :-
    I1 := I + W,
    cell(B, I1, V),
    vplace2(V, I, B, W, C).

vplace2(1, I, B, W, C) :- C = 0.
vplace2(0, I, B, W, C) :-
    I1 := I + W,
    setcell(B, I, B1),
    setcell(B1, I1, B2),
    fill(B2, W, C).

% Index of the first free cell, or -1 when the board is full.
firstfree([], I, R) :- R = -1.
firstfree([0|Cs], I, R) :- R = I.
firstfree([1|Cs], I, R) :- I1 := I + 1, firstfree(Cs, I1, R).

% cell(B, I, V): V is cell I, or 1 (occupied) when I is off the board.
cell([], I, V) :- V = 1.
cell([C|Cs], 0, V) :- V = C.
cell([C|Cs], I, V) :- I > 0 | I1 := I - 1, cell(Cs, I1, V).

% setcell(B, I, B2): B2 is B with cell I covered (a full copy).
setcell([C|Cs], 0, B2) :- B2 = [1|Cs].
setcell([C|Cs], I, B2) :- I > 0 |
    I1 := I - 1,
    B2 = [C|B3],
    setcell(Cs, I1, B3).

main(W, H, Count) :- puzzle(W, H, Count).
"""


def reference(width: int, height: int) -> int:
    """Python oracle: the number of domino tilings of width x height."""

    def fill(board: Tuple[int, ...]) -> int:
        try:
            index = board.index(0)
        except ValueError:
            return 1
        total = 0
        # Horizontal.
        if (index + 1) % width != 0 and board[index + 1] == 0:
            nxt = list(board)
            nxt[index] = nxt[index + 1] = 1
            total += fill(tuple(nxt))
        # Vertical.
        if index + width < len(board) and board[index + width] == 0:
            nxt = list(board)
            nxt[index] = nxt[index + width] = 1
            total += fill(tuple(nxt))
        return total

    return fill(tuple([0] * (width * height)))


#: scale -> (width, height).
SCALE_PARAMS: Dict[str, Tuple[int, int]] = {
    "tiny": (3, 4),
    "small": (4, 5),
    "medium": (4, 6),
    "paper": (4, 7),
}


def benchmark():
    from repro.programs import Benchmark

    return Benchmark(
        name="puzzle",
        source=SOURCE,
        queries={
            scale: f"main({width}, {height}, Count)"
            for scale, (width, height) in SCALE_PARAMS.items()
        },
        answer_var="Count",
        expected={
            scale: reference(width, height)
            for scale, (width, height) in SCALE_PARAMS.items()
        },
    )
