"""Semi: semigroup closure.

Computes the closure of a generator set under a binary operation
(multiplication modulo ``M``), in breadth rounds: each round forms all
products of the known elements, streams them through a duplicate filter,
and appends the survivors.  The workload shape matches the paper's Semi:

* *read-heavy* — the membership scans (``mem``) walk the accumulated
  element list for every candidate, so reads dominate (the paper
  measures 93 % reads and only 3 % writes for Semi);
* *small working set* — the element list is the only live data, which is
  why Semi is the one benchmark captured by even the smallest caches in
  Figure 2;
* *suspension-heavy* — the filter consumes the product stream while the
  producers are still generating it, suspending at the stream tail
  (Semi has the paper's highest suspension count).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

SOURCE = """
% Semi: closure of generators under multiplication mod M, in breadth
% rounds; the products stream through a duplicate filter.  The
% membership scans (the bulk of the work) run AND-parallel: checks/4
% spawns one mem/3 scan per candidate, and dedupe/4 consumes the
% verdict stream, catching within-round duplicates against the short
% kept list.
semi(M, R, Count) :- closure(R, M, [2, 3], Count).

closure(0, M, All, Count) :- len(All, 0, Count).
closure(R, M, All, Count) :- R > 0 |
    prods(All, All, M, Cands),
    checks(Cands, All, Verdicts),
    dedupe(Verdicts, [], New),
    joinup(R, M, All, New, Count).

% When a round yields nothing new the closure is complete.
joinup(R, M, All, [], Count) :- len(All, 0, Count).
joinup(R, M, All, [N|Ns], Count) :-
    R1 := R - 1,
    app([N|Ns], All, All2),
    closure(R1, M, All2, Count).

% All products A*B for A in the first list, B in the second.
prods([], Bs, M, Out) :- Out = [].
prods([A|As], Bs, M, Out) :-
    row(A, Bs, M, Out, Rest),
    prods(As, Bs, M, Rest).

row(A, [], M, Out, Rest) :- Out = Rest.
row(A, [B|Bs], M, Out, Rest) :-
    C := (A * B) mod M,
    Out = [C|Out2],
    row(A, Bs, M, Out2, Rest).

% One parallel membership scan per candidate.
checks([], All, Out) :- Out = [].
checks([C|Cs], All, Out) :-
    mem(C, All, Seen),
    Out = [v(C, Seen)|Out2],
    checks(Cs, All, Out2).

% Sequentially keep the candidates that were unknown and are not
% within-round duplicates (Kept stays short, so this scan is cheap).
dedupe([], Kept, New) :- New = [].
dedupe([v(C, Seen)|Vs], Kept, New) :-
    dedupe2(Seen, C, Vs, Kept, New).

dedupe2(yes, C, Vs, Kept, New) :- dedupe(Vs, Kept, New).
dedupe2(no, C, Vs, Kept, New) :-
    mem(C, Kept, Again),
    dedupe3(Again, C, Vs, Kept, New).

dedupe3(yes, C, Vs, Kept, New) :- dedupe(Vs, Kept, New).
dedupe3(no, C, Vs, Kept, New) :-
    New = [C|New2],
    dedupe(Vs, [C|Kept], New2).

mem(X, [], R) :- R = no.
mem(X, [X|Ys], R) :- R = yes.
mem(X, [Y|Ys], R) :- X =\\= Y | mem(X, Ys, R).

app([], Ys, Z) :- Z = Ys.
app([X|Xs], Ys, Z) :- Z = [X|Z2], app(Xs, Ys, Z2).

len([], N, R) :- R = N.
len([X|Xs], N, R) :- N1 := N + 1, len(Xs, N1, R).

main(M, R, Count) :- semi(M, R, Count).
"""


def reference(modulus: int, rounds: int) -> int:
    """Python oracle: closure size of {2, 3} under ``(a*b) mod modulus``
    after at most *rounds* breadth rounds."""
    all_elements: List[int] = [2, 3]
    for _ in range(rounds):
        known = list(all_elements)
        new: List[int] = []
        seen = set(known)
        for a in known:
            for b in known:
                c = (a * b) % modulus
                if c not in seen:
                    seen.add(c)
                    new.append(c)
        if not new:
            break
        # The FGHC filter prepends survivors to its working set, and the
        # round appends New in discovery order; only the *size* matters.
        all_elements = new + all_elements if False else all_elements + new
    return len(all_elements)


#: scale -> (modulus, rounds).
SCALE_PARAMS: Dict[str, Tuple[int, int]] = {
    "tiny": (23, 2),
    "small": (47, 4),
    "medium": (101, 4),
    "paper": (251, 5),
}


def benchmark():
    from repro.programs import Benchmark

    return Benchmark(
        name="semi",
        source=SOURCE,
        queries={
            scale: f"main({modulus}, {rounds}, Count)"
            for scale, (modulus, rounds) in SCALE_PARAMS.items()
        },
        answer_var="Count",
        expected={
            scale: reference(modulus, rounds)
            for scale, (modulus, rounds) in SCALE_PARAMS.items()
        },
    )
