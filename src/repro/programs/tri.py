"""Tri: triangle peg-solitaire search.

The classic 15-hole triangular board; a move jumps a peg over an
adjacent peg into an empty hole, removing the jumped peg.  The paper
describes Tri as "a search tree of height 12 with a branch factor of 36
at each node" — 36 is exactly the number of (from, over, to) jump lines
on the 15-hole board, all of which are tried at every node.

The board is a 15-bit integer (bit *i* set = peg in hole *i*); jump
legality tests are pure arithmetic in the guards, so each node's 36
candidate expansions are almost suspension-free — Tri's parallelism
comes from distributing the many small subtree tasks, which is why its
bus traffic is dominated by scheduler communication at 8 PEs (paper
Figure 3 / Table 2).

``tri(Board, Pegs, Stop, N)`` counts the jump sequences that reduce the
board to ``Stop`` pegs; ``Stop`` is the scale knob (the full game runs
to one peg).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Hole index of each (row, column) on the triangular board.
_INDEX = {}
_counter = 0
for _row in range(5):
    for _column in range(_row + 1):
        _INDEX[(_row, _column)] = _counter
        _counter += 1

#: The three collinear directions on a triangular grid.
_DIRECTIONS = ((0, 1), (1, 0), (1, 1))


def moves() -> List[Tuple[int, int, int]]:
    """All 36 (from, over, to) jump lines, both directions."""
    result = []
    for (row, column), start in _INDEX.items():
        for d_row, d_column in _DIRECTIONS:
            over = (row + d_row, column + d_column)
            to = (row + 2 * d_row, column + 2 * d_column)
            if over in _INDEX and to in _INDEX:
                result.append((start, _INDEX[over], _INDEX[to]))
                result.append((_INDEX[to], _INDEX[over], start))
    return result


#: Initial board: all 15 pegs except the top hole.
INITIAL_BOARD = (1 << 15) - 1 - 1  # hole at position 0
INITIAL_PEGS = 14


def source() -> str:
    """Generate the FGHC program (one ``jump`` clause per move line)."""
    lines = [
        "% Tri: triangle peg solitaire --- count jump sequences down to",
        "% Stop pegs.  Board is a 15-bit integer; 36 jump lines.",
        "tri(B, P, Stop, N) :- P =< Stop | N = 1.",
        "tri(B, P, Stop, N) :- P > Stop | expand(36, B, P, Stop, N).",
        "",
        "expand(0, B, P, Stop, N) :- N = 0.",
        "expand(I, B, P, Stop, N) :- I > 0 |",
        "    jump(I, B, P, Stop, N1),",
        "    I1 := I - 1,",
        "    expand(I1, B, P, Stop, N2),",
        "    N := N1 + N2.",
        "",
    ]
    for number, (origin, over, target) in enumerate(moves(), start=1):
        from_bit = 1 << origin
        over_bit = 1 << over
        to_bit = 1 << target
        lines.append(
            f"jump({number}, B, P, Stop, N) :- "
            f"(B / {from_bit}) mod 2 =:= 1, "
            f"(B / {over_bit}) mod 2 =:= 1, "
            f"(B / {to_bit}) mod 2 =:= 0 |"
        )
        lines.append(
            f"    B1 := B - {from_bit} - {over_bit} + {to_bit}, "
            f"P1 := P - 1, tri(B1, P1, Stop, N)."
        )
    lines.append("jump(I, B, P, Stop, N) :- otherwise | N = 0.")
    lines.append("")
    lines.append("main(Stop, N) :- tri(%d, %d, Stop, N)." % (INITIAL_BOARD, INITIAL_PEGS))
    return "\n".join(lines)


def reference(stop: int) -> int:
    """Python oracle: the number of jump sequences reaching *stop* pegs."""
    move_table = moves()

    def count(board: int, pegs: int) -> int:
        if pegs <= stop:
            return 1
        total = 0
        for origin, over, target in move_table:
            from_bit = 1 << origin
            over_bit = 1 << over
            to_bit = 1 << target
            if board & from_bit and board & over_bit and not board & to_bit:
                total += count(board - from_bit - over_bit + to_bit, pegs - 1)
        return total

    return count(INITIAL_BOARD, INITIAL_PEGS)


#: scale -> Stop (pegs remaining when the search is cut off).
SCALE_STOPS: Dict[str, int] = {"tiny": 12, "small": 10, "medium": 9, "paper": 8}


def benchmark():
    from repro.programs import Benchmark

    return Benchmark(
        name="tri",
        source=source(),
        queries={
            scale: f"main({stop}, N)" for scale, stop in SCALE_STOPS.items()
        },
        answer_var="N",
        expected={
            scale: reference(stop) for scale, stop in SCALE_STOPS.items()
        },
    )
