"""Simulation-as-a-service: streaming replay, checkpoints, jobs.

Three layers, each usable on its own:

* :mod:`repro.serve.stream` — constant-memory replay over chunked
  trace files (:mod:`repro.trace.io`'s ``PIMTRACEC`` container),
  bit-identical to in-memory replay for flat and clustered systems.
* :mod:`repro.serve.checkpoint` — :func:`snapshot`/:func:`restore` of
  full simulator state (cache arrays, lock directories, directory
  entries, clocks, every ledger counter), schema-validated as
  ``repro.obs/checkpoint/v1``.
* :mod:`repro.serve.jobs` — a persistent job ledger plus a worker
  monitor: submit config+trace, run asynchronously with periodic
  checkpoints and heartbeats, retry from the last checkpoint when a
  worker dies, fetch schema-validated results.  ``repro serve`` is the
  CLI front end.
"""

from repro.serve.checkpoint import (  # noqa: F401
    read_checkpoint,
    restore,
    snapshot,
    write_checkpoint,
)
from repro.serve.jobs import JobServer, JobStore  # noqa: F401
from repro.serve.stream import chunk_stream, replay_stream  # noqa: F401
