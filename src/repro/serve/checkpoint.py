"""Snapshot and restore of full simulator state.

A checkpoint captures *everything* a replay's future depends on: every
cache line (tag, state, area, LRU stamp, optional data), per-cache LRU
clocks, lock-directory entries and their high-water marks, the shared
memory image, the lock accelerator maps, every ``SystemStats`` counter
(per-PE clocks included), the interconnect timeline, the home-node
directory's entry table, and — for clustered systems — each cluster's
network interface (link timeline plus counters).  The identity the
test-suite and fuzzing oracle enforce: *run N refs* produces exactly
the same state and counters as *run k, snapshot, restore, run N−k*.

Checkpoints are plain JSON (schema ``repro.obs/checkpoint/v1``,
validated by :func:`repro.obs.schema.validate_checkpoint`), so they
survive a process boundary and a ``json`` round trip by construction.

Restore builds a *fresh* system from the embedded config and then
mutates state in place.  That ordering is load-bearing twice over:

* ``SystemStats`` lists are updated with slice assignment and matrix
  element assignment, never replaced — live systems hold aliases into
  them (``system._pe_cycles``, the interconnect's ``_stats``, and the
  cluster network wrappers' closed-over ``pattern_counts``).
* The directory's entry table is restored *exactly as serialized*,
  never recomputed from cache residency: the directory intentionally
  under-promotes (an ``E`` entry over an ``EM`` copy is legal), so a
  rebuilt table could be a different — equally legal but behaviorally
  distinct — machine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.cache import Cache, CacheLine
from repro.core.config import SimulationConfig
from repro.core.states import CacheState, LockState
from repro.core.stats import N_AREAS, N_OPS, SystemStats
from repro.core.system import PIMCacheSystem
from repro.cluster.network import NetworkStats
from repro.cluster.system import ClusterCacheSystem, ClusteredSystem
from repro.obs.manifest import config_from_dict, config_to_dict
from repro.obs.schema import CHECKPOINT_SCHEMA, validate_checkpoint

#: Stats scalars beyond the summed fields (restored by plain setattr).
_STAT_SCALARS = SystemStats._SUM_FIELDS + ("lock_dir_max_occupancy",)


def _stats_state(stats: SystemStats) -> dict:
    return {
        "refs": [list(row) for row in stats.refs],
        "hits": [list(row) for row in stats.hits],
        "pattern_counts": list(stats.pattern_counts),
        "pattern_cycles": list(stats.pattern_cycles),
        "bus_cycles_by_area": list(stats.bus_cycles_by_area),
        "command_counts": list(stats.command_counts),
        "pe_cycles": list(stats.pe_cycles),
        "scalars": {name: getattr(stats, name) for name in _STAT_SCALARS},
    }


def _restore_stats(stats: SystemStats, state: dict) -> None:
    for a in range(N_AREAS):
        for o in range(N_OPS):
            stats.refs[a][o] = state["refs"][a][o]
            stats.hits[a][o] = state["hits"][a][o]
    stats.pattern_counts[:] = state["pattern_counts"]
    stats.pattern_cycles[:] = state["pattern_cycles"]
    stats.bus_cycles_by_area[:] = state["bus_cycles_by_area"]
    stats.command_counts[:] = state["command_counts"]
    stats.pe_cycles[:] = state["pe_cycles"]
    for name, value in state["scalars"].items():
        setattr(stats, name, value)


def _cache_state(cache: Cache) -> dict:
    return {
        "tick": cache._tick,
        # Copy the data words: ``line.data`` is mutated in place by the
        # system, and a snapshot that aliases live state silently decays
        # — the JSON round trip of persisted checkpoints used to mask
        # this, but the in-process rollback path reuses the dict as-is.
        "lines": [
            [
                block,
                int(line.state),
                line.area,
                line.lru,
                list(line.data) if line.data is not None else None,
            ]
            for block, line in sorted(cache.lines())
        ],
    }


def _restore_cache(cache: Cache, state: dict) -> None:
    if cache.occupancy():
        raise ValueError("restore target cache is not empty")
    for block, line_state, area, lru, data in state["lines"]:
        tag = block >> cache._set_shift
        line = CacheLine(
            tag,
            CacheState(line_state),
            area,
            lru,
            list(data) if data is not None else None,
        )
        cache._sets[block & cache._set_mask][tag] = line
        cache._lines[block] = line
    cache._tick = state["tick"]


def _system_state(system: PIMCacheSystem) -> dict:
    interconnect: dict = {"free_at": system.interconnect.free_at}
    entries = getattr(system.interconnect, "entries", None)
    if entries is not None:
        interconnect["entries"] = [
            [block, int(entry.state), entry.owner, entry.sharers]
            for block, entry in sorted(entries.items())
        ]
    state = {
        "caches": [_cache_state(cache) for cache in system.caches],
        "locks": [
            {
                "entries": sorted(
                    [addr, int(lock_state)]
                    for addr, lock_state in lock.entries.items()
                ),
                "max_occupancy": lock.max_occupancy,
                "overflows": lock.overflows,
            }
            for lock in system.lock_directories
        ],
        "memory": sorted(
            [addr, value] for addr, value in system.memory.items()
        ),
        "locked_words": [
            [block, [list(pair) for pair in pairs]]
            for block, pairs in sorted(system._locked_words.items())
        ],
        "waiting": sorted(
            [pe, block] for pe, block in system._waiting.items()
        ),
        "stats": _stats_state(system.stats),
        "interconnect": interconnect,
    }
    if isinstance(system, ClusterCacheSystem):
        state["cluster_index"] = system.cluster_index
        net = system.network
        net_stats = {
            name: getattr(net.stats, name)
            for name in NetworkStats._SUM_FIELDS
        }
        net_stats["forwards_by_home"] = list(net.stats.forwards_by_home)
        state["network"] = {
            "link_free_at": net.link_free_at,
            "stats": net_stats,
        }
    return state


def _restore_system(system: PIMCacheSystem, state: dict) -> None:
    from repro.core.protocol.directory import DirectoryEntry, DirState

    for cache, cache_state in zip(system.caches, state["caches"]):
        _restore_cache(cache, cache_state)
    # The presence map is derived state: rebuild it from the restored
    # lines rather than trusting a second serialized copy of the truth.
    holders = system._holders
    holders.clear()
    for pe, cache in enumerate(system.caches):
        for block, _line in cache.lines():
            holder_set = holders.get(block)
            if holder_set is None:
                holders[block] = {pe}
            else:
                holder_set.add(pe)
    for lock, lock_state in zip(system.lock_directories, state["locks"]):
        lock.entries = {
            addr: LockState(value) for addr, value in lock_state["entries"]
        }
        lock.max_occupancy = lock_state["max_occupancy"]
        lock.overflows = lock_state["overflows"]
    system.memory = {addr: value for addr, value in state["memory"]}
    system._locked_words = {
        block: [tuple(pair) for pair in pairs]
        for block, pairs in state["locked_words"]
    }
    system._waiting = {pe: block for pe, block in state["waiting"]}
    _restore_stats(system.stats, state["stats"])
    system.interconnect.free_at = state["interconnect"]["free_at"]
    dir_entries = state["interconnect"].get("entries")
    if dir_entries is not None:
        system.interconnect.entries = {
            block: DirectoryEntry(DirState(dir_state), owner, sharers)
            for block, dir_state, owner, sharers in dir_entries
        }
    network = state.get("network")
    if network is not None:
        net = system.network
        net.link_free_at = network["link_free_at"]
        for name in NetworkStats._SUM_FIELDS:
            setattr(net.stats, name, network["stats"][name])
        net.stats.forwards_by_home[:] = network["stats"]["forwards_by_home"]


def snapshot(system) -> dict:
    """Capture *system* (flat or clustered) as a JSON-ready checkpoint."""
    if isinstance(system, ClusteredSystem):
        return {
            "schema": CHECKPOINT_SCHEMA,
            "kind": "clustered",
            "config": config_to_dict(system.config),
            "n_pes": system.n_pes,
            "systems": [_system_state(sub) for sub in system.systems],
        }
    return {
        "schema": CHECKPOINT_SCHEMA,
        "kind": "flat",
        "config": config_to_dict(system.config),
        "n_pes": system.n_pes,
        "systems": [_system_state(system)],
    }


def restore(checkpoint: dict):
    """Rebuild a live system from a :func:`snapshot` checkpoint.

    Validates the checkpoint first, then constructs a fresh system from
    the embedded config and surgically restores every piece of state.
    The result is indistinguishable from the snapshotted system: the
    replay suffix it produces is bit-identical.
    """
    validate_checkpoint(checkpoint)
    config: SimulationConfig = config_from_dict(checkpoint["config"])
    n_pes = checkpoint["n_pes"]
    if checkpoint["kind"] == "clustered":
        system = ClusteredSystem(config, n_pes)
        for sub, state in zip(system.systems, checkpoint["systems"]):
            _restore_system(sub, state)
        return system
    state = checkpoint["systems"][0]
    if "cluster_index" in state:
        flat = ClusterCacheSystem(config, n_pes, state["cluster_index"])
    else:
        flat = PIMCacheSystem(config, n_pes)
    _restore_system(flat, state)
    return flat


def restore_into(system, checkpoint: dict) -> None:
    """Restore a :func:`snapshot` into an *existing* live system, in place.

    This is the speculative-rollback primitive
    (:mod:`repro.core.speculative`): a conflicting batch is undone by
    rewinding the very system object the replay loop holds, so every
    alias into it (``stats.pe_cycles``, the interconnect's ``_stats``,
    bound handler methods) stays valid.  The checkpoint must have been
    taken from *this* system (same shape): config and PE count are not
    re-validated here, and unlike :func:`restore` no fresh system is
    built.
    """
    if isinstance(system, ClusteredSystem):
        for sub, state in zip(system.systems, checkpoint["systems"]):
            _restore_system_into(sub, state)
        return
    _restore_system_into(system, checkpoint["systems"][0])


def _restore_system_into(system: PIMCacheSystem, state: dict) -> None:
    for cache in system.caches:
        cache.flush()
    entries = getattr(system.interconnect, "entries", None)
    if entries is not None:
        entries.clear()
    _restore_system(system, state)


def write_checkpoint(checkpoint: dict, path: Union[str, Path]) -> Path:
    """Atomically persist a checkpoint (write-temp + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(checkpoint, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def read_checkpoint(path: Union[str, Path]) -> dict:
    """Load and validate a persisted checkpoint."""
    checkpoint = json.loads(Path(path).read_text())
    validate_checkpoint(checkpoint)
    return checkpoint
