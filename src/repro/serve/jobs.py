"""The simulation job service: a persistent ledger plus worker monitor.

A *job* is one simulation — config + trace + replay options — owned by
a :class:`JobStore` directory:

.. code-block:: text

    <root>/
      traces/<sha256-prefix>.trace     content-addressed chunked traces
      jobs/<id>/job.json               the ledger record (repro.obs/job/v1)
      jobs/<id>/checkpoint.json        last checkpoint (repro.obs/checkpoint/v1)
      jobs/<id>/heartbeats.jsonl       windowed progress (repro.obs/heartbeat/v1)
      jobs/<id>/result.json            final stats + provenance manifest

Lifecycle: ``queued`` → ``running`` → (``checkpointed`` ⇄ ``running``)
→ ``done`` | ``failed``.  :class:`JobServer` runs each job's replay in
a separate process and watches its exit code; an abnormal death (e.g.
SIGKILL mid-chunk) is surfaced as a structured error and the job is
retried *from its last checkpoint* up to ``max_retries`` times — the
final counters are bit-identical to an uninterrupted run because
checkpoints land on chunk boundaries and streaming replay composes
(see :mod:`repro.serve.stream` and :mod:`repro.serve.checkpoint`).

Traces are stored content-addressed, so resubmitting the same trace
under a different config reuses the bytes already on disk — the
job-fleet analogue of the ``Workloads`` trace cache.

Fault injection for tests and CI: when ``REPRO_SERVE_FAULT_KILL_AFTER``
is set to *N*, a worker on its **first** attempt SIGKILLs itself after
replaying N chunks (a real kill signal, mid-stream); retries run clean.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import time
from pathlib import Path
from typing import List, Optional, Union

from repro.core.config import SimulationConfig
from repro.obs.manifest import build_manifest, config_from_dict
from repro.obs.schema import JOB_SCHEMA, JOB_STATES, validate_job
from repro.obs.telemetry import heartbeat
from repro.obs.schema import validate_checkpoint
from repro.serve.checkpoint import restore, snapshot
from repro.serve.stream import replay_stream, stream_result
from repro.trace.buffer import TraceBuffer
from repro.trace.io import iter_trace_chunks, write_trace_chunked

#: Environment hook: SIGKILL the worker after N chunks (first attempt
#: only).  Exists so the retry path is exercised deterministically.
FAULT_KILL_ENV = "REPRO_SERVE_FAULT_KILL_AFTER"

DEFAULT_CHUNK_REFS = 8_192
DEFAULT_CHECKPOINT_EVERY = 4
DEFAULT_MAX_RETRIES = 2


class JobError(RuntimeError):
    """A job could not be submitted, run, or fetched."""


class JobStore:
    """Directory-backed job ledger (safe to reopen across processes)."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self.jobs_dir = self.root / "jobs"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -- trace storage --------------------------------------------------

    def store_trace(
        self,
        trace: Union[TraceBuffer, str, Path],
        chunk_refs: int = DEFAULT_CHUNK_REFS,
    ) -> str:
        """Store *trace* content-addressed; returns its key.

        An in-memory buffer is serialized to the chunked container
        first (so workers can stream it); a path is copied verbatim
        when already chunked, converted otherwise.  Identical content
        maps to the same key, so repeated submissions share bytes.
        """
        if isinstance(trace, TraceBuffer):
            scratch = self.traces_dir / f".incoming-{os.getpid()}.trace"
            write_trace_chunked(trace, scratch, chunk_refs=chunk_refs)
        else:
            source = Path(trace)
            from repro.trace.io import is_chunked_trace, read_trace

            if is_chunked_trace(source):
                scratch = self.traces_dir / f".incoming-{os.getpid()}.trace"
                scratch.write_bytes(source.read_bytes())
            else:
                scratch = self.traces_dir / f".incoming-{os.getpid()}.trace"
                write_trace_chunked(
                    read_trace(source), scratch, chunk_refs=chunk_refs
                )
        digest = hashlib.sha256(scratch.read_bytes()).hexdigest()[:24]
        key = f"{digest}.trace"
        final = self.traces_dir / key
        if final.exists():
            scratch.unlink()
        else:
            scratch.replace(final)
        return key

    def trace_path(self, key: str) -> Path:
        return self.traces_dir / key

    # -- the ledger -----------------------------------------------------

    def _job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def _job_file(self, job_id: str) -> Path:
        return self._job_dir(job_id) / "job.json"

    def submit(
        self,
        config: SimulationConfig,
        trace: Union[TraceBuffer, str, Path],
        n_pes: Optional[int] = None,
        chunk_refs: int = DEFAULT_CHUNK_REFS,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        max_retries: int = DEFAULT_MAX_RETRIES,
        kernel: Optional[str] = None,
        seed: Optional[int] = None,
        mode: Optional[str] = None,
        batch_refs: Optional[int] = None,
        signature_bits: Optional[int] = None,
    ) -> str:
        """Enqueue one simulation; returns its job id.

        *mode*, *batch_refs* and *signature_bits* select the coherence
        execution mode (see :func:`repro.core.replay.replay`); they are
        recorded in the ledger so retried workers replay under exactly
        the submitted mode.
        """
        if chunk_refs < 1 or checkpoint_every < 1 or max_retries < 1:
            raise JobError(
                "chunk_refs, checkpoint_every and max_retries must be >= 1"
            )
        if mode is not None and mode not in ("pessimistic", "lazypim"):
            raise JobError(f"unknown replay mode {mode!r}")
        trace_key = self.store_trace(trace, chunk_refs=chunk_refs)
        if n_pes is None:
            if isinstance(trace, TraceBuffer):
                n_pes = trace.n_pes
            else:
                n_pes = next(
                    iter_trace_chunks(self.trace_path(trace_key))
                ).n_pes
        sequence = len(list(self.jobs_dir.iterdir())) + 1
        job_id = f"{sequence:04d}-{config.protocol}-{trace_key[:8]}"
        record = {
            "schema": JOB_SCHEMA,
            "id": job_id,
            "state": "queued",
            "trace": trace_key,
            "n_pes": n_pes,
            "chunk_refs": chunk_refs,
            "checkpoint_every": checkpoint_every,
            "retries": 0,
            "max_retries": max_retries,
            "kernel": kernel,
            "mode": mode,
            "batch_refs": batch_refs,
            "signature_bits": signature_bits,
            "error": None,
            "manifest": build_manifest(
                config=config,
                seed=seed,
                trace_cache_key=trace_key,
                command="repro serve submit",
                extra={"kind": "serve-job"},
            ),
        }
        validate_job(record)
        self._job_dir(job_id).mkdir(parents=True, exist_ok=True)
        self._write_record(job_id, record)
        return job_id

    def _write_record(self, job_id: str, record: dict) -> None:
        path = self._job_file(job_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)

    def job(self, job_id: str) -> dict:
        path = self._job_file(job_id)
        if not path.exists():
            raise JobError(f"unknown job {job_id!r}")
        return json.loads(path.read_text())

    def jobs(self) -> List[dict]:
        """Every ledger record, in submission order."""
        return [
            json.loads((entry / "job.json").read_text())
            for entry in sorted(self.jobs_dir.iterdir())
            if (entry / "job.json").exists()
        ]

    def update(self, job_id: str, **fields) -> dict:
        record = self.job(job_id)
        record.update(fields)
        if record["state"] not in JOB_STATES:
            raise JobError(f"unknown job state {record['state']!r}")
        validate_job(record)
        self._write_record(job_id, record)
        return record

    # -- per-job artifacts ----------------------------------------------

    def checkpoint_path(self, job_id: str) -> Path:
        return self._job_dir(job_id) / "checkpoint.json"

    def checkpoint(self, job_id: str) -> Optional[dict]:
        """The job's last checkpoint: progress markers plus the
        schema-validated simulator snapshot under ``"state"``."""
        path = self.checkpoint_path(job_id)
        if not path.exists():
            return None
        record = json.loads(path.read_text())
        validate_checkpoint(record["state"])
        return record

    def write_job_checkpoint(self, job_id: str, record: dict) -> None:
        path = self.checkpoint_path(job_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
        tmp.replace(path)

    def heartbeats(self, job_id: str) -> List[dict]:
        """The job's windowed progress records, oldest first."""
        path = self._job_dir(job_id) / "heartbeats.jsonl"
        if not path.exists():
            return []
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    def append_heartbeat(self, job_id: str, record: dict) -> None:
        path = self._job_dir(job_id) / "heartbeats.jsonl"
        with path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def result(self, job_id: str) -> Optional[dict]:
        path = self._job_dir(job_id) / "result.json"
        return json.loads(path.read_text()) if path.exists() else None

    def write_result(self, job_id: str, result: dict) -> None:
        path = self._job_dir(job_id) / "result.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)


# ---------------------------------------------------------------------------
# The worker (runs in its own process; must be module-level picklable).


def _job_worker(root: str, job_id: str) -> None:
    store = JobStore(root)
    record = store.job(job_id)
    config = config_from_dict(record["manifest"]["config"])
    trace_path = store.trace_path(record["trace"])
    checkpoint_every = record["checkpoint_every"]
    kernel = record["kernel"]

    kill_after = None
    if record["retries"] == 0:
        raw = os.environ.get(FAULT_KILL_ENV, "")
        if raw:
            kill_after = int(raw)

    system = None
    start_chunk = 0
    saved = store.checkpoint(job_id)
    if saved is not None:
        system = restore(saved["state"])
        start_chunk = saved["chunks_done"]

    refs_total = _trace_refs(trace_path)
    started = time.monotonic()
    progress = {
        "seq": len(store.heartbeats(job_id)),
        "refs_done": saved["refs_done"] if saved else 0,
        "hits_done": saved["hits_done"] if saved else 0,
        "replayed": 0,
    }

    def on_chunk(index: int, _refs: int, live_system) -> None:
        done_index = start_chunk + index + 1
        stats = stream_result(live_system)
        stats = stats.stats if hasattr(stats, "stats") else stats
        refs_done = stats.total_refs
        hits_done = stats.total_hits
        # Windowed metrics: this chunk's miss ratio, not the cumulative.
        window_refs = refs_done - progress["refs_done"]
        window_hits = hits_done - progress["hits_done"]
        window_miss = (
            (window_refs - window_hits) / window_refs if window_refs else 0.0
        )
        elapsed = time.monotonic() - started
        store.append_heartbeat(
            job_id,
            heartbeat(
                worker=os.getpid(),
                seq=progress["seq"],
                point=done_index,
                points_done=done_index,
                refs_done=refs_done,
                refs_total=refs_total,
                refs_per_sec=(
                    (refs_done - (saved["refs_done"] if saved else 0))
                    / elapsed
                    if elapsed > 0
                    else 0.0
                ),
                miss_ratio=window_miss,
            ),
        )
        progress["seq"] += 1
        progress["refs_done"] = refs_done
        progress["hits_done"] = hits_done
        progress["replayed"] += 1
        if done_index % checkpoint_every == 0:
            store.write_job_checkpoint(
                job_id,
                {
                    "state": snapshot(live_system),
                    "chunks_done": done_index,
                    "refs_done": refs_done,
                    "hits_done": hits_done,
                },
            )
            store.update(job_id, state="checkpointed")
        if kill_after is not None and progress["replayed"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def chunks():
        for index, chunk in enumerate(iter_trace_chunks(trace_path)):
            # A resumed worker still reads the prefix (the container is
            # sequential) but replays nothing until the checkpoint.
            if index >= start_chunk:
                yield chunk

    result = replay_stream(
        chunks(),
        config=config,
        n_pes=record["n_pes"],
        kernel=kernel,
        system=system,
        on_chunk=on_chunk,
        mode=record.get("mode"),
        batch_refs=record.get("batch_refs"),
        signature_bits=record.get("signature_bits"),
    )
    stats_dict = result.as_dict()
    store.append_heartbeat(
        job_id,
        heartbeat(
            worker=os.getpid(),
            seq=progress["seq"],
            point=start_chunk + progress["replayed"],
            points_done=start_chunk + progress["replayed"],
            refs_done=refs_total,
            refs_total=refs_total,
            refs_per_sec=0.0,
            miss_ratio=0.0,
            done=True,
        ),
    )
    store.write_result(
        job_id,
        {
            "job": job_id,
            "stats": stats_dict,
            "clustered": hasattr(result, "per_cluster"),
            "manifest": record["manifest"],
        },
    )
    store.update(job_id, state="done")


def _trace_refs(path: Path) -> int:
    """Total refs recorded in a chunked trace's end marker.

    The marker is the file's last line, so this is one small tail read
    rather than a full pass.  A malformed tail falls back to streaming
    the chunks (which raises the precise :class:`TraceFormatError`)."""
    with path.open("rb") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        fh.seek(max(0, size - 128))
        tail = fh.read().splitlines()
    for line in reversed(tail):
        parts = line.split()
        if len(parts) == 3 and parts[0] == b"E":
            try:
                return int(parts[2])
            except ValueError:
                break
    return sum(len(chunk) for chunk in iter_trace_chunks(path))


# ---------------------------------------------------------------------------
# The monitor.


class JobServer:
    """Runs ledger jobs in worker processes and supervises them.

    One job at a time (jobs themselves fan out via clusters and the
    sweep pool); the value added here is surviving worker death.
    """

    def __init__(self, store: JobStore, poll_seconds: float = 0.05):
        self.store = store
        self.poll_seconds = poll_seconds

    def run_pending(self) -> List[str]:
        """Run every queued/checkpointed job to completion or failure."""
        finished = []
        for record in self.store.jobs():
            if record["state"] in ("queued", "checkpointed"):
                self.run_job(record["id"])
                finished.append(record["id"])
        return finished

    def run_job(self, job_id: str) -> dict:
        """Drive one job to ``done`` or ``failed``; returns the record."""
        record = self.store.job(job_id)
        if record["state"] in ("done", "failed"):
            return record
        context = multiprocessing.get_context()
        while True:
            self.store.update(job_id, state="running")
            worker = context.Process(
                target=_job_worker, args=(str(self.store.root), job_id)
            )
            worker.start()
            worker.join()
            record = self.store.job(job_id)
            if record["state"] == "done" and worker.exitcode == 0:
                return record
            # Abnormal death (negative exitcode = killed by signal) or
            # an exception that escaped the worker.
            detail = (
                f"worker pid {worker.pid} exited with "
                f"{worker.exitcode}"
                + (
                    f" (signal {-worker.exitcode})"
                    if worker.exitcode and worker.exitcode < 0
                    else ""
                )
            )
            has_checkpoint = self.store.checkpoint_path(job_id).exists()
            if record["retries"] < record["max_retries"]:
                self.store.update(
                    job_id,
                    state="checkpointed" if has_checkpoint else "queued",
                    retries=record["retries"] + 1,
                    error={
                        "kind": "worker-death",
                        "detail": detail + "; retrying from "
                        + ("last checkpoint" if has_checkpoint else "scratch"),
                    },
                )
                continue
            return self.store.update(
                job_id,
                state="failed",
                error={
                    "kind": "worker-death",
                    "detail": detail + f"; gave up after "
                    f"{record['retries']} retries",
                },
            )
