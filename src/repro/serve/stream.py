"""Constant-memory streaming replay over chunked traces.

The identity this module rides on: ``replay()`` with a persistent
``system=`` argument is *sequentially composable* — replaying a trace
chunk-by-chunk into one system produces bit-identical counters to one
in-memory replay, for both kernels (the interpreted loop seeds its LRU
clock from the caches and broadcasts it back after every segment; the
generated kernel's windowed tier already replays in segments).  For
clustered systems the ``split_trace`` determinism argument
(docs/CLUSTER.md) composes with chunking: splitting each chunk and
replaying every shard into its cluster's persistent system is the same
per-cluster subsequence an interleaved run would produce, so
cluster-parallel streaming merges deterministically too.

Peak memory is therefore bounded by one chunk (plus live simulator
state), never by the trace: a billion-reference trace replays through
the same few hundred kilobytes of buffer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.core.config import SimulationConfig
from repro.core.replay import replay
from repro.core.stats import SystemStats
from repro.core.system import PIMCacheSystem
from repro.cluster.replay import split_trace
from repro.cluster.system import ClusteredSystem, ClusterStats
from repro.trace.buffer import TraceBuffer
from repro.trace.io import (
    DEFAULT_CHUNK_REFS,
    is_chunked_trace,
    iter_trace_chunks,
    read_trace,
)

ChunkSource = Union[str, Path, TraceBuffer, Iterable[TraceBuffer]]


def chunk_stream(
    source: ChunkSource, chunk_refs: int = DEFAULT_CHUNK_REFS
) -> Iterator[TraceBuffer]:
    """Normalize *source* into an iterator of trace chunks.

    * A path to a chunked (``PIMTRACEC``) file streams its chunks as
      written — constant memory.
    * A path to a flat file is loaded once and sliced (the flat
      container is one record; convert with ``repro trace convert``
      for true streaming).
    * An in-memory :class:`TraceBuffer` is sliced into ``chunk_refs``
      views; any other iterable is passed through.
    """
    if isinstance(source, (str, Path)):
        if is_chunked_trace(source):
            return iter_trace_chunks(source)
        source = read_trace(source)
    if isinstance(source, TraceBuffer):
        buffer = source

        def slices() -> Iterator[TraceBuffer]:
            for start in range(0, len(buffer), chunk_refs):
                yield buffer.slice(start, min(start + chunk_refs, len(buffer)))

        return slices()
    return iter(source)


def replay_stream(
    source: ChunkSource,
    config: Optional[SimulationConfig] = None,
    n_pes: Optional[int] = None,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
    kernel: Optional[str] = None,
    system=None,
    on_chunk: Optional[Callable[[int, int, object], None]] = None,
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
):
    """Replay *source* chunk-by-chunk through one persistent system.

    Returns the flat :class:`SystemStats` for single-bus configs or a
    :class:`ClusterStats` when ``config.cluster.n_clusters > 1`` —
    bit-identical to replaying the whole trace in memory.

    *system* lets a caller resume a restored checkpoint (it must match
    the config's shape); *on_chunk* is called after every chunk with
    ``(chunk_index, refs_done, system)`` — the hook the job service
    checkpoints and heartbeats from.

    ``mode="lazypim"`` streams speculatively: each chunk runs as a
    closed sequence of speculative batches (chunk boundaries force a
    batch commit), so every ``on_chunk`` — and therefore every job
    checkpoint — lands on fully-settled state, and a resume from a
    chunk-boundary checkpoint is bit-identical to the undisturbed
    streamed run.  Streamed speculative counters are a deterministic
    function of ``(trace, config, chunk_refs, batch_refs)``; they equal
    the monolithic :func:`~repro.core.speculative.replay_speculative`
    run exactly when ``chunk_refs`` is a multiple of *batch_refs* and
    the stream carries no lock/flagged references (each of which resets
    the batch phase).
    """
    chunks = chunk_stream(source, chunk_refs)
    refs_done = 0
    index = 0
    for chunk in chunks:
        if system is None:
            if n_pes is None:
                n_pes = chunk.n_pes
            if config is None:
                config = SimulationConfig()
            if config.cluster.n_clusters > 1:
                system = ClusteredSystem(config, n_pes)
            else:
                system = PIMCacheSystem(config, n_pes)
        _replay_chunk(
            system,
            chunk,
            kernel,
            mode=mode,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        refs_done += len(chunk)
        if on_chunk is not None:
            on_chunk(index, refs_done, system)
        index += 1
    if system is None:
        # Empty stream: an untouched system of the requested shape.
        if config is None:
            config = SimulationConfig()
        if config.cluster.n_clusters > 1:
            system = ClusteredSystem(config, n_pes or 1)
        else:
            system = PIMCacheSystem(config, n_pes or 1)
    return stream_result(system)


def _replay_chunk(
    system,
    chunk: TraceBuffer,
    kernel: Optional[str],
    mode: Optional[str] = None,
    batch_refs: Optional[int] = None,
    signature_bits: Optional[int] = None,
) -> None:
    """Advance *system* by one chunk (flat or clustered)."""
    if isinstance(system, ClusteredSystem):
        shards = split_trace(chunk, system.n_pes, system.n_clusters)
        for sub, shard in zip(system.systems, shards):
            if len(shard):
                replay(
                    shard,
                    system=sub,
                    kernel=kernel,
                    mode=mode,
                    batch_refs=batch_refs,
                    signature_bits=signature_bits,
                )
        return
    replay(
        chunk,
        system=system,
        kernel=kernel,
        mode=mode,
        batch_refs=batch_refs,
        signature_bits=signature_bits,
    )


def stream_result(system):
    """The result object for a streamed system: flat stats or, for a
    clustered system, the per-cluster breakdown."""
    if isinstance(system, ClusteredSystem):
        return system.cluster_stats()
    return system.stats
