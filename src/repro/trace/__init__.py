"""Memory-reference vocabulary shared by the KL1 machine and the cache.

A simulation run is, at bottom, a stream of :class:`~repro.trace.events.MemRef`
events: *(processing element, operation, storage area, word address)* plus a
small flag word.  The KL1 emulator produces such a stream (execution-driven
mode) and :class:`~repro.trace.buffer.TraceBuffer` captures it compactly so
the same workload can be replayed against many cache configurations
(trace-driven mode), exactly as the paper's tools did.
"""

from repro.trace.events import (
    AREA_NAMES,
    DATA_AREAS,
    FLAG_LOCK_CONTENDED,
    LOCK_OPS,
    OP_NAMES,
    READ_LIKE_OPS,
    WRITE_LIKE_OPS,
    Area,
    MemRef,
    Op,
    area_of_address,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.io import read_trace, write_trace
from repro.trace.synthetic import (
    AuroraTraceConfig,
    generate_aurora_trace,
    generate_random_trace,
)

__all__ = [
    "AREA_NAMES",
    "AuroraTraceConfig",
    "Area",
    "DATA_AREAS",
    "FLAG_LOCK_CONTENDED",
    "LOCK_OPS",
    "MemRef",
    "OP_NAMES",
    "Op",
    "READ_LIKE_OPS",
    "TraceBuffer",
    "WRITE_LIKE_OPS",
    "area_of_address",
    "generate_aurora_trace",
    "generate_random_trace",
    "read_trace",
    "write_trace",
]
