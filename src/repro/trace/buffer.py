"""Compact in-memory capture of a memory-reference stream.

A benchmark run can produce millions of references, so the buffer stores
them in parallel ``array`` columns rather than as object instances.  The
iteration API yields plain tuples ``(pe, op, area, address, flags)`` —
the hot path of the cache replay loop — while :meth:`TraceBuffer.refs`
yields :class:`~repro.trace.events.MemRef` objects for convenience.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Tuple

from repro.trace.events import Area, MemRef, Op

#: The tuple layout produced by iterating a buffer.
RefTuple = Tuple[int, int, int, int, int]


class TraceBuffer:
    """Append-only columnar store of memory references."""

    __slots__ = ("n_pes", "_pe", "_op", "_area", "_addr", "_flags")

    def __init__(self, n_pes: int = 1):
        if n_pes < 1:
            raise ValueError(f"n_pes must be >= 1, got {n_pes}")
        self.n_pes = n_pes
        self._pe = array("b")
        self._op = array("b")
        self._area = array("b")
        self._addr = array("q")
        self._flags = array("b")

    def append(self, pe: int, op: int, area: int, address: int, flags: int = 0) -> None:
        """Record one reference (values may be enums or plain ints)."""
        self._pe.append(pe)
        self._op.append(op)
        self._area.append(area)
        self._addr.append(address)
        self._flags.append(flags)

    def append_ref(self, ref: MemRef) -> None:
        """Record a :class:`MemRef`."""
        self.append(ref.pe, ref.op, ref.area, ref.address, ref.flags)

    def set_flags(self, index: int, flags: int) -> None:
        """Rewrite the flags of an already-recorded reference.

        The emulator uses this to mark an ``LR`` as contended
        retroactively, once the conflicting access actually arrives.
        """
        self._flags[index] = flags

    def __len__(self) -> int:
        return len(self._op)

    def __iter__(self) -> Iterator[RefTuple]:
        return iter(zip(self._pe, self._op, self._area, self._addr, self._flags))

    def __getitem__(self, index: int) -> RefTuple:
        return (
            self._pe[index],
            self._op[index],
            self._area[index],
            self._addr[index],
            self._flags[index],
        )

    def refs(self) -> Iterator[MemRef]:
        """Iterate as :class:`MemRef` objects (slow path, for inspection)."""
        for pe, op, area, addr, flags in self:
            yield MemRef(pe, Op(op), Area(area), addr, flags)

    def columns(self):
        """Return the raw columns ``(pe, op, area, addr, flags)``."""
        return self._pe, self._op, self._area, self._addr, self._flags

    def slice(self, start: int, stop: int) -> "TraceBuffer":
        """A new buffer holding references ``[start, stop)``.

        Column slicing copies at ``array`` speed (raw memory), so
        segmenting a trace at window boundaries — the windowed
        generated-kernel tier, chunked worker telemetry — costs far
        less than the replay of the segment itself.
        """
        out = TraceBuffer(self.n_pes)
        out._pe = self._pe[start:stop]
        out._op = self._op[start:stop]
        out._area = self._area[start:stop]
        out._addr = self._addr[start:stop]
        out._flags = self._flags[start:stop]
        return out

    def extend(self, other: "TraceBuffer") -> None:
        """Append every reference of *other* (PE numbering is preserved)."""
        self._pe.extend(other._pe)
        self._op.extend(other._op)
        self._area.extend(other._area)
        self._addr.extend(other._addr)
        self._flags.extend(other._flags)
        self.n_pes = max(self.n_pes, other.n_pes)

    def __repr__(self) -> str:
        return f"TraceBuffer(n_pes={self.n_pes}, refs={len(self)})"
