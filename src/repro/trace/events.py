"""Memory reference events.

The paper's architecture issues nine memory operations (Section 3.2):

* ``R`` / ``W`` — ordinary read and write.
* ``LR`` / ``UW`` / ``U`` — lock-and-read, write-and-unlock, unlock
  (Section 3.1, the separate lock directory).
* ``DW`` — direct write: write-allocate without fetching from shared
  memory, legal only for freshly allocated storage.
* ``ER`` — exclusive read: read that invalidates the supplier on a
  cache-to-cache transfer and purges the local copy after the last word
  of a block.
* ``RP`` — read purge: read then forcibly purge the local block.
* ``RI`` — read invalidate: read serviced with a fetch-and-invalidate so
  a rewrite shortly after needs no invalidate bus command.

References target one of five storage areas (Section 2.2): instruction,
heap, goal, suspension, and communication.  Addresses are word addresses
in a single flat space; each area owns a 2\\ :sup:`28`-word region so the
area of an address can be recovered with a shift.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.IntEnum):
    """Memory operation kinds issued by a processing element."""

    R = 0
    W = 1
    LR = 2
    UW = 3
    U = 4
    DW = 5
    ER = 6
    RP = 7
    RI = 8


class Area(enum.IntEnum):
    """The five storage areas of the KL1 architecture (Section 2.2)."""

    INSTRUCTION = 0
    HEAP = 1
    GOAL = 2
    SUSPENSION = 3
    COMMUNICATION = 4


#: Number of address bits reserved per storage area.
AREA_SHIFT = 28

#: Word-address base of each area.
AREA_BASE = {area: area.value << AREA_SHIFT for area in Area}

#: Human-readable operation names, indexed by ``Op`` value.
OP_NAMES = tuple(op.name for op in Op)

#: Human-readable area names, indexed by ``Area`` value.
AREA_NAMES = tuple(area.name.lower() for area in Area)

#: Areas holding data (everything except the instruction area).
DATA_AREAS = (Area.HEAP, Area.GOAL, Area.SUSPENSION, Area.COMMUNICATION)

#: Operations that read data into the processor.
READ_LIKE_OPS = frozenset({Op.R, Op.LR, Op.ER, Op.RP, Op.RI})

#: Operations that deposit data into memory.
WRITE_LIKE_OPS = frozenset({Op.W, Op.UW, Op.DW})

#: Operations that interact with the lock directory.
LOCK_OPS = frozenset({Op.LR, Op.UW, Op.U})

#: Flag bit set on an ``LR`` that suffered a lock conflict (drew an ``LH``
#: response and busy-waited) and on the matching ``UW``/``U`` that found a
#: waiter (``LWAIT``) and therefore broadcast ``UL``.
FLAG_LOCK_CONTENDED = 1


def area_of_address(address: int) -> Area:
    """Return the storage area owning a flat word *address*."""
    return Area(address >> AREA_SHIFT)


@dataclass(frozen=True)
class MemRef:
    """One memory reference: who, what, where.

    ``flags`` carries execution-time annotations that a pure trace replay
    could not otherwise reconstruct (currently only
    :data:`FLAG_LOCK_CONTENDED`).
    """

    pe: int
    op: Op
    area: Area
    address: int
    flags: int = 0

    def __str__(self) -> str:
        tag = " contended" if self.flags & FLAG_LOCK_CONTENDED else ""
        return (
            f"PE{self.pe} {self.op.name:<2} "
            f"{self.area.name.lower()}[{self.address:#x}]{tag}"
        )
