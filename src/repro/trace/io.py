"""Trace file round-trip.

The format is deliberately simple: a small ASCII header (magic, version,
PE count, reference count) followed by the five raw columns, each
prefixed with its typecode.  Arrays are written in machine byte order;
the header records the byte order, and a reader on a foreign-endian
machine byteswaps the columns on load.
"""

from __future__ import annotations

import sys
from array import array
from pathlib import Path
from typing import Union

from repro.trace.buffer import TraceBuffer

MAGIC = b"PIMTRACE"
VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def write_trace(buffer: TraceBuffer, path: Union[str, Path]) -> None:
    """Serialize *buffer* to *path*."""
    path = Path(path)
    columns = buffer.columns()
    with path.open("wb") as fh:
        header = (
            f"{VERSION} {sys.byteorder} {buffer.n_pes} {len(buffer)}\n".encode("ascii")
        )
        fh.write(MAGIC + b"\n" + header)
        for column in columns:
            fh.write(column.typecode.encode("ascii"))
            fh.write(b"\n")
            column.tofile(fh)


def read_trace(path: Union[str, Path]) -> TraceBuffer:
    """Deserialize a trace previously written by :func:`write_trace`."""
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.readline().rstrip(b"\n")
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: not a PIM trace file")
        try:
            header = fh.readline().decode("ascii").split()
        except UnicodeDecodeError as error:
            raise TraceFormatError(f"{path}: non-ASCII header") from error
        if len(header) != 4:
            raise TraceFormatError(f"{path}: malformed header {header!r}")
        version, byteorder, n_pes, n_refs = header
        try:
            version_num = int(version)
            pe_count = int(n_pes)
            count = int(n_refs)
        except ValueError as error:
            raise TraceFormatError(
                f"{path}: malformed header {header!r}"
            ) from error
        if version_num != VERSION:
            raise TraceFormatError(f"{path}: unsupported version {version}")
        if byteorder not in ("little", "big"):
            raise TraceFormatError(
                f"{path}: unknown byte order {byteorder!r} in header"
            )
        if pe_count < 1 or count < 0:
            raise TraceFormatError(f"{path}: malformed header {header!r}")
        swap = byteorder != sys.byteorder
        buffer = TraceBuffer(n_pes=pe_count)
        for column in buffer.columns():
            typecode = fh.readline().rstrip(b"\n").decode("ascii")
            if typecode != column.typecode:
                raise TraceFormatError(
                    f"{path}: column typecode {typecode!r}, expected "
                    f"{column.typecode!r}"
                )
            fresh = array(column.typecode)
            try:
                # fromfile raises EOFError when whole items run out and
                # ValueError when the file ends mid-item.
                fresh.fromfile(fh, count)
            except (EOFError, ValueError) as error:
                raise TraceFormatError(
                    f"{path}: truncated trace (column {column.typecode!r} "
                    f"has {len(fresh)} of {count} entries)"
                ) from error
            if swap:
                # Traces are written in the producer's byte order; a
                # foreign-endian file is converted in place rather than
                # rejected (single-byte columns are unaffected).
                fresh.byteswap()
            column.extend(fresh)
        return buffer
