"""Trace file round-trip.

Two on-disk containers share the same column encoding:

* **Flat** (``PIMTRACE``): a small ASCII header (magic, version, PE
  count, reference count) followed by the five raw columns, each
  prefixed with its typecode.  The whole trace is one record, so the
  reader materializes it in one go.
* **Chunked** (``PIMTRACEC``): the same five columns repeated per
  chunk, each chunk introduced by a ``C <index> <count>`` line and the
  file closed by an ``E <n_chunks> <total_refs>`` marker.  Chunks can
  be written from a generator without knowing the total length and
  read back one at a time (:func:`iter_trace_chunks`), so a replay
  never holds more than one chunk in memory.

Arrays are written in machine byte order; the header records the byte
order, and a reader on a foreign-endian machine byteswaps the columns
on load.  :func:`read_trace` sniffs the magic, so every existing
consumer transparently accepts both containers.
"""

from __future__ import annotations

import sys
from array import array
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.trace.buffer import TraceBuffer

MAGIC = b"PIMTRACE"
VERSION = 1

CHUNK_MAGIC = b"PIMTRACEC"
CHUNK_VERSION = 1

#: Default chunk size for :func:`write_trace_chunked`.  Small enough
#: that one chunk of five columns (12 bytes/ref) stays well under a
#: megabyte, large enough that per-chunk framing overhead is noise.
DEFAULT_CHUNK_REFS = 65_536


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed.

    For chunked containers the error pinpoints where the file went
    bad: ``byte_offset`` is the file position at the failure and
    ``chunk_index`` the chunk being read.  Both are ``None`` for flat
    (single-record) traces.
    """

    def __init__(self, message, byte_offset=None, chunk_index=None):
        super().__init__(message)
        self.byte_offset = byte_offset
        self.chunk_index = chunk_index


def write_trace(buffer: TraceBuffer, path: Union[str, Path]) -> None:
    """Serialize *buffer* to *path*."""
    path = Path(path)
    columns = buffer.columns()
    with path.open("wb") as fh:
        header = (
            f"{VERSION} {sys.byteorder} {buffer.n_pes} {len(buffer)}\n".encode("ascii")
        )
        fh.write(MAGIC + b"\n" + header)
        for column in columns:
            fh.write(column.typecode.encode("ascii"))
            fh.write(b"\n")
            column.tofile(fh)


def read_trace(path: Union[str, Path]) -> TraceBuffer:
    """Deserialize a trace written by :func:`write_trace` or
    :func:`write_trace_chunked` (the magic line selects the reader)."""
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.readline().rstrip(b"\n")
        if magic == CHUNK_MAGIC:
            n_pes, swap = _read_chunk_header(fh, path)
            buffer = TraceBuffer(n_pes=n_pes)
            for chunk in _iter_chunks(fh, path, n_pes, swap):
                buffer.extend(chunk)
            return buffer
        if magic != MAGIC:
            raise TraceFormatError(f"{path}: not a PIM trace file")
        try:
            header = fh.readline().decode("ascii").split()
        except UnicodeDecodeError as error:
            raise TraceFormatError(f"{path}: non-ASCII header") from error
        if len(header) != 4:
            raise TraceFormatError(f"{path}: malformed header {header!r}")
        version, byteorder, n_pes, n_refs = header
        try:
            version_num = int(version)
            pe_count = int(n_pes)
            count = int(n_refs)
        except ValueError as error:
            raise TraceFormatError(
                f"{path}: malformed header {header!r}"
            ) from error
        if version_num != VERSION:
            raise TraceFormatError(f"{path}: unsupported version {version}")
        if byteorder not in ("little", "big"):
            raise TraceFormatError(
                f"{path}: unknown byte order {byteorder!r} in header"
            )
        if pe_count < 1 or count < 0:
            raise TraceFormatError(f"{path}: malformed header {header!r}")
        swap = byteorder != sys.byteorder
        buffer = TraceBuffer(n_pes=pe_count)
        for column in buffer.columns():
            typecode = fh.readline().rstrip(b"\n").decode("ascii")
            if typecode != column.typecode:
                raise TraceFormatError(
                    f"{path}: column typecode {typecode!r}, expected "
                    f"{column.typecode!r}"
                )
            fresh = array(column.typecode)
            try:
                # fromfile raises EOFError when whole items run out and
                # ValueError when the file ends mid-item.
                fresh.fromfile(fh, count)
            except (EOFError, ValueError) as error:
                raise TraceFormatError(
                    f"{path}: truncated trace (column {column.typecode!r} "
                    f"has {len(fresh)} of {count} entries)"
                ) from error
            if swap:
                # Traces are written in the producer's byte order; a
                # foreign-endian file is converted in place rather than
                # rejected (single-byte columns are unaffected).
                fresh.byteswap()
            column.extend(fresh)
        return buffer


# ---------------------------------------------------------------------------
# Chunked container.


def is_chunked_trace(path: Union[str, Path]) -> bool:
    """True when *path* uses the chunked (streamable) container."""
    with Path(path).open("rb") as fh:
        return fh.readline().rstrip(b"\n") == CHUNK_MAGIC


def _chunk_slices(
    buffer: TraceBuffer, chunk_refs: int
) -> Iterator[TraceBuffer]:
    for start in range(0, len(buffer), chunk_refs):
        yield buffer.slice(start, min(start + chunk_refs, len(buffer)))


def write_trace_chunked(
    source: Union[TraceBuffer, Iterable[TraceBuffer]],
    path: Union[str, Path],
    chunk_refs: int = DEFAULT_CHUNK_REFS,
    n_pes: int = None,
) -> int:
    """Serialize *source* to *path* in the chunked container.

    *source* is either a whole :class:`TraceBuffer` (sliced into
    ``chunk_refs``-sized chunks) or an iterable of chunk buffers (each
    written as-is, so a generator can stream a trace that never fits in
    memory).  The writer needs no seeks: the total is recorded in the
    trailing ``E`` marker.  Returns the number of references written.

    *n_pes* is only consulted when *source* is an empty iterable (there
    is no chunk to infer it from); it defaults to 1.
    """
    path = Path(path)
    if isinstance(source, TraceBuffer):
        n_pes = source.n_pes
        chunks: Iterable[TraceBuffer] = _chunk_slices(source, chunk_refs)
    else:
        chunks = iter(source)
    total = 0
    index = 0
    with path.open("wb") as fh:
        header_written = False
        for chunk in chunks:
            if not header_written:
                fh.write(CHUNK_MAGIC + b"\n")
                fh.write(
                    f"{CHUNK_VERSION} {sys.byteorder} {chunk.n_pes}\n".encode("ascii")
                )
                header_written = True
            fh.write(f"C {index} {len(chunk)}\n".encode("ascii"))
            for column in chunk.columns():
                fh.write(column.typecode.encode("ascii"))
                fh.write(b"\n")
                column.tofile(fh)
            total += len(chunk)
            index += 1
        if not header_written:
            fh.write(CHUNK_MAGIC + b"\n")
            fh.write(
                f"{CHUNK_VERSION} {sys.byteorder} {n_pes or 1}\n".encode("ascii")
            )
        fh.write(f"E {index} {total}\n".encode("ascii"))
    return total


def iter_trace_chunks(path: Union[str, Path]) -> Iterator[TraceBuffer]:
    """Yield the chunks of a chunked trace one :class:`TraceBuffer` at
    a time, holding at most one chunk in memory.

    Raises :class:`TraceFormatError` — carrying the byte offset and
    chunk index — on truncated or malformed input, including a missing
    ``E`` end marker (a partially written file).
    """
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.readline().rstrip(b"\n")
        if magic != CHUNK_MAGIC:
            raise TraceFormatError(
                f"{path}: not a chunked PIM trace file", byte_offset=0
            )
        n_pes, swap = _read_chunk_header(fh, path)
        yield from _iter_chunks(fh, path, n_pes, swap)


def _read_chunk_header(fh: IO[bytes], path: Path):
    """Parse the one-line chunked-container header (after the magic).

    Returns ``(n_pes, swap)`` where *swap* says the columns were
    written on a foreign-endian machine."""
    offset = fh.tell()
    try:
        header = fh.readline().decode("ascii").split()
    except UnicodeDecodeError as error:
        raise TraceFormatError(
            f"{path}: non-ASCII chunk header", byte_offset=offset
        ) from error
    if len(header) != 3:
        raise TraceFormatError(
            f"{path}: malformed chunk header {header!r}", byte_offset=offset
        )
    version, byteorder, n_pes = header
    try:
        version_num = int(version)
        pe_count = int(n_pes)
    except ValueError as error:
        raise TraceFormatError(
            f"{path}: malformed chunk header {header!r}", byte_offset=offset
        ) from error
    if version_num != CHUNK_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported chunked version {version}",
            byte_offset=offset,
        )
    if byteorder not in ("little", "big"):
        raise TraceFormatError(
            f"{path}: unknown byte order {byteorder!r} in chunk header",
            byte_offset=offset,
        )
    if pe_count < 1:
        raise TraceFormatError(
            f"{path}: malformed chunk header {header!r}", byte_offset=offset
        )
    return pe_count, byteorder != sys.byteorder


def _iter_chunks(
    fh: IO[bytes], path: Path, n_pes: int, swap: bool = False
) -> Iterator[TraceBuffer]:
    chunk_index = 0
    total = 0
    while True:
        offset = fh.tell()
        line = fh.readline()
        if not line:
            raise TraceFormatError(
                f"{path}: truncated chunked trace (missing end marker "
                f"after chunk {chunk_index - 1})",
                byte_offset=offset,
                chunk_index=chunk_index,
            )
        parts = line.split()
        if parts and parts[0] == b"E":
            _check_end_marker(parts, path, offset, chunk_index, total)
            return
        if len(parts) != 3 or parts[0] != b"C":
            raise TraceFormatError(
                f"{path}: malformed chunk record {line!r}",
                byte_offset=offset,
                chunk_index=chunk_index,
            )
        try:
            index = int(parts[1])
            count = int(parts[2])
        except ValueError as error:
            raise TraceFormatError(
                f"{path}: malformed chunk record {line!r}",
                byte_offset=offset,
                chunk_index=chunk_index,
            ) from error
        if index != chunk_index or count < 0:
            raise TraceFormatError(
                f"{path}: chunk {index} out of order (expected "
                f"{chunk_index})",
                byte_offset=offset,
                chunk_index=chunk_index,
            )
        buffer = TraceBuffer(n_pes=n_pes)
        for column in buffer.columns():
            col_offset = fh.tell()
            typecode = fh.readline().rstrip(b"\n").decode("ascii", "replace")
            if typecode != column.typecode:
                raise TraceFormatError(
                    f"{path}: chunk {chunk_index} column typecode "
                    f"{typecode!r}, expected {column.typecode!r}",
                    byte_offset=col_offset,
                    chunk_index=chunk_index,
                )
            fresh = array(column.typecode)
            try:
                fresh.fromfile(fh, count)
            except (EOFError, ValueError) as error:
                raise TraceFormatError(
                    f"{path}: truncated chunk {chunk_index} (column "
                    f"{column.typecode!r} has {len(fresh)} of {count} "
                    f"entries)",
                    byte_offset=fh.tell(),
                    chunk_index=chunk_index,
                ) from error
            if swap:
                fresh.byteswap()
            column.extend(fresh)
        total += count
        chunk_index += 1
        yield buffer


def _check_end_marker(parts, path, offset, chunk_index, total):
    if len(parts) != 3:
        raise TraceFormatError(
            f"{path}: malformed end marker {parts!r}",
            byte_offset=offset,
            chunk_index=chunk_index,
        )
    try:
        n_chunks = int(parts[1])
        n_refs = int(parts[2])
    except ValueError as error:
        raise TraceFormatError(
            f"{path}: malformed end marker {parts!r}",
            byte_offset=offset,
            chunk_index=chunk_index,
        ) from error
    if n_chunks != chunk_index or n_refs != total:
        raise TraceFormatError(
            f"{path}: end marker says {n_chunks} chunks/{n_refs} refs, "
            f"read {chunk_index} chunks/{total} refs",
            byte_offset=offset,
            chunk_index=chunk_index,
        )
