"""Synthetic reference-stream generators.

Two generators live here:

* :func:`generate_aurora_trace` — an OR-parallel-Prolog-shaped workload
  (the paper's Section 1/5 claim that the cache optimizations carry over
  to non-committed-choice systems such as Aurora).  The real Aurora
  traces of Tick's TR-421 are unavailable, so this models the documented
  mix: WAM-style heap/stack allocation with a high write ratio (Tick
  reports 47 % data writes for Prolog), clause-code fetch loops, binding
  locks, and occasional work stealing that reads a remote worker's
  region.
* :func:`generate_random_trace` — a well-formed random stream (locks are
  acquired and released in trace order) used by the cache property and
  fuzz tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.trace.buffer import TraceBuffer

if TYPE_CHECKING:  # resolved lazily: core.config imports trace.events
    from repro.core.config import OptimizationConfig
from repro.trace.events import AREA_BASE, FLAG_LOCK_CONTENDED, Area, Op


@dataclass(frozen=True)
class AuroraTraceConfig:
    """Knobs of the OR-parallel-Prolog-style generator."""

    n_pes: int = 8
    #: Resolution steps (clause tries) per worker.
    steps_per_pe: int = 20_000
    seed: int = 7
    #: Instructions fetched per resolution step (clause code).
    instructions_per_step: int = 12
    #: Distinct procedures (code working set).
    n_procedures: int = 40
    #: Heap words allocated per step (structure creation — write-once).
    heap_words_per_step: int = 4
    #: Probability a step binds a shared variable under lock.
    p_bind: float = 0.12
    #: Probability a step reads another worker's recent heap (stealing /
    #: binding-array installation).
    p_steal: float = 0.05
    #: Words read from the victim on a steal.
    steal_read_words: int = 8
    #: Probability a step pops (reuses) stack storage instead of growing.
    p_backtrack: float = 0.35
    #: Goal-stack (environment/choicepoint) words touched per step.
    stack_words_per_step: int = 3


def generate_aurora_trace(config: AuroraTraceConfig = AuroraTraceConfig()) -> TraceBuffer:
    """Generate an Aurora-like multi-worker trace.

    Heap allocation uses ``DW`` (new structures, fetch-on-write is
    useless), environments/choicepoints live in the goal area and are
    re-read, shared-variable bindings use ``LR``/``UW``, and steals read
    the victim's heap.  Demoting the optimized commands (an
    ``OptimizationConfig.none()`` replay) yields the unoptimized
    baseline, exactly as for the KL1 benchmarks.
    """
    rng = random.Random(config.seed)
    buffer = TraceBuffer(n_pes=config.n_pes)
    heap_base = AREA_BASE[Area.HEAP]
    goal_base = AREA_BASE[Area.GOAL]
    code_base = AREA_BASE[Area.INSTRUCTION]
    segment = 1 << 24  # per-worker region within each area

    heap_top = [heap_base + pe * segment for pe in range(config.n_pes)]
    stack_top = [goal_base + pe * segment for pe in range(config.n_pes)]
    # Shared variables: one global pool bound under lock.
    shared_vars = [heap_base + (config.n_pes + 1) * segment + 4 * i for i in range(256)]
    procedures = [
        code_base + i * (config.instructions_per_step + rng.randrange(8))
        for i in range(config.n_procedures)
    ]

    append = buffer.append
    for step in range(config.steps_per_pe):
        for pe in range(config.n_pes):
            # Clause code fetch (sequential within the procedure).
            entry = procedures[rng.randrange(config.n_procedures)]
            for offset in range(config.instructions_per_step):
                append(pe, Op.R, Area.INSTRUCTION, entry + offset)
            # Head unification reads recent heap.
            for _ in range(2):
                span = heap_top[pe] - (heap_base + pe * segment)
                if span > 4:
                    append(
                        pe,
                        Op.R,
                        Area.HEAP,
                        heap_top[pe] - 1 - rng.randrange(min(span, 512)),
                    )
            # Structure creation: write-once heap growth (direct write).
            for _ in range(config.heap_words_per_step):
                append(pe, Op.DW, Area.HEAP, heap_top[pe])
                heap_top[pe] += 1
            # Environment / choicepoint traffic on the local stack.
            if rng.random() < config.p_backtrack and stack_top[pe] > goal_base + pe * segment + config.stack_words_per_step:
                stack_top[pe] -= config.stack_words_per_step
                for i in range(config.stack_words_per_step):
                    append(pe, Op.R, Area.GOAL, stack_top[pe] + i)
            else:
                for i in range(config.stack_words_per_step):
                    append(pe, Op.W, Area.GOAL, stack_top[pe] + i)
                stack_top[pe] += config.stack_words_per_step
            # Shared-variable binding under the hardware lock.
            if rng.random() < config.p_bind:
                var = shared_vars[rng.randrange(len(shared_vars))]
                append(pe, Op.LR, Area.HEAP, var)
                append(pe, Op.UW, Area.HEAP, var)
            # Work stealing: read a victim's recently created heap terms.
            if config.n_pes > 1 and rng.random() < config.p_steal:
                victim = rng.randrange(config.n_pes - 1)
                if victim >= pe:
                    victim += 1
                span = heap_top[victim] - (heap_base + victim * segment)
                if span > config.steal_read_words:
                    start = heap_top[victim] - config.steal_read_words
                    for i in range(config.steal_read_words):
                        append(pe, Op.R, Area.HEAP, start + i)
    return buffer


def generate_random_trace(
    n_refs: int,
    n_pes: int = 4,
    seed: int = 0,
    address_pool: int = 512,
    block_words: int = 4,
) -> TraceBuffer:
    """A well-formed random trace for fuzzing the cache protocol.

    Lock operations are made globally consistent in trace order: an LR
    targets only addresses nobody currently holds, and held locks are
    eventually released by their owner, so a replay never blocks.
    """
    rng = random.Random(seed)
    buffer = TraceBuffer(n_pes=n_pes)
    areas = list(Area)
    held = {}  # address -> pe
    held_by_pe = {pe: [] for pe in range(n_pes)}
    plain_ops = [Op.R, Op.W, Op.DW, Op.ER, Op.RP, Op.RI]
    emitted = 0
    while emitted < n_refs:
        pe = rng.randrange(n_pes)
        # Bias toward releasing held locks so they do not accumulate.
        if held_by_pe[pe] and rng.random() < 0.5:
            address = held_by_pe[pe].pop()
            del held[address]
            area = (address >> 28)
            op = Op.UW if rng.random() < 0.7 else Op.U
            buffer.append(pe, op, area, address)
            emitted += 1
            continue
        area = areas[rng.randrange(len(areas))]
        address = AREA_BASE[area] + rng.randrange(address_pool)
        block_base = address & ~(block_words - 1)
        locked_in_block = any(
            (a & ~(block_words - 1)) == block_base and owner != pe
            for a, owner in held.items()
        )
        if locked_in_block:
            continue  # a real program would busy-wait; skip instead
        if rng.random() < 0.08 and address not in held and len(held_by_pe[pe]) < 2:
            held[address] = pe
            held_by_pe[pe].append(address)
            buffer.append(pe, Op.LR, area, address)
            emitted += 1
            continue
        op = plain_ops[rng.randrange(len(plain_ops))]
        buffer.append(pe, op, area, address)
        emitted += 1
    # Drain leftover locks.
    for pe, addresses in held_by_pe.items():
        for address in addresses:
            buffer.append(pe, Op.U, address >> 28, address)
    return buffer


def generate_false_sharing_trace(
    n_refs: int,
    n_pes: int = 4,
    seed: int = 0,
    n_hot_blocks: int = 8,
    block_words: int = 4,
    p_private: float = 0.25,
) -> TraceBuffer:
    """A trace engineered to defeat speculative batching.

    Round-robin over a small pool of hot heap blocks: each round one PE
    writes a word of the round's hot block while every other PE reads a
    *different* word of the same block — the canonical false-sharing
    pattern (word-disjoint, block-overlapping).  A sprinkle of private
    per-PE references (*p_private*) keeps caches realistically mixed.

    Under ``mode="lazypim"`` (:mod:`repro.core.speculative`) every
    speculative batch long enough to contain one full round holds a
    write and a concurrent remote read of the same block, so its
    signatures conflict and the batch rolls back: this generator
    *guarantees* a nonzero rollback count for any batch size above
    ``2 * n_pes``, which the forced-conflict fuzz rotation and the CI
    rollback drill rely on.  It emits only ``R``/``W`` (no purging
    commands, no locks), so every read targets live data and the flat
    value oracle of :mod:`repro.verify.oracle` applies unchanged.
    """
    rng = random.Random(seed)
    buffer = TraceBuffer(n_pes=n_pes)
    heap_base = AREA_BASE[Area.HEAP]
    #: Private regions sit past the hot pool so they never collide.
    private_base = heap_base + (n_hot_blocks + 1) * block_words
    append = buffer.append
    emitted = 0
    round_index = 0
    while emitted < n_refs:
        hot = heap_base + (round_index % n_hot_blocks) * block_words
        writer = round_index % n_pes
        for pe in range(n_pes):
            if emitted >= n_refs:
                break
            if pe == writer:
                append(pe, Op.W, Area.HEAP, hot + (pe % block_words))
            else:
                append(pe, Op.R, Area.HEAP, hot + (pe % block_words))
            emitted += 1
            if emitted < n_refs and rng.random() < p_private:
                address = private_base + pe * 64 + rng.randrange(32)
                op = Op.W if rng.random() < 0.5 else Op.R
                append(pe, op, Area.HEAP, address)
                emitted += 1
        round_index += 1
    return buffer


def generate_contract_trace(
    n_refs: int,
    n_pes: int = 4,
    seed: int = 0,
    address_pool: int = 512,
    block_words: int = 4,
    opts: Optional["OptimizationConfig"] = None,
    p_lock: float = 0.08,
    p_contended: float = 0.1,
) -> TraceBuffer:
    """A random trace that also keeps the *software* contracts.

    :func:`generate_random_trace` keeps lock order consistent but freely
    reuses addresses after purging them, which is legal for the hardware
    (the purged data is simply gone) but breaks any value oracle: the
    paper's optimized commands let live data die by design.  This
    generator additionally guarantees every read targets *live* data, so
    a flat word-granularity memory model predicts the exact value of
    every read in the trace — the property
    :mod:`repro.verify.oracle` fuzzes against.

    Concretely, a block is retired (never referenced again) once a
    reference consumes its data under *opts*: an honoured ``RP``
    anywhere in the block, or an honoured ``ER`` of the block's last
    word.  Demoted commands purge nothing, so which references retire
    depends on the optimization flags — pass the same *opts* the replay
    will run with.  Blocks with a held lock are never retired, which
    keeps the trailing lock drain valid.  ``DW`` needs no special care:
    a fetch-free allocation's unwritten words read as shared memory's
    contents, which is exactly the flat model's prediction.

    A ``p_contended`` fraction of lock acquisitions carries
    :data:`~repro.trace.events.FLAG_LOCK_CONTENDED`, re-enacting the
    lock-holder response path identically on every replay path.
    """
    from repro.core.config import OptimizationConfig

    rng = random.Random(seed)
    if opts is None:
        opts = OptimizationConfig.all()
    buffer = TraceBuffer(n_pes=n_pes)
    areas = list(Area)
    held = {}  # address -> pe
    held_by_pe = {pe: [] for pe in range(n_pes)}
    block_mask = block_words - 1
    n_blocks = max(1, address_pool // block_words)
    live = {area: list(range(n_blocks)) for area in areas}
    #: Stop retiring once a quarter of the pool is left: the trace keeps
    #: enough live blocks for sharing and eviction traffic.
    min_live = max(2, n_blocks // 4)
    plain_ops = [Op.R, Op.W, Op.DW, Op.ER, Op.RP, Op.RI]
    emitted = 0
    while emitted < n_refs:
        pe = rng.randrange(n_pes)
        if held_by_pe[pe] and rng.random() < 0.5:
            address = held_by_pe[pe].pop()
            del held[address]
            op = Op.UW if rng.random() < 0.7 else Op.U
            buffer.append(pe, op, address >> 28, address)
            emitted += 1
            continue
        area = areas[rng.randrange(len(areas))]
        blocks = live[area]
        block_index = blocks[rng.randrange(len(blocks))]
        offset = rng.randrange(block_words)
        address = AREA_BASE[area] + block_index * block_words + offset
        block_base = address & ~block_mask
        lock_in_block = [
            (a, owner)
            for a, owner in held.items()
            if (a & ~block_mask) == block_base
        ]
        if any(owner != pe for _, owner in lock_in_block):
            continue  # a real program would busy-wait; skip instead
        if (
            rng.random() < p_lock
            and address not in held
            and len(held_by_pe[pe]) < 2
        ):
            held[address] = pe
            held_by_pe[pe].append(address)
            flags = FLAG_LOCK_CONTENDED if rng.random() < p_contended else 0
            buffer.append(pe, Op.LR, area, address, flags)
            emitted += 1
            continue
        op = plain_ops[rng.randrange(len(plain_ops))]
        consumes = opts.honours(op, area) and (
            op == Op.RP or (op == Op.ER and offset == block_mask)
        )
        if consumes:
            if len(blocks) <= min_live or lock_in_block:
                op = Op.R  # keep the read, skip the purge
            else:
                blocks.remove(block_index)
        buffer.append(pe, op, area, address)
        emitted += 1
    # Drain leftover locks (held blocks were never retired, so the
    # closing UW/U references target live data).
    for pe, addresses in held_by_pe.items():
        for address in addresses:
            op = Op.UW if rng.random() < 0.5 else Op.U
            buffer.append(pe, op, address >> 28, address)
    return buffer
