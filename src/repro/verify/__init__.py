"""Protocol verification: model checking and differential fuzzing.

Two independent oracles over the same table-driven protocol machinery:

* :mod:`repro.verify.model` — exhaustive breadth-first enumeration of a
  spec's reachable state space on a tiny configuration, with an
  invariant battery (single-writer/multiple-reader, data value,
  dirty-copy durability, lock-directory consistency) and
  shortest-path counterexample traces.
* :mod:`repro.verify.oracle` — differential fuzzing of every replay
  path (per-access system, inlined fast kernel, sharded and interleaved
  cluster replay) against a flat-memory reference model, with automatic
  trace shrinking on divergence.
"""

from repro.verify.model import (
    CheckResult,
    Counterexample,
    ModelCheckOptions,
    Violation,
    check_protocol,
)
from repro.verify.oracle import (
    Divergence,
    FuzzCase,
    FuzzReport,
    run_case,
    run_fuzz,
    run_lazypim_case,
)
from repro.verify.reference import (
    READ_VALUE_OPS,
    WRITE_OPS,
    FlatMemory,
    value_for,
)
from repro.verify.shrink import shrink_trace, subset

__all__ = [
    "CheckResult",
    "Counterexample",
    "Divergence",
    "FlatMemory",
    "FuzzCase",
    "FuzzReport",
    "ModelCheckOptions",
    "READ_VALUE_OPS",
    "Violation",
    "WRITE_OPS",
    "check_protocol",
    "run_case",
    "run_fuzz",
    "run_lazypim_case",
    "shrink_trace",
    "subset",
    "value_for",
]
