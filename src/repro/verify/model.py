"""Exhaustive model checking of a :class:`ProtocolSpec`'s state space.

LOCKE and BedRock pair table-driven protocol specifications with
exhaustive enumeration of the protocol's reachable states; this module
does the same for the specs in :mod:`repro.core.protocol`, using the
*real* controller — :class:`~repro.core.system.PIMCacheSystem` compiled
from the spec under test — as the transition function, so the checker
validates the spec *and* the controller that interprets it.

The configuration is deliberately tiny (2–3 PEs, one block of two words
by default): coherence bugs are local to one block's copies, so a small
universe reaches the interesting states while keeping the closure
enumerable.  From the empty initial state the checker applies every
``(pe, op, word)`` access in breadth-first order, canonicalizes the
resulting system state, and asserts four invariant families on every
state reached:

* **single-writer / multiple-reader** — an EM/EC copy is the only copy;
  at most one dirty (EM/SM) copy per block (plus presence-map
  consistency, which the accelerator structures must keep).
* **data-value** — a read returns the last value written to that word,
  and every valid copy of a *live* word holds it.
* **no dirty copy lost** — the last-written value of a live word
  survives in shared memory or under a dirty copy's copy-back duty.
  Words whose block is consumed by an honoured ``ER``/``RP`` purge are
  architecturally *dead* (the write-once/read-once software contract)
  and move to an "undefined" set: their value checks are vacuous until
  the next write revives them.  A value that disappears on any *other*
  transition — e.g. a supplier row dropping a dirty state without
  copyback — is a violation.
* **lock-directory consistency** — every directory entry is LCK/LWAIT,
  a word is locked by at most one PE, and the bus's locked-word snoop
  map agrees with the per-PE directories in both directions.

With ``interconnect="directory"`` the home-node directory joins the
checked state: its entries (stable state, owner, sharer mask, transient)
are part of every snapshot and canonical key, a
:class:`_TransientWatcher` observer validates every *in-flight*
micro-step of each transaction (the transient is held for the whole
flight, the sharer mask only shrinks, and the completion matches the
table row's predicted next state and owner), and the backend's
entry-vs-residency agreement check runs as its own invariant family
(``directory-agreement`` / ``directory-transient`` /
``directory-table`` violations).

Data values are canonicalized to per-word *freshness* bits (equal to
the last write or not); the handlers never branch on data, so freshness
is a sound abstraction and keeps the state space finite.  Violations
come back as a :class:`Counterexample` holding the breadth-first —
hence minimal-length — access sequence from reset.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.config import CacheConfig, OptimizationConfig, SimulationConfig
from repro.core.interconnect import DirectoryProtocolError
from repro.core.protocol import ProtocolSpec, temporarily_register
from repro.core.states import (
    DIRTY_STATES,
    EXCLUSIVE_STATES,
    CacheState,
    LockState,
)
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.events import AREA_BASE, AREA_NAMES, OP_NAMES, Area, Op

from repro.verify.reference import READ_VALUE_OPS, WRITE_OPS

__all__ = [
    "CheckResult",
    "Counterexample",
    "ModelCheckOptions",
    "Violation",
    "broken_demo_spec",
    "check_protocol",
]

#: Default access alphabet: the plain ops, the optimized commands the
#: goal area honours, and the lock triple.  ``RI`` is demoted to R in
#: the goal area, so it adds no transitions there and is left out.
DEFAULT_OPS: Tuple[Op, ...] = (
    Op.R, Op.W, Op.DW, Op.ER, Op.RP, Op.LR, Op.UW, Op.U,
)


@dataclass(frozen=True)
class ModelCheckOptions:
    """Bounds and universe of one model-checking run."""

    n_pes: int = 2
    n_blocks: int = 1
    block_words: int = 2
    #: Storage area of the word universe.  GOAL honours DW/ER/RP, so the
    #: optimized commands run un-demoted there.
    area: Area = Area.GOAL
    ops: Tuple[Op, ...] = DEFAULT_OPS
    #: Abort (reporting ``complete=False``) past this many states.
    max_states: int = 200_000
    #: Interconnect backend the checked system runs on ("bus" or
    #: "directory"); the directory adds its entries and in-flight
    #: transients to the checked state.
    interconnect: str = "bus"

    def words(self) -> Tuple[int, ...]:
        base = AREA_BASE[self.area]
        return tuple(
            base + i for i in range(self.n_blocks * self.block_words)
        )


@dataclass(frozen=True)
class Violation:
    """One broken invariant, in words."""

    invariant: str  #: single-writer | data-value | dirty-loss | presence | lock-directory
    detail: str


@dataclass(frozen=True)
class Counterexample:
    """A minimal-length access sequence from reset to a violation."""

    steps: Tuple[Tuple[int, int, int], ...]  #: (pe, op, address)
    area: int
    violation: Violation
    state: Tuple[str, ...]  #: rendered post-violation system state

    def step_lines(self) -> List[str]:
        area = AREA_NAMES[self.area]
        return [
            f"{i}. PE{pe} {OP_NAMES[op]:<2} {area}[{addr:#x}]"
            for i, (pe, op, addr) in enumerate(self.steps, start=1)
        ]

    def render(self) -> str:
        lines = [f"counterexample ({self.violation.invariant}):"]
        lines += [f"  {line}" for line in self.step_lines()]
        lines.append(f"  violated: {self.violation.detail}")
        lines.append("  state after the final step:")
        lines += [f"    {line}" for line in self.state]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "invariant": self.violation.invariant,
            "detail": self.violation.detail,
            "steps": self.step_lines(),
            "state": list(self.state),
        }


@dataclass
class CheckResult:
    """Outcome of model-checking one protocol spec."""

    protocol: str
    clean: bool
    states: int
    transitions: int
    complete: bool
    options: ModelCheckOptions = field(default_factory=ModelCheckOptions)
    counterexample: Optional[Counterexample] = None

    def render(self) -> str:
        opts = self.options
        bounds = (
            f"{opts.n_pes} PEs, {opts.n_blocks} block(s) x "
            f"{opts.block_words} words, {len(opts.ops)} ops"
            + (
                f", {opts.interconnect} interconnect"
                if opts.interconnect != "bus"
                else ""
            )
        )
        if self.clean:
            suffix = "" if self.complete else (
                f"  [truncated at {opts.max_states} states]"
            )
            return (
                f"{self.protocol}: clean — {self.states} states, "
                f"{self.transitions} transitions ({bounds}){suffix}"
            )
        return (
            f"{self.protocol}: VIOLATION after {self.states} states "
            f"({bounds})\n{self.counterexample.render()}"
        )

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "clean": self.clean,
            "states": self.states,
            "transitions": self.transitions,
            "complete": self.complete,
            "n_pes": self.options.n_pes,
            "n_blocks": self.options.n_blocks,
            "block_words": self.options.block_words,
            "interconnect": self.options.interconnect,
            "ops": [OP_NAMES[op] for op in self.options.ops],
            "counterexample": (
                self.counterexample.as_dict() if self.counterexample else None
            ),
        }


# ---------------------------------------------------------------------------
# System state snapshot / restore / canonicalization.
#
# The checker expands each frontier state by restoring the concrete
# system to the state's snapshot, applying one access, and reading the
# result.  Only architectural + accelerator state is captured; clocks
# and statistics are timing/reporting, not protocol state, and are left
# to drift (the purge detector below diffs counters within one step).

_Snapshot = Tuple


def _directory_state(system: PIMCacheSystem) -> Tuple:
    """Hashable image of the home-node directory (empty for the bus)."""
    interconnect = system.interconnect
    if not interconnect.tracks_residency:
        return ()
    return tuple(sorted(
        (block, int(entry.state), entry.owner, entry.sharers,
         entry.transient)
        for block, entry in interconnect.entries.items()
    ))


def _snapshot(system: PIMCacheSystem) -> _Snapshot:
    caches = []
    for cache in system.caches:
        lines = sorted(
            (line.lru, block, int(line.state), line.area, tuple(line.data))
            for block, line in cache.lines()
        )
        # LRU rank order is preserved positionally; absolute ticks are not
        # architectural.
        caches.append(tuple((b, s, a, d) for _, b, s, a, d in lines))
    return (
        tuple(caches),
        tuple(sorted(system.memory.items())),
        tuple(
            sorted(
                (block, tuple(sorted(entries)))
                for block, entries in system._locked_words.items()
            )
        ),
        tuple(
            tuple(sorted(
                (addr, int(state)) for addr, state in directory.entries.items()
            ))
            for directory in system.lock_directories
        ),
        tuple(sorted(system._waiting.items())),
        _directory_state(system),
    )


def _restore(system: PIMCacheSystem, snap: _Snapshot) -> None:
    caches, memory, locked, directories, waiting, dir_entries = snap
    system._holders.clear()
    for pe, (cache, lines) in enumerate(zip(system.caches, caches)):
        cache.flush()
        for block, state, area, data in lines:
            cache.insert(block, CacheState(state), area, list(data))
            system._holders.setdefault(block, set()).add(pe)
    system.memory = dict(memory)
    system._locked_words = {
        block: [tuple(entry) for entry in entries] for block, entries in locked
    }
    for directory, entries in zip(system.lock_directories, directories):
        directory.entries = {
            addr: LockState(state) for addr, state in entries
        }
    system._waiting = dict(waiting)
    interconnect = system.interconnect
    if interconnect.tracks_residency:
        from repro.core.protocol.directory import DirectoryEntry, DirState

        interconnect.entries = {
            block: DirectoryEntry(DirState(state), owner, sharers, transient)
            for block, state, owner, sharers, transient in dir_entries
        }


def _canonical(
    system: PIMCacheSystem,
    words: Sequence[int],
    last: Dict[int, int],
    undefined: FrozenSet[int],
    block_shift: int,
    block_mask: int,
):
    """Hashable key of the current system state under the freshness
    abstraction (data words collapse to fresh/stale bits)."""
    def fresh(addr: int, value: int) -> int:
        return 1 if value == last.get(addr, 0) else 0

    caches = []
    for cache in system.caches:
        lines = sorted(
            (line.lru, block, int(line.state), line.data)
            for block, line in cache.lines()
        )
        caches.append(tuple(
            (
                block,
                state,
                tuple(
                    fresh((block << block_shift) + offset, word)
                    for offset, word in enumerate(data)
                ),
            )
            for _, block, state, data in lines
        ))
    memory = system.memory
    return (
        tuple(caches),
        tuple(fresh(addr, memory.get(addr, 0)) for addr in words),
        tuple(
            sorted(
                (block, tuple(sorted(entries)))
                for block, entries in system._locked_words.items()
            )
        ),
        tuple(
            tuple(sorted(
                (addr, int(state)) for addr, state in directory.entries.items()
            ))
            for directory in system.lock_directories
        ),
        tuple(sorted(system._waiting.items())),
        tuple(sorted(undefined)),
        _directory_state(system),
    )


def _render_state(
    system: PIMCacheSystem,
    words: Sequence[int],
    last: Dict[int, int],
    undefined: FrozenSet[int],
) -> Tuple[str, ...]:
    lines: List[str] = []
    for pe, cache in enumerate(system.caches):
        entries = [
            f"block {block:#x} {line.state.name} data={list(line.data)}"
            for block, line in sorted(cache.lines())
        ]
        lines.append(f"PE{pe} cache: " + ("; ".join(entries) or "empty"))
    lines.append(
        "memory: "
        + ", ".join(f"{a:#x}={system.memory.get(a, 0)}" for a in words)
    )
    lines.append(
        "last writes: "
        + (", ".join(f"{a:#x}={v}" for a, v in sorted(last.items())) or "none")
    )
    if undefined:
        lines.append(
            "dead (purged) words: "
            + ", ".join(f"{a:#x}" for a in sorted(undefined))
        )
    for pe, directory in enumerate(system.lock_directories):
        if directory.entries:
            held = ", ".join(
                f"{a:#x}:{s.name}" for a, s in sorted(directory.entries.items())
            )
            lines.append(f"PE{pe} locks: {held}")
    if system._waiting:
        lines.append(
            "busy-waiting: "
            + ", ".join(
                f"PE{pe} on block {b:#x}"
                for pe, b in sorted(system._waiting.items())
            )
        )
    dir_entries = _directory_state(system)
    if dir_entries:
        from repro.core.protocol.directory import DirState

        lines.append(
            "home directory: "
            + "; ".join(
                f"block {block:#x} {DirState(state).name} "
                f"owner={owner} sharers={sharers:#b}"
                + (f" transient={transient}" if transient else "")
                for block, state, owner, sharers, transient in dir_entries
            )
        )
    return tuple(lines)


# ---------------------------------------------------------------------------
# Invariant battery.


def _check_state(
    system: PIMCacheSystem,
    words: Sequence[int],
    last: Dict[int, int],
    undefined: set,
    accessed_block: int,
    purged_dirty: bool,
) -> Optional[Violation]:
    """Check every invariant on the current state.

    *undefined* is updated in place: a live word whose value legally
    died this step (an honoured purge of a dirty copy of the accessed
    block) becomes undefined instead of violating.
    """
    shift = system._block_shift
    mask = system._block_mask
    by_block: Dict[int, List[Tuple[int, object]]] = {}
    for pe, cache in enumerate(system.caches):
        for block, line in cache.lines():
            by_block.setdefault(block, []).append((pe, line))

    # -- structure: presence map and SWMR ------------------------------
    for block, copies in by_block.items():
        holders = system._holders.get(block, set())
        pes = {pe for pe, _ in copies}
        if pes != holders:
            return Violation(
                "presence",
                f"block {block:#x}: presence map {sorted(holders)} != "
                f"caches {sorted(pes)}",
            )
        exclusive = [pe for pe, line in copies if line.state in EXCLUSIVE_STATES]
        if exclusive and len(copies) > 1:
            return Violation(
                "single-writer",
                f"block {block:#x}: exclusive copy in PE{exclusive[0]} "
                f"coexists with {len(copies) - 1} other cop"
                f"{'y' if len(copies) == 2 else 'ies'}",
            )
        dirty = [pe for pe, line in copies if line.state in DIRTY_STATES]
        if len(dirty) > 1:
            return Violation(
                "single-writer",
                f"block {block:#x}: multiple dirty copies in PEs {dirty}",
            )
    for block, holders in system._holders.items():
        if not holders:
            return Violation(
                "presence", f"block {block:#x}: empty holder set left behind"
            )
        if block not in by_block:
            return Violation(
                "presence",
                f"block {block:#x}: presence map lists {sorted(holders)}, "
                "caches hold none",
            )

    # -- lock directories ----------------------------------------------
    owners: Dict[int, List[int]] = {}
    for pe, directory in enumerate(system.lock_directories):
        for addr, state in directory.entries.items():
            if state not in (LockState.LCK, LockState.LWAIT):
                return Violation(
                    "lock-directory",
                    f"PE{pe} directory entry {addr:#x} in state {state!r}",
                )
            owners.setdefault(addr, []).append(pe)
            entries = system._locked_words.get(addr >> shift, [])
            if (pe, addr) not in entries:
                return Violation(
                    "lock-directory",
                    f"word {addr:#x}: PE{pe}'s directory holds it but the "
                    "locked-word map has no matching entry",
                )
    for addr, holders_ in owners.items():
        if len(holders_) > 1:
            return Violation(
                "lock-directory",
                f"word {addr:#x} locked by multiple PEs {holders_}",
            )
    for block, entries in system._locked_words.items():
        if not entries:
            return Violation(
                "lock-directory",
                f"block {block:#x}: empty locked-word list left behind",
            )
        if len(entries) != len(set(entries)):
            return Violation(
                "lock-directory",
                f"block {block:#x}: duplicate locked-word entries {entries}",
            )
        for owner, addr in entries:
            if addr >> shift != block:
                return Violation(
                    "lock-directory",
                    f"locked word {addr:#x} filed under block {block:#x}",
                )
            if not system.lock_directories[owner].holds(addr):
                return Violation(
                    "lock-directory",
                    f"word {addr:#x}: locked-word map says PE{owner} holds "
                    "it but its directory has no entry",
                )

    # -- data value and durability --------------------------------------
    memory = system.memory
    for addr in words:
        if addr in undefined:
            continue
        block = addr >> shift
        offset = addr & mask
        expected = last.get(addr, 0)
        copies = by_block.get(block, ())
        stale = [
            (pe, line.data[offset])
            for pe, line in copies
            if line.data[offset] != expected
        ]
        dirty_exists = any(line.state in DIRTY_STATES for _, line in copies)
        memory_ok = memory.get(addr, 0) == expected
        if not stale and (memory_ok or dirty_exists):
            continue
        if purged_dirty and block == accessed_block:
            # The honoured ER/RP consumed the dirty copy: the word's data
            # is dead by the read-once contract, not lost by the protocol.
            undefined.add(addr)
            continue
        if stale:
            pe, value = stale[0]
            return Violation(
                "data-value",
                f"word {addr:#x}: PE{pe}'s copy holds {value}, last write "
                f"was {expected}",
            )
        return Violation(
            "dirty-loss",
            f"word {addr:#x}: shared memory holds {memory.get(addr, 0)}, not "
            f"the last written value {expected}, and no cache copy carries "
            "copy-back duty for it — a dirty copy was dropped without "
            "copyback",
        )
    return None


# ---------------------------------------------------------------------------
# In-flight transient validation (directory interconnect only).


class _TransientWatcher:
    """Observer on a :class:`DirectoryInterconnect`: validates every
    in-flight micro-step of each transaction against its table row.

    Checked per transaction: the entry holds the row's transient name
    for the whole flight, the sharer mask only shrinks while in flight,
    and the completion state/owner match the row's prediction
    (a concrete :class:`DirState`, ``"excl"`` for E-or-M owned by the
    requester, or ``"resid"``/zero-sharers for whatever residency
    resolves to).  Violations are recorded, not raised, so the BFS loop
    can surface them with the minimal counterexample path.
    """

    def __init__(self, interconnect):
        self._interconnect = interconnect
        self.violations: List[str] = []
        self._issued: Optional[tuple] = None

    def take(self) -> Optional[str]:
        if not self.violations:
            return None
        detail = self.violations[0]
        self.violations.clear()
        self._issued = None
        return detail

    def _effective_rule(self, block: int, entry, rule):
        """The row whose predictions the completion must satisfy.

        An entry in E may cover a silently dirtied (EM) line — the one
        transition invisible to the home node; the controller then acts
        per the owned-dirty row, so the M row's predictions apply.  The
        transact fires *after* the handler moved the copies, so the
        tell is any dirty state on the owner's line (the supplier rule
        may already have demoted EM to SM).
        """
        from repro.core.protocol.directory import DirState

        if entry.state is not DirState.E or entry.owner < 0:
            return rule
        interconnect = self._interconnect
        line = interconnect.system.caches[entry.owner]._lines.get(block)
        if line is None or line.state not in DIRTY_STATES:
            return rule
        for (state, req), row in interconnect._rules.items():
            if row is rule and state is DirState.E:
                substitute = interconnect._rules.get((DirState.M, req))
                if substitute is not None:
                    return substitute
        return rule

    def __call__(self, step, pe, block, entry, rule) -> None:
        from repro.core.protocol.directory import (
            NEXT_EXCLUSIVE,
            NEXT_RESIDENT,
            DirState,
        )

        if step == "issue":
            if entry.transient != rule.transient:
                self.violations.append(
                    f"block {block:#x}: entry transient {entry.transient!r} "
                    f"!= row transient {rule.transient!r} at issue"
                )
            self._issued = (
                pe, block, self._effective_rule(block, entry, rule),
                entry.sharers, entry.owner,
            )
            return
        issued = self._issued
        if issued is None or issued[1] != block or issued[0] != pe:
            self.violations.append(
                f"block {block:#x}: {step} micro-step outside the "
                "transaction it belongs to"
            )
            return
        _, _, eff_rule, sharers0, owner0 = issued
        if step != "complete":
            # forward / copyback / inval / update: still in flight.
            if entry.transient != rule.transient:
                self.violations.append(
                    f"block {block:#x}: transient dropped to "
                    f"{entry.transient!r} mid-flight ({step})"
                )
            if entry.sharers & ~sharers0:
                self.violations.append(
                    f"block {block:#x}: sharer mask grew mid-flight "
                    f"({entry.sharers:#b} from {sharers0:#b})"
                )
            return
        self._issued = None
        if entry.transient is not None:
            self.violations.append(
                f"block {block:#x}: transient {entry.transient!r} "
                "survived completion"
            )
        if not entry.sharers:
            # The block died (a consumed GETS_NA/GETM_NA): the entry is
            # about to be deleted, which *is* the I state.
            if eff_rule.next_state not in (DirState.I, NEXT_RESIDENT):
                self.violations.append(
                    f"block {block:#x}: all copies died but the row "
                    f"predicted {eff_rule.next_state!r}"
                )
            return
        predicted = eff_rule.next_state
        if predicted == NEXT_RESIDENT:
            pass
        elif predicted == NEXT_EXCLUSIVE:
            if entry.state not in (DirState.E, DirState.M) or entry.owner != pe:
                self.violations.append(
                    f"block {block:#x}: row predicted exclusive-to-"
                    f"requester, completion is {entry.state.name} "
                    f"owner={entry.owner} (requester PE{pe})"
                )
        elif entry.state is not predicted:
            self.violations.append(
                f"block {block:#x}: row predicted {predicted.name}, "
                f"completion is {entry.state.name}"
            )
        owner_rule = eff_rule.owner
        if owner_rule == "req":
            if entry.owner != pe and predicted != NEXT_RESIDENT:
                self.violations.append(
                    f"block {block:#x}: row assigns ownership to the "
                    f"requester PE{pe}, completion owner={entry.owner}"
                )
        elif owner_rule == "none":
            if entry.owner != -1:
                self.violations.append(
                    f"block {block:#x}: row predicts no owner, "
                    f"completion owner={entry.owner}"
                )
        elif owner_rule == "keep":
            if entry.owner != owner0:
                self.violations.append(
                    f"block {block:#x}: row keeps owner {owner0}, "
                    f"completion owner={entry.owner}"
                )
        # "resid": whatever residency resolved to is the prediction.


# ---------------------------------------------------------------------------
# The breadth-first closure.


def broken_demo_spec(name: str = "pim_broken_demo") -> ProtocolSpec:
    """A deliberately broken pim variant for demos and negative tests.

    Its supplier rule for EM drops the dirty state to S *without*
    copyback — the bug class :class:`ProtocolSpec`'s eager validation
    rejects, injected here by mutating the (plain-dict) supplier table
    after construction, exactly as a buggy hand-edit would.  The model
    checker finds the dirty-loss in two steps: a write, then a remote
    read supplied by the dirty copy.
    """
    import dataclasses

    from repro.core.protocol import get_protocol
    from repro.core.protocol.spec import SupplierRule

    base = get_protocol("pim")
    spec = dataclasses.replace(base, name=name, supplier=dict(base.supplier))
    spec.supplier[CacheState.EM] = SupplierRule(CacheState.S, copyback=False)
    return spec


def check_protocol(
    protocol: Union[str, ProtocolSpec],
    options: Optional[ModelCheckOptions] = None,
) -> CheckResult:
    """Model-check one protocol spec (registered name or spec object).

    Explores the reachable state space breadth-first from the empty
    (all-invalid, all-unlocked) state under every ``(pe, op, word)``
    access of the options' universe, checking the invariant battery on
    each newly reached state.  Returns a :class:`CheckResult`; on a
    violation its counterexample replays the shortest access sequence
    from reset (BFS order makes it minimal in steps).
    """
    opts = options or ModelCheckOptions()
    if isinstance(protocol, ProtocolSpec):
        with temporarily_register(protocol):
            return _check_registered(protocol.name, opts)
    return _check_registered(protocol, opts)


def _check_registered(name: str, opts: ModelCheckOptions) -> CheckResult:
    config = SimulationConfig(
        cache=CacheConfig(
            block_words=opts.block_words,
            n_sets=1,
            associativity=max(1, opts.n_blocks),
        ),
        opts=OptimizationConfig.all(),
        protocol=name,
        track_data=True,
        interconnect=opts.interconnect,
    )
    system = PIMCacheSystem(config, opts.n_pes)
    watcher = None
    if system.interconnect.tracks_residency:
        watcher = _TransientWatcher(system.interconnect)
        system.interconnect.observer = watcher
    words = opts.words()
    area = int(opts.area)
    shift = system._block_shift
    mask = system._block_mask
    steps = [
        (pe, int(op), addr)
        for pe in range(opts.n_pes)
        for op in opts.ops
        for addr in words
    ]
    lock_directories = system.lock_directories
    stats = system.stats
    lr = int(Op.LR)

    root_snap = _snapshot(system)
    root_key = _canonical(system, words, {}, frozenset(), shift, mask)
    # Frontier entries: (snapshot, last-writes, undefined words, next
    # write value, path).  The write counter is monotone along a path so
    # every store writes a fresh value; it is *not* part of the
    # canonical key (freshness bits abstract the values away).
    queue = deque([(root_snap, {}, frozenset(), 0, ())])
    seen = {root_key}
    transitions = 0
    complete = True

    while queue:
        snap, last, undefined, counter, path = queue.popleft()
        for pe, op, addr in steps:
            _restore(system, snap)
            if op == lr and lock_directories[pe].holds(addr):
                # Software never re-locks a lock it already holds; the
                # controller would file a duplicate directory entry.
                continue
            transitions += 1
            value = 0
            next_counter = counter
            if op in WRITE_OPS:
                next_counter += 1
                value = next_counter
            purges_before = stats.purges_dirty
            violation = None
            try:
                cycles, _, read_value = system.access(
                    pe, op, area, addr, value, 0
                )
            except DirectoryProtocolError as exc:
                # The directory table has no row for a request the
                # controller issued — a derivation hole, minimal path
                # attached.
                violation = Violation("directory-table", str(exc))
                cycles, read_value = 0, None
            blocked = cycles == BLOCKED
            new_last = last
            new_undefined = set(undefined)
            if watcher is not None and violation is None:
                detail = watcher.take()
                if detail is not None:
                    violation = Violation("directory-transient", detail)
            if violation is None and not blocked:
                if op in READ_VALUE_OPS and addr not in undefined:
                    expected = last.get(addr, 0)
                    if read_value != expected:
                        violation = Violation(
                            "data-value",
                            f"PE{pe} {OP_NAMES[op]} of {addr:#x} returned "
                            f"{read_value}, last write was {expected}",
                        )
                if op in WRITE_OPS:
                    new_last = dict(last)
                    new_last[addr] = value
                    new_undefined.discard(addr)
            if violation is None:
                violation = _check_state(
                    system,
                    words,
                    new_last,
                    new_undefined,
                    accessed_block=addr >> shift,
                    purged_dirty=stats.purges_dirty > purges_before,
                )
            if violation is None:
                try:
                    system.interconnect.check()
                except AssertionError as exc:
                    violation = Violation("directory-agreement", str(exc))
            if violation is not None:
                steps_taken = path + ((pe, op, addr),)
                return CheckResult(
                    protocol=name,
                    clean=False,
                    states=len(seen),
                    transitions=transitions,
                    complete=False,
                    options=opts,
                    counterexample=Counterexample(
                        steps=steps_taken,
                        area=area,
                        violation=violation,
                        state=_render_state(
                            system, words, new_last, frozenset(new_undefined)
                        ),
                    ),
                )
            frozen_undefined = frozenset(new_undefined)
            key = _canonical(
                system, words, new_last, frozen_undefined, shift, mask
            )
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > opts.max_states:
                complete = False
                queue.clear()
                break
            queue.append((
                _snapshot(system),
                new_last,
                frozen_undefined,
                next_counter,
                path + ((pe, op, addr),),
            ))

    return CheckResult(
        protocol=name,
        clean=True,
        states=len(seen),
        transitions=transitions,
        complete=complete,
        options=opts,
    )
