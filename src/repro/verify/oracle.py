"""Differential fuzzing of every replay path against a flat memory.

One fuzz *case* takes a contract-respecting random trace
(:func:`~repro.trace.synthetic.generate_contract_trace`) and runs it
through every execution path the repository has, holding them to two
standards:

* **values** — every read must return exactly what a flat
  word-granularity memory (:class:`~repro.verify.reference.FlatMemory`)
  predicts, on the per-access system (``track_data=True``) and, for
  multi-cluster configurations, on the interleaved clustered system
  with one flat memory per cluster (clusters share nothing);
* **counters** — the interpreted fast kernel, the generated
  (:mod:`repro.core.protocol.codegen`) kernel where available, the
  checked per-access loop, the sharded cluster replay and the
  interleaved cluster replay must produce bit-identical statistics
  (which also pins down that ``track_data`` is counter-neutral).

Any mismatch raises :class:`Divergence`; the fuzz driver then shrinks
the trace with :func:`~repro.verify.shrink.shrink_trace` until the
divergence fits in a screenful and records the reduced reference list.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.replay import replay_clustered, replay_interleaved, split_trace
from repro.cluster.system import ClusterCacheSystem
from repro.core.config import (
    CacheConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.protocol import codegen, protocol_names
from repro.core.replay import ReplayBlockedError, replay, replay_access_driven
from repro.core.speculative import (
    DEFAULT_BATCH_REFS,
    DEFAULT_SIGNATURE_BITS,
    SpeculativeDriver,
    replay_speculative,
)
from repro.core.system import PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_NAMES, OP_NAMES
from repro.trace.synthetic import (
    generate_contract_trace,
    generate_false_sharing_trace,
)
from repro.verify.reference import (
    READ_VALUE_OPS,
    WRITE_OPS,
    FlatMemory,
    value_for,
)
from repro.verify.shrink import shrink_trace

__all__ = [
    "Divergence",
    "FuzzCase",
    "FuzzReport",
    "run_case",
    "run_fuzz",
    "run_lazypim_case",
]

#: Invariant-check period for the checked replay passes.
_CHECK_EVERY = 256


class Divergence(Exception):
    """Two execution paths (or a path and the flat model) disagreed."""

    def __init__(self, kind: str, detail: str, index: Optional[int] = None):
        self.kind = kind
        self.detail = detail
        self.index = index
        at = f" at trace index {index}" if index is not None else ""
        super().__init__(f"[{kind}]{at}: {detail}")


def _render_refs(buffer: TraceBuffer) -> List[str]:
    """Human-readable reference list for a (shrunken) trace."""
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    return [
        f"PE{pe} {OP_NAMES[op]:<2} {AREA_NAMES[area]}[{addr:#x}]"
        + (" contended" if flags else "")
        for pe, op, area, addr, flags in zip(
            pe_col, op_col, area_col, addr_col, flags_col
        )
    ]


def _dict_diff(label_a: str, a: dict, label_b: str, b: dict) -> str:
    """Readable summary of where two stats dictionaries differ."""
    diffs = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            diffs.append(f"{key}: {label_a}={va!r} {label_b}={vb!r}")
    return "; ".join(diffs[:6]) + ("; …" if len(diffs) > 6 else "")


def _flat_checker(memories: Dict[int, FlatMemory], pes_per_cluster: int):
    """An ``on_result`` hook holding reads to per-cluster flat memories."""

    def on_result(index, pe, op, area, addr, result):
        memory = memories.setdefault(pe // pes_per_cluster, FlatMemory())
        if op in WRITE_OPS:
            memory.write(addr, value_for(index))
        elif op in READ_VALUE_OPS:
            expected = memory.read(addr)
            actual = result[2]
            if actual != expected:
                raise Divergence(
                    "value",
                    f"PE{pe} {OP_NAMES[op]} {AREA_NAMES[area]}[{addr:#x}] "
                    f"returned {actual!r}, flat model predicts {expected}",
                    index,
                )

    return on_result


def run_case(
    trace: TraceBuffer,
    config: SimulationConfig,
    n_pes: int,
    cluster_counts: Sequence[int] = (1, 2),
    check_every: int = _CHECK_EVERY,
) -> int:
    """Run one trace through every execution path; raise on divergence.

    Paths exercised: (1) per-access ``PIMCacheSystem`` with data
    tracking and the flat-memory value check, (2) the interpreted fast
    kernel, plus the generated (``codegen``) kernel when numpy is
    available, (2c) a snapshot/restore mid-run resume that must equal
    the uninterrupted run in both counters and full machine state,
    (3) the checked per-access loop with periodic
    ``check_invariants()``, and (4) for each cluster count the sharded
    fast-kernel replay against the interleaved clustered replay (with a
    per-cluster value pass for multi-cluster runs).  Returns the number
    of references replayed, summed over paths.
    """
    base = replace(config, track_data=False)
    data_config = replace(config, track_data=True)
    refs = 0

    # (1) Value pass: the real system against the flat model.
    system = PIMCacheSystem(data_config, n_pes)
    flat_stats = replay_access_driven(
        trace,
        system,
        values=value_for,
        on_result=_flat_checker({}, n_pes),
    )
    flat = flat_stats.as_dict()
    refs += len(trace)

    # (2) Interpreted fast kernel, no data tracking: counters must be
    # identical.  Pinned explicitly — "auto" would pick the generated
    # kernel and silently stop covering the interpreted path.  The
    # system is kept: the checkpoint pass (2c) compares full machine
    # state against this uninterrupted run.
    fast_system = PIMCacheSystem(base, n_pes)
    fast = replay(trace, system=fast_system, kernel="interpreted").as_dict()
    refs += len(trace)
    if fast != flat:
        raise Divergence(
            "kernel-stats",
            "fast kernel disagrees with the per-access system: "
            + _dict_diff("kernel", fast, "access", flat),
        )

    # (2b) Generated kernel: the compiled straight-line loop must match
    # the same reference bit for bit.
    if codegen.available():
        generated = replay(
            trace, base, n_pes=n_pes, kernel="generated"
        ).as_dict()
        refs += len(trace)
        if generated != flat:
            raise Divergence(
                "generated-stats",
                "generated kernel disagrees with the per-access system: "
                + _dict_diff("generated", generated, "access", flat),
            )

    # (2c) Checkpoint identity: replay a prefix, snapshot through a
    # JSON round trip (exactly what crossing a process boundary does),
    # restore, replay the suffix.  Both the counters and the complete
    # machine state — cache lines, LRU clocks, lock directories,
    # directory entries, interconnect timeline — must equal the
    # uninterrupted run's.
    if len(trace) >= 2:
        import json

        from repro.serve.checkpoint import restore, snapshot

        mid = len(trace) // 2
        prefix_system = PIMCacheSystem(base, n_pes)
        replay(trace.slice(0, mid), system=prefix_system, kernel="interpreted")
        checkpoint = json.loads(json.dumps(snapshot(prefix_system)))
        resumed_system = restore(checkpoint)
        resumed = replay(
            trace.slice(mid, len(trace)),
            system=resumed_system,
            kernel="interpreted",
        ).as_dict()
        refs += len(trace)
        if resumed != flat:
            raise Divergence(
                "checkpoint-stats",
                "snapshot/restore mid-run changed the counters: "
                + _dict_diff("resumed", resumed, "uninterrupted", flat),
            )
        if snapshot(resumed_system) != snapshot(fast_system):
            raise Divergence(
                "checkpoint-state",
                "snapshot/restore mid-run changed machine state (cache "
                "lines, lock directories, directory entries, or clocks)",
            )

    # (3) Checked per-access loop with the structural invariant battery.
    try:
        checked = replay(
            trace, base, n_pes=n_pes, check_invariants_every=check_every
        ).as_dict()
    except AssertionError as error:
        raise Divergence("invariant", str(error)) from error
    refs += len(trace)
    if checked != flat:
        raise Divergence(
            "checked-stats",
            "checked replay disagrees with the per-access system: "
            + _dict_diff("checked", checked, "access", flat),
        )

    # (4) Cluster paths.
    for n_clusters in cluster_counts:
        if n_pes % n_clusters:
            continue
        clustered_config = base.with_clusters(n_clusters)
        sharded = replay_clustered(
            trace, clustered_config, n_pes=n_pes
        ).as_dict()
        refs += len(trace)
        try:
            interleaved = replay_interleaved(
                trace,
                clustered_config,
                n_pes=n_pes,
                check_invariants_every=check_every,
            )
        except AssertionError as error:
            raise Divergence(
                "invariant", f"K={n_clusters}: {error}"
            ) from error
        refs += len(trace)
        if sharded != interleaved.as_dict():
            raise Divergence(
                "cluster-paths",
                f"K={n_clusters} sharded vs interleaved: "
                + _dict_diff("sharded", sharded, "interleaved",
                             interleaved.as_dict()),
            )
        if n_clusters == 1 and interleaved.stats.as_dict() != flat:
            raise Divergence(
                "cluster-flat",
                "K=1 clustered replay disagrees with the flat system: "
                + _dict_diff(
                    "clustered", interleaved.stats.as_dict(), "flat", flat
                ),
            )
        if n_clusters > 1:
            # Per-cluster value pass: clusters share nothing, so each
            # gets its own flat memory.
            replay_interleaved(
                trace,
                replace(clustered_config, track_data=True),
                n_pes=n_pes,
                values=value_for,
                on_result=_flat_checker({}, n_pes // n_clusters),
            )
            refs += len(trace)
    return refs


def run_lazypim_case(
    trace: TraceBuffer,
    config: SimulationConfig,
    n_pes: int,
    cluster_counts: Sequence[int] = (1, 2),
    check_every: int = _CHECK_EVERY,
    batch_refs: int = DEFAULT_BATCH_REFS,
    signature_bits: int = DEFAULT_SIGNATURE_BITS,
    require_rollback: bool = False,
) -> int:
    """Run one trace through every speculative path; raise on divergence.

    The ``mode="lazypim"`` counterpart of :func:`run_case`.  Paths
    exercised: (1) the per-access speculative driver with data tracking
    and the flat-memory value check — every read inside every batch
    (including the doomed attempt's pessimistic replay) must match the
    flat model, which is exactly the "rollbacks are invisible" oracle;
    (1b) final-memory identity against a pessimistic replay after a
    full writeback; (2/2b) interpreted and generated kernels driving
    the batches, counter-identical; (2c) chunked feeding through
    :class:`~repro.core.speculative.SpeculativeDriver` split mid-trace
    (the ``repro serve`` streaming seam) must reproduce the monolithic
    batch boundaries bit for bit; (3) the checked loop with the
    invariant battery at batch boundaries; (4) sharded clustered replay
    per cluster count, interpreted vs generated, with a per-shard value
    pass for multi-cluster runs (speculation is per-bus, so each
    cluster batches independently; there is no interleaved speculative
    path).  With *require_rollback* the case additionally fails unless
    at least one batch actually rolled back — the forced-conflict fuzz
    rotation uses it so a silently-too-weak conflict generator cannot
    pass.  Returns the number of references replayed, summed over paths.
    """
    base = replace(config, track_data=False)
    data_config = replace(config, track_data=True)
    refs = 0

    # (1) Value pass: the speculative driver against the flat model.
    system = PIMCacheSystem(data_config, n_pes)
    flat_stats = replay_speculative(
        trace,
        system=system,
        batch_refs=batch_refs,
        signature_bits=signature_bits,
        values=value_for,
        on_result=_flat_checker({}, n_pes),
    )
    flat = flat_stats.as_dict()
    refs += len(trace)
    if require_rollback and flat_stats.batch_rollbacks == 0:
        raise Divergence(
            "no-rollback",
            f"forced-conflict trace committed all "
            f"{flat_stats.batch_commits} batches without a single "
            "rollback — the conflict generator is too weak",
        )

    # (1b) Rollback invisibility in final state: after a full
    # writeback, the speculative run's memory image must equal a
    # pessimistic replay's.
    reference_system = PIMCacheSystem(data_config, n_pes)
    replay_access_driven(trace, reference_system, values=value_for)
    refs += len(trace)
    system.flush_all(silent=True)
    reference_system.flush_all(silent=True)
    if system.memory != reference_system.memory:
        raise Divergence(
            "lazypim-memory",
            "speculative final memory differs from the pessimistic "
            "replay's after writeback — a rollback leaked state",
        )

    # (2) Interpreted kernel driving the batches: counters must be
    # identical to the per-access driver.
    interpreted = replay(
        trace,
        base,
        n_pes=n_pes,
        kernel="interpreted",
        mode="lazypim",
        batch_refs=batch_refs,
        signature_bits=signature_bits,
    ).as_dict()
    refs += len(trace)
    if interpreted != flat:
        raise Divergence(
            "lazypim-kernel",
            "speculative interpreted kernel disagrees with the "
            "per-access driver: "
            + _dict_diff("kernel", interpreted, "access", flat),
        )

    # (2b) Generated kernel driving the batches.
    if codegen.available():
        generated = replay(
            trace,
            base,
            n_pes=n_pes,
            kernel="generated",
            mode="lazypim",
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        ).as_dict()
        refs += len(trace)
        if generated != flat:
            raise Divergence(
                "lazypim-generated",
                "speculative generated kernel disagrees with the "
                "per-access driver: "
                + _dict_diff("generated", generated, "access", flat),
            )

    # (2c) Chunk-boundary independence: feeding the trace in two pieces
    # must reproduce the monolithic batch segmentation (this is the
    # property ``repro serve`` streaming and its checkpoints lean on).
    if len(trace) >= 2:
        chunked_system = PIMCacheSystem(base, n_pes)
        driver = SpeculativeDriver(
            chunked_system,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        mid = len(trace) // 2
        driver.feed(trace.slice(0, mid))
        driver.feed(trace.slice(mid, len(trace)))
        chunked = driver.flush().as_dict()
        refs += len(trace)
        if chunked != flat:
            raise Divergence(
                "lazypim-chunked",
                "chunked speculative feed disagrees with the monolithic "
                "run: " + _dict_diff("chunked", chunked, "monolithic", flat),
            )

    # (3) Checked loop: structural invariants at batch boundaries.
    try:
        checked = replay_speculative(
            trace,
            base,
            n_pes=n_pes,
            check_invariants_every=check_every,
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        ).as_dict()
    except AssertionError as error:
        raise Divergence("invariant", str(error)) from error
    refs += len(trace)
    if checked != flat:
        raise Divergence(
            "lazypim-checked",
            "checked speculative replay disagrees with the per-access "
            "driver: " + _dict_diff("checked", checked, "access", flat),
        )

    # (4) Clustered speculation: each shard batches independently.
    for n_clusters in cluster_counts:
        if n_pes % n_clusters:
            continue
        clustered_config = base.with_clusters(n_clusters)
        sharded = replay_clustered(
            trace,
            clustered_config,
            n_pes=n_pes,
            kernel="interpreted",
            mode="lazypim",
            batch_refs=batch_refs,
            signature_bits=signature_bits,
        )
        refs += len(trace)
        if n_clusters == 1 and sharded.stats.as_dict() != flat:
            raise Divergence(
                "lazypim-cluster",
                "K=1 speculative clustered replay disagrees with the "
                "flat system: "
                + _dict_diff("clustered", sharded.stats.as_dict(),
                             "flat", flat),
            )
        if codegen.available():
            sharded_generated = replay_clustered(
                trace,
                clustered_config,
                n_pes=n_pes,
                kernel="generated",
                mode="lazypim",
                batch_refs=batch_refs,
                signature_bits=signature_bits,
            )
            refs += len(trace)
            if sharded_generated.as_dict() != sharded.as_dict():
                raise Divergence(
                    "lazypim-cluster",
                    f"K={n_clusters} speculative sharded replay differs "
                    "between kernels: "
                    + _dict_diff(
                        "generated", sharded_generated.as_dict(),
                        "interpreted", sharded.as_dict(),
                    ),
                )
        if n_clusters > 1:
            # Per-shard value pass: clusters share nothing, so each
            # shard is a closed trace with its own flat memory (and its
            # own shard-local value function — self-consistent).
            pes_per_cluster = n_pes // n_clusters
            shards = split_trace(trace, n_pes, n_clusters)
            for cluster_index, shard in enumerate(shards):
                shard_system = ClusterCacheSystem(
                    replace(clustered_config, track_data=True),
                    pes_per_cluster,
                    cluster_index,
                )
                replay_speculative(
                    shard,
                    system=shard_system,
                    batch_refs=batch_refs,
                    signature_bits=signature_bits,
                    values=value_for,
                    on_result=_flat_checker({}, pes_per_cluster),
                )
                refs += len(shard)
    return refs


@dataclass
class FuzzCase:
    """Outcome of one fuzz case."""

    protocol: str
    variant: str
    seed: int
    n_refs: int
    refs_run: int
    ok: bool
    kind: Optional[str] = None
    detail: Optional[str] = None
    index: Optional[int] = None
    shrunk_refs: Optional[List[str]] = None
    mode: str = "pessimistic"

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "variant": self.variant,
            "mode": self.mode,
            "seed": self.seed,
            "n_refs": self.n_refs,
            "refs_run": self.refs_run,
            "ok": self.ok,
            "kind": self.kind,
            "detail": self.detail,
            "index": self.index,
            "shrunk_refs": self.shrunk_refs,
        }


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    seed: int
    budget: int
    n_pes: int
    cluster_counts: Tuple[int, ...]
    cases: List[FuzzCase] = field(default_factory=list)

    @property
    def refs_total(self) -> int:
        return sum(case.n_refs for case in self.cases)

    @property
    def divergences(self) -> List[FuzzCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def clean(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        lines = []
        for case in self.cases:
            status = "ok" if case.ok else f"DIVERGED [{case.kind}]"
            label = f"{case.protocol}/{case.variant}"
            if case.mode != "pessimistic":
                label = f"{case.protocol}/{case.mode}-{case.variant}"
            lines.append(
                f"{label} seed={case.seed} ({case.n_refs} refs): {status}"
            )
            if not case.ok:
                lines.append(f"  {case.detail}")
                for ref in case.shrunk_refs or []:
                    lines.append(f"  {ref}")
        verdict = "clean" if self.clean else (
            f"{len(self.divergences)} divergence(s)"
        )
        lines.append(
            f"fuzz: {len(self.cases)} case(s), {self.refs_total} references, "
            f"{self.n_pes} PEs, clusters {list(self.cluster_counts)} "
            f"— {verdict}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "n_pes": self.n_pes,
            "cluster_counts": list(self.cluster_counts),
            "cases": [case.as_dict() for case in self.cases],
            "refs_total": self.refs_total,
            "clean": self.clean,
        }


def _variants(protocol: str) -> Dict[str, SimulationConfig]:
    """The four configurations each protocol is fuzzed under."""
    base = SimulationConfig(protocol=protocol)
    return {
        "base": base,
        # Four one-way sets: constant eviction and victim-copyback load.
        "small": base.with_cache(
            CacheConfig(block_words=4, n_sets=4, associativity=1)
        ),
        # Every optimized command demoted: the conventional-cache paths.
        "no_opt": base.with_opts(OptimizationConfig.none()),
        # Home-node directory backend: same protocol, point-to-point
        # resolution; every divergence oracle must still hold.
        "directory": base.with_interconnect("directory"),
    }


def _reproduces(
    kind: str,
    config: SimulationConfig,
    n_pes: int,
    cluster_counts: Sequence[int],
    mode: str = "pessimistic",
):
    """Shrinking predicate: does the candidate still diverge the same way?"""

    def predicate(candidate: TraceBuffer) -> bool:
        try:
            if mode == "lazypim":
                run_lazypim_case(candidate, config, n_pes, cluster_counts)
            else:
                run_case(candidate, config, n_pes, cluster_counts)
        except Divergence as divergence:
            return divergence.kind == kind
        except ReplayBlockedError:
            return False  # shrinking broke lock order; candidate invalid
        return False

    return predicate


def run_fuzz(
    seed: int = 0,
    budget: int = 10_000,
    n_pes: int = 4,
    refs_per_case: int = 2_000,
    cluster_counts: Sequence[int] = (1, 2),
    protocols: Optional[Sequence[str]] = None,
    shrink: bool = True,
    max_shrink_evals: int = 128,
    interconnect: Optional[str] = None,
    modes: Sequence[str] = ("pessimistic",),
) -> FuzzReport:
    """Fuzz every replay path until *budget* references have been run.

    Cases rotate over every registered protocol (or *protocols*) and the
    configuration variants of :func:`_variants` (including the
    directory-interconnect backend); each case draws a
    fresh contract trace from a seed derived deterministically from
    *seed* and the case number, so a report is reproducible from its
    ``(seed, budget)`` alone.  Divergent traces are shrunk (bounded by
    *max_shrink_evals* predicate evaluations) and the reduced reference
    list is attached to the case record.

    With ``"lazypim"`` in *modes*, the rotation additionally covers the
    speculative path (:func:`run_lazypim_case`): per protocol a
    forced-conflict case on a false-sharing trace (which must observe
    at least one rollback — see
    :func:`~repro.trace.synthetic.generate_false_sharing_trace`), a
    contract-trace case on the bus backend, and one on the directory
    backend.  The forced-conflict combos are ordered first so every
    fuzz budget, however small, exercises a real rollback.
    """
    names = list(protocols) if protocols else protocol_names()
    combos = []
    if "lazypim" in modes:
        # Conflict cases first: any budget covers at least one rollback.
        for protocol in names:
            base = SimulationConfig(protocol=protocol)
            combos.append((protocol, "conflict", base, "lazypim"))
        for protocol in names:
            base = SimulationConfig(protocol=protocol)
            combos.append((protocol, "base", base, "lazypim"))
            combos.append(
                (protocol, "directory",
                 base.with_interconnect("directory"), "lazypim")
            )
    if "pessimistic" in modes:
        combos.extend(
            (protocol, variant, config, "pessimistic")
            for protocol in names
            for variant, config in _variants(protocol).items()
        )
    if not combos:
        raise ValueError(f"no known mode in {list(modes)!r}")
    if interconnect is not None:
        # Force every variant onto one backend (the CLI's
        # ``--interconnect``); the dedicated "directory" variant is
        # dropped since it would duplicate a forced base.
        combos = [
            (protocol, variant, config.with_interconnect(interconnect), mode)
            for protocol, variant, config, mode in combos
            if variant != "directory"
        ]
    report = FuzzReport(
        seed=seed,
        budget=budget,
        n_pes=n_pes,
        cluster_counts=tuple(cluster_counts),
    )
    case_number = 0
    while report.refs_total < budget:
        protocol, variant, config, mode = combos[case_number % len(combos)]
        case_seed = seed + 7919 * case_number  # distinct, reproducible
        forced_conflict = mode == "lazypim" and variant == "conflict"
        if forced_conflict:
            trace = generate_false_sharing_trace(
                refs_per_case, n_pes=n_pes, seed=case_seed
            )
        else:
            trace = generate_contract_trace(
                refs_per_case, n_pes=n_pes, seed=case_seed, opts=config.opts
            )
        try:
            if mode == "lazypim":
                refs_run = run_lazypim_case(
                    trace, config, n_pes, cluster_counts,
                    require_rollback=forced_conflict,
                )
            else:
                refs_run = run_case(trace, config, n_pes, cluster_counts)
            report.cases.append(FuzzCase(
                protocol=protocol,
                variant=variant,
                seed=case_seed,
                n_refs=len(trace),
                refs_run=refs_run,
                ok=True,
                mode=mode,
            ))
        except Divergence as divergence:
            shrunk_refs = None
            if shrink:
                reduced = shrink_trace(
                    trace,
                    _reproduces(
                        divergence.kind, config, n_pes, cluster_counts,
                        mode=mode,
                    ),
                    max_evals=max_shrink_evals,
                )
                shrunk_refs = _render_refs(reduced)
            report.cases.append(FuzzCase(
                protocol=protocol,
                variant=variant,
                seed=case_seed,
                n_refs=len(trace),
                refs_run=len(trace),
                ok=False,
                kind=divergence.kind,
                detail=divergence.detail,
                index=divergence.index,
                shrunk_refs=shrunk_refs,
                mode=mode,
            ))
        case_number += 1
    return report
