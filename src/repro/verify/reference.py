"""Word-granularity flat-memory reference model.

The oracle side of differential verification: a trivially correct
single-copy memory.  If the coherence machinery in
:class:`~repro.core.system.PIMCacheSystem` is right, every read it
returns must equal what this model predicts — caches, bus patterns,
supplier tables and purges are all supposed to be *invisible* to the
values a program observes (for data that is still live under the
software contracts; see :mod:`repro.verify.oracle` for how the trace
generator keeps the contracts).

Traces carry no value column (:class:`~repro.trace.buffer.TraceBuffer`
stores pe/op/area/address/flags only), so write values are derived
deterministically from the trace index via :func:`value_for`.  That
keeps the oracle meaningful under trace shrinking: dropping references
renumbers nothing, because the value written at original index ``i`` is
recomputed from the *surviving* trace's own indices on replay.
"""

from __future__ import annotations

from typing import Dict

from repro.trace.events import Op

__all__ = [
    "FlatMemory",
    "READ_VALUE_OPS",
    "WRITE_OPS",
    "value_for",
]

#: Operations whose access result carries a read value to check.  ``U``
#: reads nothing; ``W``/``UW``/``DW`` are stores.
READ_VALUE_OPS = frozenset({Op.R, Op.LR, Op.ER, Op.RP, Op.RI})

#: Operations that store the supplied value at the addressed word.
WRITE_OPS = frozenset({Op.W, Op.UW, Op.DW})


def value_for(index: int) -> int:
    """The data word the reference at trace *index* writes.

    ``index + 1`` keeps every written value distinct and nonzero (the
    flat model's default for never-written words is 0, so a store of 0
    would be indistinguishable from a lost store).
    """
    return index + 1


class FlatMemory:
    """A single flat word store — the trivially coherent memory."""

    __slots__ = ("words",)

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}

    def read(self, address: int) -> int:
        return self.words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self.words[address] = value

    def __len__(self) -> int:
        return len(self.words)

    def __repr__(self) -> str:
        return f"FlatMemory({len(self.words)} words written)"
