"""Automatic trace shrinking for differential-fuzzing failures.

A divergence found in a 2 000-reference fuzz trace is unreadable; the
same divergence in a dozen references is a bug report.  This is a
delta-debugging reducer (ddmin-style, Zeller & Hildebrandt) specialized
to :class:`~repro.trace.buffer.TraceBuffer`: repeatedly drop chunks of
references and keep any candidate on which the caller's predicate still
fails, halving the chunk size until single references are tried.

The predicate owns the definition of "still fails" — the oracle passes
a closure that re-runs the diverging comparison and checks the same
divergence *kind* reproduces.  Candidates that are merely invalid (e.g.
dropping an unlock makes a later lock acquisition block) must return
``False`` from the predicate, not raise.

Write values are derived from trace indices
(:func:`repro.verify.reference.value_for`), so a shrunken trace is
self-consistent: the surviving references are renumbered and both the
replay and the flat model derive the *same* new values from the new
indices.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.trace.buffer import TraceBuffer

__all__ = ["shrink_trace", "subset"]


def subset(buffer: TraceBuffer, keep: Sequence[int]) -> TraceBuffer:
    """A new buffer holding *buffer*'s references at indices *keep*."""
    pe_col, op_col, area_col, addr_col, flags_col = buffer.columns()
    out = TraceBuffer(n_pes=buffer.n_pes)
    append = out.append
    for index in keep:
        append(
            pe_col[index],
            op_col[index],
            area_col[index],
            addr_col[index],
            flags_col[index],
        )
    return out


def shrink_trace(
    buffer: TraceBuffer,
    still_fails: Callable[[TraceBuffer], bool],
    max_evals: int = 256,
) -> TraceBuffer:
    """Shrink *buffer* to a smaller trace on which *still_fails* holds.

    ``still_fails(candidate)`` must return ``True`` exactly when the
    candidate reproduces the original failure (and ``False`` — not
    raise — for invalid candidates).  At most *max_evals* candidates
    are evaluated; the smallest failing trace seen is returned, which
    is *buffer* itself if nothing smaller reproduces.  The result is
    1-minimal with respect to the chunk sizes actually tried, not
    globally minimal — good enough to read.
    """
    indices = list(range(len(buffer)))
    evals = 0
    chunk = max(1, len(indices) // 2)
    while evals < max_evals:
        shrunk_this_pass = False
        start = 0
        while start < len(indices) and evals < max_evals:
            candidate = indices[:start] + indices[start + chunk:]
            if not candidate:
                start += chunk
                continue
            evals += 1
            if still_fails(subset(buffer, candidate)):
                indices = candidate
                shrunk_this_pass = True
                # Retry the same position: the next chunk slid into it.
            else:
                start += chunk
        if chunk == 1:
            if not shrunk_this_pass:
                break
        else:
            chunk = max(1, chunk // 2)
    return subset(buffer, indices)
