"""Shared fixtures.

Heavy objects (benchmark runs) are session-scoped: the tiny-scale
workload cache is shared by every analysis test, mirroring how the
experiment harness itself amortizes emulation runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import Workloads
from repro.core.config import MachineConfig, SimulationConfig
from repro.core.system import PIMCacheSystem
from repro.machine.machine import KL1Machine


@pytest.fixture
def system():
    """A 4-PE cache system with data tracking, base geometry."""
    return PIMCacheSystem(SimulationConfig(track_data=True), 4)


@pytest.fixture
def small_system():
    """A tiny 2-set cache so eviction paths are easy to reach."""
    from repro.core.config import CacheConfig

    config = SimulationConfig(
        cache=CacheConfig(block_words=4, n_sets=2, associativity=2),
        track_data=True,
    )
    return PIMCacheSystem(config, 4)


@pytest.fixture(scope="session")
def tiny_workloads():
    """Session-scoped tiny-scale benchmark runs for the analysis tests."""
    return Workloads(scale="tiny")


def make_machine(source: str, n_pes: int = 2, **config_kwargs) -> KL1Machine:
    """Convenience constructor used across machine tests."""
    return KL1Machine(source, MachineConfig(n_pes=n_pes, seed=1, **config_kwargs))


@pytest.fixture
def machine_factory():
    return make_machine
