"""Shared fixtures.

Heavy objects (benchmark runs) are session-scoped: the tiny-scale
workload cache is shared by every analysis test, mirroring how the
experiment harness itself amortizes emulation runs.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis.runner import Workloads
from repro.core.config import MachineConfig, SimulationConfig
from repro.core.system import PIMCacheSystem
from repro.machine.machine import KL1Machine


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate tests/golden/protocol_stats.json before the run "
             "and print a summary of every changed counter (only do this "
             "for a deliberate change to the simulated architecture)",
    )


def _golden_diff_summary(old: dict, new: dict) -> list:
    lines = []
    for key in sorted(set(old) | set(new)):
        if key not in old:
            lines.append(f"  + {key} (new config)")
        elif key not in new:
            lines.append(f"  - {key} (config removed)")
        elif old[key] != new[key]:
            fields = sorted(
                field
                for field in set(old[key]) | set(new[key])
                if old[key].get(field) != new[key].get(field)
            )
            lines.append(f"  ~ {key}: {', '.join(fields)}")
    return lines


def pytest_configure(config):
    if not config.getoption("--update-goldens"):
        return
    # Load the generator script directly (tests/golden is not a package)
    # and rewrite the golden file before any test collects it.
    script = Path(__file__).parent / "golden" / "generate_goldens.py"
    spec = importlib.util.spec_from_file_location("generate_goldens", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    old = (
        json.loads(module.GOLDEN_PATH.read_text())
        if module.GOLDEN_PATH.exists()
        else {}
    )
    new = module.generate()
    module.GOLDEN_PATH.write_text(
        json.dumps(new, indent=1, sort_keys=True) + "\n"
    )
    changed = _golden_diff_summary(old, new)
    print(f"\n--update-goldens: wrote {len(new)} records to "
          f"{module.GOLDEN_PATH}")
    if changed:
        print(f"{len(changed)} of {len(new)} config(s) changed:")
        for line in changed:
            print(line)
    else:
        print("no changes against the committed goldens")


@pytest.fixture
def system():
    """A 4-PE cache system with data tracking, base geometry."""
    return PIMCacheSystem(SimulationConfig(track_data=True), 4)


@pytest.fixture
def small_system():
    """A tiny 2-set cache so eviction paths are easy to reach."""
    from repro.core.config import CacheConfig

    config = SimulationConfig(
        cache=CacheConfig(block_words=4, n_sets=2, associativity=2),
        track_data=True,
    )
    return PIMCacheSystem(config, 4)


@pytest.fixture(scope="session")
def tiny_workloads():
    """Session-scoped tiny-scale benchmark runs for the analysis tests."""
    return Workloads(scale="tiny")


def make_machine(source: str, n_pes: int = 2, **config_kwargs) -> KL1Machine:
    """Convenience constructor used across machine tests."""
    return KL1Machine(source, MachineConfig(n_pes=n_pes, seed=1, **config_kwargs))


@pytest.fixture
def machine_factory():
    return make_machine
