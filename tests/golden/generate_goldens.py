"""Regenerate the pre-refactor golden protocol statistics.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_goldens.py

The goldens pin the exact counter behaviour (every ``SystemStats``
field, ``pe_cycles`` included) of the four original protocols on two
deterministic synthetic traces under three cache configurations.  They
were generated at the commit *before* the table-driven protocol layer
existed, so any refactor of the protocol dispatch must reproduce them
bit-for-bit (``tests/test_protocol_identity.py``).

Do not regenerate casually: the whole point of the file is that it
predates the refactor.  Regenerate only when the simulated architecture
itself changes deliberately (and say so in the commit message).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import CacheConfig, OptimizationConfig, SimulationConfig
from repro.core.replay import replay
from repro.trace.synthetic import (
    AuroraTraceConfig,
    generate_aurora_trace,
    generate_random_trace,
)

GOLDEN_PATH = Path(__file__).parent / "protocol_stats.json"

#: The protocols that existed before the protocol layer was extracted.
PROTOCOLS = ("pim", "illinois", "write_through", "write_update")


def golden_traces():
    """The deterministic traces the goldens are replayed from."""
    return {
        # Mixed DW/ER/RP/RI/R/W plus consistent LR/UW/U lock traffic.
        "random": generate_random_trace(24_000, n_pes=4, seed=123),
        # DW/LR-heavy OR-parallel-shaped stream with work stealing.
        "aurora": generate_aurora_trace(
            AuroraTraceConfig(n_pes=4, steps_per_pe=300, seed=11)
        ),
    }


def golden_configs(protocol: str):
    """Three cache configurations per protocol: the base model, the
    no-optimized-commands baseline, and a small cache that forces
    evictions (swap-out and victim-pattern coverage)."""
    return {
        "base": SimulationConfig(protocol=protocol),
        "no_opt": SimulationConfig(
            protocol=protocol, opts=OptimizationConfig.none()
        ),
        "small": SimulationConfig(
            protocol=protocol,
            cache=CacheConfig(n_sets=16, associativity=2),
        ),
    }


def generate() -> dict:
    goldens: dict = {}
    for trace_name, buffer in golden_traces().items():
        for protocol in PROTOCOLS:
            for config_name, config in golden_configs(protocol).items():
                stats = replay(buffer, config, n_pes=4)
                key = f"{trace_name}/{protocol}/{config_name}"
                goldens[key] = stats.as_dict()
    return goldens


if __name__ == "__main__":
    goldens = generate()
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(goldens)} golden records to {GOLDEN_PATH}")
