"""Experiment-harness tests on the session-scoped tiny workloads.

These check the *machinery* (tables assemble, figures sweep, numbers are
internally consistent); the paper-shape assertions on realistic scales
live in benchmarks/.
"""

import pytest

from repro.analysis import figures, tables
from repro.analysis.runner import replay_trace, run_benchmark, unoptimized_config
from repro.core.config import OptimizationConfig, SimulationConfig


class TestRunner:
    def test_run_benchmark_verifies_answers(self):
        result = run_benchmark("pascal", scale="tiny", n_pes=2)
        assert result.machine.reductions > 0
        assert result.stats is not None
        assert result.trace is not None

    def test_replay_trace_accepts_result_objects(self):
        result = run_benchmark("pascal", scale="tiny", n_pes=2)
        stats = replay_trace(result, SimulationConfig())
        assert stats.total_refs == len(result.trace)

    def test_workloads_memoize(self, tiny_workloads):
        first = tiny_workloads.result("pascal", 2)
        second = tiny_workloads.result("pascal", 2)
        assert first is second

    def test_replay_memoizes(self, tiny_workloads):
        config = SimulationConfig()
        first = tiny_workloads.replay("pascal", config, 2)
        second = tiny_workloads.replay("pascal", config, 2)
        assert first is second


class TestTables:
    def test_table1_columns(self, tiny_workloads):
        table = tables.table1(tiny_workloads)
        assert [row["bench"] for row in table.rows] == [
            "Tri", "Semi", "Puzzle", "Pascal",
        ]
        for row in table.rows:
            assert row["reductions"] > 0
            assert row["refs"] > row["instructions"]
        assert "Table 1" in table.render()

    def test_table2_percentages_consistent(self, tiny_workloads):
        table = tables.table2(tiny_workloads)
        assert table.ref_mean["inst"] + table.ref_mean["data"] == pytest.approx(100)
        assert table.bus_mean["inst"] + table.bus_mean["data"] == pytest.approx(100)
        data_parts = sum(
            table.ref_data_mean[c] for c in ("heap", "goal", "susp", "comm")
        )
        assert data_parts == pytest.approx(100, abs=0.5)
        assert len(table.bus_rows) == 4

    def test_table3_rows_sum_to_100(self, tiny_workloads):
        table = tables.table3(tiny_workloads)
        for mix in (table.overall_mean, table.data_mean, table.heap_mean):
            assert sum(mix.values()) == pytest.approx(100, abs=0.5)

    def test_table4_normalized_to_none(self, tiny_workloads):
        table = tables.table4(tiny_workloads)
        for row in table.rows:
            assert row["None"] == 1.0
            assert row["All"] <= 1.0
        assert set(table.raw) == {"tri", "semi", "puzzle", "pascal"}

    def test_table5_ratios_in_unit_interval(self, tiny_workloads):
        table = tables.table5(tiny_workloads)
        for row in table.rows:
            for key in ("lr_hit", "lr_exclusive", "no_waiter"):
                assert 0.0 <= row[key] <= 1.0
            assert row["lr_exclusive"] <= row["lr_hit"]


class TestFigures:
    def test_figure1_series_shapes(self, tiny_workloads):
        sweep = figures.figure1(tiny_workloads, block_sizes=(2, 4, 8))
        assert sweep.x_values == [2, 4, 8]
        for series in sweep.series["miss ratio"].values():
            assert len(series) == 3
            # Miss ratio falls (or holds) with bigger blocks.
            assert series[0] >= series[-1] - 1e-9
        assert "Figure 1" in sweep.render()

    def test_figure2_miss_ratio_monotone_in_capacity(self, tiny_workloads):
        sweep = figures.figure2(tiny_workloads, capacities=(512, 2048, 8192))
        for series in sweep.series["miss ratio"].values():
            assert series[0] >= series[-1] - 1e-9
        assert len(sweep.total_bits) == 3

    def test_figure3_uses_execution_runs(self, tiny_workloads):
        sweep = figures.figure3(tiny_workloads, pe_counts=(1, 2))
        for series in sweep.series["bus cycles"].values():
            assert len(series) == 2
        # A single PE produces no scheduler communication.
        for series in sweep.series["comm % of bus"].values():
            assert series[0] == pytest.approx(0.0, abs=0.5)

    def test_associativity_direct_mapped_worst(self, tiny_workloads):
        sweep = figures.associativity_sweep(tiny_workloads, ways=(1, 4))
        for series in sweep.series["bus cycles"].values():
            assert series[0] >= series[1]

    def test_bus_width_ratio_below_one(self, tiny_workloads):
        sweep = figures.bus_width_study(tiny_workloads)
        for series in sweep.series["bus"].values():
            assert 0.4 < series[2] < 1.0

    def test_optimization_details_ratios(self, tiny_workloads):
        detail = figures.optimization_details(tiny_workloads)
        for ratios in (
            detail.heap_swap_in_ratio,
            detail.goal_swap_out_ratio,
            detail.comm_invalidate_ratio,
        ):
            assert set(ratios) == {"tri", "semi", "puzzle", "pascal"}
            for value in ratios.values():
                assert 0.0 <= value <= 1.5
        assert "4.6" in detail.render()


def test_unoptimized_config_demotes_everything():
    config = unoptimized_config()
    assert config.opts == OptimizationConfig.none()
