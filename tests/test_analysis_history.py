"""Bench-history regression tracking: record distillation, the JSONL
store, and the noise-aware comparison semantics."""

import json
from pathlib import Path

import pytest

from repro.analysis.history import (
    MAX_THRESHOLD,
    MIN_THRESHOLD,
    append_history,
    compare_to_history,
    format_comparison,
    history_record,
    host_fingerprint,
    load_history,
    section_threshold,
)
from repro.obs.schema import (
    SchemaError,
    validate_bench,
    validate_bench_history,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def sample_report(rate: float = 1_000_000.0) -> dict:
    return {
        "benchmark": "replay",
        "quick": True,
        "host_cpus": 4,
        "repeats": 3,
        "workloads": {
            "hot": {"refs": 50_000, "refs_per_sec": rate, "hit_ratio": 0.9},
            "random": {
                "refs": 50_000,
                "refs_per_sec": rate / 4,
                "hit_ratio": 0.5,
            },
        },
        "kernels": {
            "interpreted_refs_per_sec": rate / 2,
            "generated_refs_per_sec": "skipped",
        },
        "sweep": {"points": 4, "refs": 50_000, "parallel_speedup": "skipped"},
        "cluster": {
            "refs_per_sec_serial": rate / 3,
            "refs_per_sec_parallel": "skipped",
        },
    }


def scaled_record(factor: float = 1.0) -> dict:
    return history_record(sample_report(rate=1_000_000.0 * factor))


# ----------------------------------------------------------------------
# Fingerprint and record distillation
# ----------------------------------------------------------------------


def test_host_fingerprint_is_stable_and_complete():
    first, second = host_fingerprint(), host_fingerprint()
    assert first == second
    assert set(first) == {"hostname", "machine", "cpus", "fingerprint"}
    assert len(first["fingerprint"]) == 16


def test_history_record_keeps_only_positive_numeric_sections():
    record = scaled_record()
    validate_bench_history(record)
    assert set(record["sections"]) == {
        "workload.hot.refs_per_sec",
        "workload.random.refs_per_sec",
        "kernels.interpreted_refs_per_sec",
        "cluster.refs_per_sec_serial",
    }
    assert record["quick"] is True
    assert record["repeats"] == 3


def test_history_record_rejects_report_without_rates():
    with pytest.raises(ValueError):
        history_record({"workloads": {}})


# ----------------------------------------------------------------------
# The JSONL store
# ----------------------------------------------------------------------


def test_append_load_roundtrip(tmp_path):
    path = tmp_path / "history.jsonl"
    first, second = scaled_record(), scaled_record(1.1)
    append_history(first, path)
    append_history(second, path)
    assert load_history(path) == [first, second]


def test_load_missing_history_is_empty(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []


def test_load_rejects_corrupt_lines_with_location(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(scaled_record(), path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json\n")
    with pytest.raises(SchemaError, match=":2"):
        load_history(path)


def test_load_rejects_invalid_records(tmp_path):
    path = tmp_path / "history.jsonl"
    broken = scaled_record()
    broken["sections"] = {}
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(broken) + "\n")
    with pytest.raises(SchemaError, match=":1"):
        load_history(path)


# ----------------------------------------------------------------------
# Threshold and comparison semantics
# ----------------------------------------------------------------------


def test_section_threshold_clamps_both_ways():
    # MAD of a single-entry (or constant) history is zero: the floor.
    assert section_threshold([100.0]) == MIN_THRESHOLD
    assert section_threshold([100.0, 100.0, 100.0]) == MIN_THRESHOLD
    # A wildly noisy history hits the ceiling.
    assert section_threshold([100.0, 10.0, 1000.0]) == MAX_THRESHOLD
    assert section_threshold([]) == MIN_THRESHOLD


def test_identical_rerun_is_clean():
    baseline = scaled_record()
    comparison = compare_to_history(scaled_record(), [baseline])
    assert comparison["baseline_records"] == 1
    assert comparison["regressed"] is False
    assert "verdict: clean" in format_comparison(comparison)


def test_twenty_percent_drop_regresses():
    comparison = compare_to_history(scaled_record(0.8), [scaled_record()])
    assert comparison["regressed"] is True
    hot = comparison["sections"]["workload.hot.refs_per_sec"]
    assert hot["regressed"] is True
    assert hot["ratio"] == pytest.approx(0.8)
    assert "verdict: REGRESSED" in format_comparison(comparison)


def test_small_drop_stays_under_the_floor():
    comparison = compare_to_history(scaled_record(0.95), [scaled_record()])
    assert comparison["regressed"] is False


def test_other_host_history_is_ignored():
    baseline = scaled_record()
    baseline["host"] = dict(
        baseline["host"], fingerprint="f" * 16, hostname="elsewhere"
    )
    comparison = compare_to_history(scaled_record(0.5), [baseline])
    assert comparison["baseline_records"] == 0
    assert comparison["regressed"] is False
    entry = comparison["sections"]["workload.hot.refs_per_sec"]
    assert entry["baseline"] is None


def test_quick_and_full_histories_do_not_mix():
    full = scaled_record()
    full["quick"] = False
    comparison = compare_to_history(scaled_record(0.5), [full])
    assert comparison["baseline_records"] == 0
    assert comparison["regressed"] is False


def test_baseline_is_the_same_host_median():
    history = [scaled_record(f) for f in (0.9, 1.0, 1.1)]
    comparison = compare_to_history(scaled_record(), history)
    hot = comparison["sections"]["workload.hot.refs_per_sec"]
    assert hot["baseline"] == pytest.approx(1_000_000.0)
    assert comparison["regressed"] is False


# ----------------------------------------------------------------------
# Bench-report schema
# ----------------------------------------------------------------------


def test_validate_bench_accepts_synthetic_report():
    validate_bench(sample_report())


def test_validate_bench_accepts_committed_report():
    path = REPO_ROOT / "BENCH_replay.json"
    if not path.exists():
        pytest.skip("no committed BENCH_replay.json")
    validate_bench(json.loads(path.read_text()))


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.pop("workloads"),
        lambda r: r.__setitem__("benchmark", "other"),
        lambda r: r["workloads"]["hot"].__setitem__("hit_ratio", 1.5),
        lambda r: r["workloads"]["hot"].__setitem__("refs_per_sec", -1),
    ],
)
def test_validate_bench_rejects_malformed_reports(mutate):
    report = sample_report()
    mutate(report)
    with pytest.raises(SchemaError):
        validate_bench(report)
