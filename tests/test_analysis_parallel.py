"""Parallel sweep executor and trace disk cache tests."""

import os

import pytest

from repro.analysis.parallel import (
    SweepPool,
    default_jobs,
    merge_stats,
    run_sweep,
)
from repro.analysis.runner import Workloads, trace_cache_dir
from repro.core.config import CacheConfig, SimulationConfig
from repro.core.replay import replay
from repro.trace.io import write_trace
from repro.trace.synthetic import generate_random_trace


def _sweep_points():
    return [
        SimulationConfig(cache=CacheConfig(n_sets=n_sets))
        for n_sets in (64, 128, 256)
    ]


def _assert_identical(left, right):
    assert left.refs == right.refs
    assert left.hits == right.hits
    assert left.pe_cycles == right.pe_cycles
    assert left.bus_cycles_total == right.bus_cycles_total
    assert left.pattern_cycles == right.pattern_cycles
    assert left.command_counts == right.command_counts


class TestRunSweep:
    def test_parallel_matches_serial_bit_for_bit(self):
        trace = generate_random_trace(4000, n_pes=4, seed=9)
        configs = _sweep_points()
        serial = run_sweep(trace, configs, jobs=1)
        parallel = run_sweep(trace, configs, jobs=2)
        assert len(serial) == len(parallel) == len(configs)
        for left, right in zip(serial, parallel):
            _assert_identical(left, right)

    def test_accepts_trace_path(self, tmp_path):
        trace = generate_random_trace(2000, n_pes=2, seed=5)
        path = tmp_path / "sweep.trace"
        write_trace(trace, path)
        configs = _sweep_points()[:2]
        from_path = run_sweep(path, configs, jobs=2)
        from_buffer = run_sweep(trace, configs, jobs=1)
        for left, right in zip(from_path, from_buffer):
            _assert_identical(left, right)

    def test_serial_path_input(self, tmp_path):
        trace = generate_random_trace(500, n_pes=2, seed=5)
        path = tmp_path / "one.trace"
        write_trace(trace, path)
        (stats,) = run_sweep(path, [SimulationConfig()], jobs=1)
        _assert_identical(stats, replay(trace, SimulationConfig()))

    def test_empty_configs(self):
        trace = generate_random_trace(100, n_pes=2, seed=5)
        assert run_sweep(trace, [], jobs=4) == []


class TestDefaultJobs:
    def test_respects_cpu_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_jobs() == 5

    def test_never_returns_zero(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_jobs() == 1


class TestSweepPool:
    def test_serial_mode_below_two_jobs(self):
        trace = generate_random_trace(400, n_pes=2, seed=3)
        with SweepPool(trace, jobs=1) as pool:
            assert pool.kind == "serial"
            pool.warm()  # no-op, must not raise
            (stats,) = pool.map([SimulationConfig()])
        _assert_identical(stats, replay(trace, SimulationConfig()))

    def test_persistent_pool_matches_serial(self):
        trace = generate_random_trace(1500, n_pes=2, seed=4)
        configs = _sweep_points()
        with SweepPool(trace, jobs=2) as pool:
            assert pool.kind == "persistent"
            pool.warm()
            first = pool.map(configs)
            second = pool.map(configs)  # the pool survives between sweeps
        serial = run_sweep(trace, configs, jobs=1)
        for left, mid, right in zip(first, second, serial):
            _assert_identical(left, right)
            _assert_identical(mid, right)

    def test_owns_and_cleans_its_temp_trace(self):
        trace = generate_random_trace(300, n_pes=2, seed=5)
        pool = SweepPool(trace, jobs=2)
        tmp = pool._tmp_path
        assert tmp is not None and os.path.exists(tmp)
        pool.close()
        assert not os.path.exists(tmp)
        assert pool._tmp_path is None

    def test_reuses_trace_file_without_copying(self, tmp_path):
        trace = generate_random_trace(600, n_pes=2, seed=6)
        path = tmp_path / "pool.trace"
        write_trace(trace, path)
        with SweepPool(path, jobs=2) as pool:
            assert pool._tmp_path is None  # no temp copy for path input
            (stats,) = pool.map([SimulationConfig()])
        _assert_identical(stats, replay(trace, SimulationConfig()))

    def test_run_sweep_serves_from_open_pool(self):
        trace = generate_random_trace(800, n_pes=2, seed=7)
        configs = _sweep_points()[:2]
        with SweepPool(trace, jobs=2) as pool:
            pool.warm()
            pooled = run_sweep(trace, configs, pool=pool)
        serial = run_sweep(trace, configs, jobs=1)
        for left, right in zip(pooled, serial):
            _assert_identical(left, right)


class TestMergeStats:
    def test_merge_sums_counters(self):
        trace_a = generate_random_trace(1000, n_pes=2, seed=1)
        trace_b = generate_random_trace(1000, n_pes=2, seed=2)
        parts = [replay(trace_a), replay(trace_b)]
        merged = merge_stats(parts)
        assert merged.total_refs == sum(p.total_refs for p in parts)
        assert merged.bus_cycles_total == sum(
            p.bus_cycles_total for p in parts
        )


class TestTraceDiskCache:
    def test_cache_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        assert trace_cache_dir() == tmp_path
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        assert trace_cache_dir() is None
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert trace_cache_dir() is None

    def test_trace_round_trips_through_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        first = Workloads(scale="tiny")
        trace = first.trace("pascal", 2)
        files = list(tmp_path.glob("v*-pascal-tiny-2pe-seed1.trace"))
        assert len(files) == 1
        # A fresh Workloads (fresh process in real life) must load the
        # cached file instead of re-emulating.
        second = Workloads(scale="tiny")
        reloaded = second.trace("pascal", 2)
        assert list(reloaded) == list(trace)
        assert ("pascal", 2) not in second._cache  # no emulation happened

    def test_corrupt_cache_file_is_regenerated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        workloads = Workloads(scale="tiny")
        trace = workloads.trace("pascal", 2)
        (path,) = tmp_path.glob("*.trace")
        path.write_bytes(b"PIMTRACE\ngarbage")
        fresh = Workloads(scale="tiny")
        regenerated = fresh.trace("pascal", 2)
        assert list(regenerated) == list(trace)
        assert ("pascal", 2) in fresh._cache  # re-emulated

    def test_trace_path_materializes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        workloads = Workloads(scale="tiny")
        path = workloads.trace_path("pascal", 2)
        assert path is not None and path.exists()

    def test_disabled_cache_still_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        workloads = Workloads(scale="tiny")
        assert workloads.trace_path("pascal", 2) is None
        assert len(workloads.trace("pascal", 2)) > 0


class TestRunSweepReport:
    def test_report_carries_manifest_and_fingerprints(self):
        from repro.analysis.parallel import run_sweep_report
        from repro.obs.manifest import config_fingerprint
        from repro.obs.schema import validate_manifest

        trace = generate_random_trace(1500, n_pes=4, seed=5)
        configs = _sweep_points()
        report = run_sweep_report(
            trace, configs, jobs=1, trace_cache_key="unit-test-key"
        )
        validate_manifest(report["manifest"])
        assert report["manifest"]["trace_cache_key"] == "unit-test-key"
        assert report["manifest"]["extra"]["n_points"] == len(configs)
        assert len(report["points"]) == len(configs)
        for config, point in zip(configs, report["points"]):
            assert point["config_hash"] == config_fingerprint(config)
            assert point["stats"]["refs"] == replay(trace, config).as_dict()["refs"]

    def test_report_points_match_serial_replay(self):
        from repro.analysis.parallel import run_sweep_report

        trace = generate_random_trace(800, n_pes=2, seed=6)
        configs = _sweep_points()
        report = run_sweep_report(trace, configs, jobs=1)
        for config, point in zip(configs, report["points"]):
            assert point["stats"] == replay(trace, config).as_dict()

    def test_empty_sweep_yields_well_formed_report(self):
        # Regression: an empty config list used to crash on configs[0]
        # when building the manifest.  It must produce a schema-valid
        # report with zero points instead.
        from repro.analysis.parallel import run_sweep_report
        from repro.obs.schema import validate_manifest

        trace = generate_random_trace(200, n_pes=2, seed=8)
        report = run_sweep_report(trace, [], jobs=4)
        validate_manifest(report["manifest"])
        assert report["points"] == []
        assert report["manifest"]["extra"]["n_points"] == 0
        assert report["manifest"]["config"] is None
        assert report["wall_seconds"] >= 0


class TestBenchSections:
    def test_sweep_section_skips_on_single_cpu(self, monkeypatch):
        import repro.analysis.bench as bench

        monkeypatch.setattr(bench, "default_jobs", lambda: 1)
        trace = generate_random_trace(600, n_pes=2, seed=9)
        section = bench.bench_sweep(
            trace, _sweep_points()[:2], jobs=4, repeats=1
        )
        assert section["pool"] == "persistent"
        assert section["jobs_requested"] == 4
        assert section["jobs"] == 1
        assert section["host_cpus_usable"] == 1
        assert section["parallel_speedup"] == "skipped"
        assert section["wall_seconds_parallel"] is None
        assert "skip_reason" in section
        # The pooled path's identity with serial is still checked.
        assert section["results_identical"] is True

    def test_sweep_section_records_job_ladder(self, monkeypatch):
        import repro.analysis.bench as bench

        monkeypatch.setattr(bench, "default_jobs", lambda: 2)
        trace = generate_random_trace(600, n_pes=2, seed=10)
        section = bench.bench_sweep(
            trace, _sweep_points()[:2], jobs=8, repeats=1
        )
        assert section["jobs"] == 2  # clamped by (mocked) usable CPUs
        assert set(section["wall_seconds_by_jobs"]) == {"2"}
        assert isinstance(section["parallel_speedup"], float)
        assert section["results_identical"] is True

    def test_kernels_section_shape(self):
        import repro.analysis.bench as bench
        from repro.core.protocol import codegen

        trace = generate_random_trace(2000, n_pes=2, seed=11)
        section = bench.bench_kernels(trace, repeats=1)
        assert section["refs"] == len(trace)
        assert section["interpreted_refs_per_sec"] > 0
        if codegen.available():
            assert section["generated_refs_per_sec"] > 0
            assert section["results_identical"] is True
            assert section["speedup"] > 0
        else:
            assert section["generated_refs_per_sec"] == "skipped"
            assert "skip_reason" in section


class TestNoSinkOverhead:
    def test_comparison_intersects_workloads(self):
        from repro.analysis.bench import compare_no_sink_overhead

        fresh = {"workloads": {
            "hot": {"refs_per_sec": 980},
            "random": {"refs_per_sec": 300},
            "new_only": {"refs_per_sec": 10},
        }}
        recorded = {"workloads": {
            "hot": {"refs_per_sec": 1000},
            "random": {"refs_per_sec": 250},
            "old_only": {"refs_per_sec": 99},
        }}
        result = compare_no_sink_overhead(fresh, recorded, bound=0.95)
        assert set(result["workloads"]) == {"hot", "random"}
        assert result["workloads"]["hot"]["ratio"] == 0.98
        assert result["min_ratio"] == 0.98
        assert result["within_bound"] is True

    def test_comparison_flags_violation(self):
        from repro.analysis.bench import compare_no_sink_overhead

        fresh = {"workloads": {"hot": {"refs_per_sec": 700}}}
        recorded = {"workloads": {"hot": {"refs_per_sec": 1000}}}
        result = compare_no_sink_overhead(fresh, recorded, bound=0.95)
        assert result["min_ratio"] == 0.7
        assert result["within_bound"] is False

    def test_no_shared_workloads_passes_vacuously(self):
        from repro.analysis.bench import compare_no_sink_overhead

        result = compare_no_sink_overhead(
            {"workloads": {"a": {"refs_per_sec": 1}}},
            {"workloads": {"b": {"refs_per_sec": 1}}},
        )
        assert result["min_ratio"] is None
        assert result["within_bound"] is True
