"""Report generator tests (on the session tiny workloads)."""

from repro.analysis.report import generate_report


def test_report_contains_every_section(tiny_workloads):
    text = generate_report(workloads=tiny_workloads)
    for heading in (
        "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
        "Figure 1", "Figure 2", "Figure 3",
        "Associativity", "Bus width", "Per-mechanism",
        "SM-state ablation", "Write-policy ablation",
        "Cluster traffic",
    ):
        assert heading in text, heading


def test_report_is_markdown_shaped(tiny_workloads):
    text = generate_report(workloads=tiny_workloads)
    assert text.startswith("# PIM cache reproduction")
    # Every code fence opens and closes.
    assert text.count("```") % 2 == 0


def test_report_cli(tiny_workloads, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.md"
    assert main(["report", "--scale", "tiny", "--output", str(out)]) == 0
    assert "report written" in capsys.readouterr().out
    assert "Table 4" in out.read_text()
