"""CLI tests (in-process, via repro.cli.main)."""

import pytest

from repro.cli import main


def test_run_benchmark(capsys):
    assert main(["run", "pascal", "--scale", "tiny", "--pes", "2"]) == 0
    out = capsys.readouterr().out
    assert "answer verified" in out
    assert "'Sum': 2048" in out
    assert "bus cycles" in out


def test_run_benchmark_unoptimized_protocol_options(capsys):
    assert main([
        "run", "pascal", "--scale", "tiny", "--pes", "2",
        "--no-opt", "--protocol", "illinois", "--block-words", "8",
        "--capacity", "2048",
    ]) == 0
    assert "miss ratio" in capsys.readouterr().out


def test_run_source_file(tmp_path, capsys):
    source = tmp_path / "double.fghc"
    source.write_text("double(X, Y) :- Y := X * 2.\n")
    assert main(["run", str(source), "--query", "double(21, Y)", "--pes", "2"]) == 0
    assert "'Y': 42" in capsys.readouterr().out


def test_run_source_file_requires_query(tmp_path, capsys):
    source = tmp_path / "p.fghc"
    source.write_text("p(1).\n")
    assert main(["run", str(source)]) == 2
    assert "--query" in capsys.readouterr().err


def test_run_unknown_program(capsys):
    assert main(["run", "nonexistent"]) == 2
    assert "neither a benchmark" in capsys.readouterr().err


def test_run_with_gc(capsys):
    assert main([
        "run", "puzzle", "--scale", "tiny", "--pes", "2", "--gc", "500",
    ]) == 0
    assert "collections:" in capsys.readouterr().out


def test_trace_record_and_replay(tmp_path, capsys):
    trace_file = tmp_path / "t.trace"
    assert main([
        "trace", "record", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    assert trace_file.exists()
    assert main(["trace", "replay", str(trace_file), "--ways", "1"]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    assert "miss ratio" in out


def test_run_writes_trace(tmp_path, capsys):
    trace_file = tmp_path / "run.trace"
    assert main([
        "run", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    assert trace_file.exists()


def test_tables_subset(capsys):
    assert main(["tables", "--scale", "tiny", "--which", "4,5"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "Table 5" in out
    assert "Table 1" not in out


def test_tables_rejects_unknown(capsys):
    assert main(["tables", "--which", "9"]) == 2


def test_figures_subset(capsys):
    assert main(["figures", "--scale", "tiny", "--which", "width"]) == 0
    assert "Two-word Bus" in capsys.readouterr().out


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "--which", "bogus"]) == 2


def test_listing_benchmark(capsys):
    assert main(["listing", "tri"]) == 0
    out = capsys.readouterr().out
    assert "jump/5" in out
    assert "guard_cmp" in out


def test_listing_file(tmp_path, capsys):
    source = tmp_path / "p.fghc"
    source.write_text("p(0).\n")
    assert main(["listing", str(source)]) == 0
    assert "p/1" in capsys.readouterr().out


def test_listing_missing(capsys):
    assert main(["listing", "missing.fghc"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
