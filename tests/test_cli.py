"""CLI tests (in-process, via repro.cli.main)."""

import pytest

from repro.cli import main


def test_run_benchmark(capsys):
    assert main(["run", "pascal", "--scale", "tiny", "--pes", "2"]) == 0
    out = capsys.readouterr().out
    assert "answer verified" in out
    assert "'Sum': 2048" in out
    assert "bus cycles" in out


def test_run_benchmark_unoptimized_protocol_options(capsys):
    assert main([
        "run", "pascal", "--scale", "tiny", "--pes", "2",
        "--no-opt", "--protocol", "illinois", "--block-words", "8",
        "--capacity", "2048",
    ]) == 0
    assert "miss ratio" in capsys.readouterr().out


def test_run_source_file(tmp_path, capsys):
    source = tmp_path / "double.fghc"
    source.write_text("double(X, Y) :- Y := X * 2.\n")
    assert main(["run", str(source), "--query", "double(21, Y)", "--pes", "2"]) == 0
    assert "'Y': 42" in capsys.readouterr().out


def test_run_source_file_requires_query(tmp_path, capsys):
    source = tmp_path / "p.fghc"
    source.write_text("p(1).\n")
    assert main(["run", str(source)]) == 2
    assert "--query" in capsys.readouterr().err


def test_run_unknown_program(capsys):
    assert main(["run", "nonexistent"]) == 2
    assert "neither a benchmark" in capsys.readouterr().err


def test_run_with_gc(capsys):
    assert main([
        "run", "puzzle", "--scale", "tiny", "--pes", "2", "--gc", "500",
    ]) == 0
    assert "collections:" in capsys.readouterr().out


def test_trace_record_and_replay(tmp_path, capsys):
    trace_file = tmp_path / "t.trace"
    assert main([
        "trace", "record", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    assert trace_file.exists()
    assert main(["trace", "replay", str(trace_file), "--ways", "1"]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    assert "miss ratio" in out


def test_run_writes_trace(tmp_path, capsys):
    trace_file = tmp_path / "run.trace"
    assert main([
        "run", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    assert trace_file.exists()


def test_tables_subset(capsys):
    assert main(["tables", "--scale", "tiny", "--which", "4,5"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "Table 5" in out
    assert "Table 1" not in out


def test_tables_rejects_unknown(capsys):
    assert main(["tables", "--which", "9"]) == 2


def test_figures_subset(capsys):
    assert main(["figures", "--scale", "tiny", "--which", "width"]) == 0
    assert "Two-word Bus" in capsys.readouterr().out


def test_figures_rejects_unknown(capsys):
    assert main(["figures", "--which", "bogus"]) == 2


def test_listing_benchmark(capsys):
    assert main(["listing", "tri"]) == 0
    out = capsys.readouterr().out
    assert "jump/5" in out
    assert "guard_cmp" in out


def test_listing_file(tmp_path, capsys):
    source = tmp_path / "p.fghc"
    source.write_text("p(0).\n")
    assert main(["listing", str(source)]) == 0
    assert "p/1" in capsys.readouterr().out


def test_listing_missing(capsys):
    assert main(["listing", "missing.fghc"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_profile_benchmark_writes_bundle(tmp_path, capsys):
    assert main([
        "profile", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--window", "64", "--out-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "profiled" in out
    assert "miss ratio" in out
    stem = "pascal-tiny-2pe"
    for suffix in (
        ".trace.json", ".windows.jsonl", ".events.jsonl",
        ".hotness.json", ".manifest.json",
    ):
        assert (tmp_path / f"{stem}{suffix}").exists(), suffix


def test_profile_artifacts_are_schema_valid(tmp_path):
    import json

    from repro.obs import schema

    assert main([
        "profile", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--window", "128", "--out-dir", str(tmp_path),
    ]) == 0
    stem = "pascal-tiny-2pe"
    schema.validate_manifest(
        json.loads((tmp_path / f"{stem}.manifest.json").read_text())
    )
    schema.validate_chrome_trace(
        json.loads((tmp_path / f"{stem}.trace.json").read_text())
    )
    schema.validate_hotness(
        json.loads((tmp_path / f"{stem}.hotness.json").read_text())
    )
    events = (tmp_path / f"{stem}.events.jsonl").read_text().splitlines()
    assert schema.validate_jsonl(events, schema.validate_event) > 0
    windows = (tmp_path / f"{stem}.windows.jsonl").read_text().splitlines()
    assert schema.validate_jsonl(windows, schema.validate_window) > 0


def test_profile_trace_file_source(tmp_path, capsys):
    trace_file = tmp_path / "t.trace"
    assert main([
        "trace", "record", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    capsys.readouterr()
    assert main([
        "profile", "--trace", str(trace_file), "--pes", "2",
        "--out-dir", str(tmp_path / "out"),
    ]) == 0
    assert (tmp_path / "out" / "t.trace.json").exists()


def test_events_prints_human_readable(capsys):
    assert main([
        "events", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--limit", "5",
    ]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("[")]
    assert len(lines) == 5
    assert "PE" in lines[0]


def test_events_kind_filter(capsys):
    assert main([
        "events", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--kind", "bus", "--limit", "0",
    ]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("[")]
    assert lines
    assert all(" bus " in line for line in lines)


def test_events_rejects_unknown_kind(capsys):
    assert main([
        "events", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--kind", "bogus",
    ]) == 2
    assert "unknown event kind" in capsys.readouterr().err


def test_events_jsonl_export(tmp_path, capsys):
    from repro.obs.schema import validate_event, validate_jsonl

    out_file = tmp_path / "events.jsonl"
    assert main([
        "events", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(out_file),
    ]) == 0
    lines = out_file.read_text().splitlines()
    assert validate_jsonl(lines, validate_event) == len(lines) > 0


def test_bench_assert_overhead_requires_recorded_report(tmp_path, capsys):
    missing = tmp_path / "nothing.json"
    assert main([
        "bench", "--quick", "-o", str(missing), "--assert-overhead",
    ]) == 2
    assert "existing recorded report" in capsys.readouterr().err


def test_verbose_flag_enables_library_logging(tmp_path, capsys):
    import logging

    assert main([
        "-v", "profile", "--benchmark", "pascal", "--scale", "tiny",
        "--pes", "2", "--out-dir", str(tmp_path),
    ]) == 0
    assert logging.getLogger("repro").level == logging.INFO
    assert main([
        "-q", "events", "--benchmark", "pascal", "--scale", "tiny",
        "--pes", "2", "--limit", "1",
    ]) == 0
    assert logging.getLogger("repro").level == logging.ERROR


def test_protocols_lists_registered(capsys):
    from repro.core.protocol import protocol_names

    assert main(["protocols"]) == 0
    out = capsys.readouterr().out
    for name in protocol_names():
        assert name in out
    assert "write policy" in out


def test_protocols_spec_renders_transition_table(capsys):
    assert main(["protocols", "--spec", "write_once"]) == 0
    out = capsys.readouterr().out
    assert "write_once" in out
    assert "EM" in out and "INV" in out


def test_protocols_spec_rejects_unknown(capsys):
    assert main(["protocols", "--spec", "mesi2"]) == 2
    assert "pim" in capsys.readouterr().err


def test_compare_benchmark(capsys):
    assert main([
        "compare", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
    ]) == 0
    out = capsys.readouterr().out
    for name in ("pim", "illinois", "write_through", "write_update",
                 "write_once"):
        assert name in out
    assert "bus cycles" in out


def test_compare_protocol_subset_and_trace(tmp_path, capsys):
    trace_file = tmp_path / "c.trace"
    assert main([
        "trace", "record", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    capsys.readouterr()
    assert main([
        "compare", "--trace", str(trace_file),
        "--protocol", "pim,write_once",
    ]) == 0
    out = capsys.readouterr().out
    assert "pim" in out and "write_once" in out
    assert "illinois" not in out


def test_compare_rejects_unknown_protocol(capsys):
    assert main([
        "compare", "--benchmark", "pascal", "--scale", "tiny",
        "--protocol", "pim,mesi2",
    ]) == 2
    err = capsys.readouterr().err
    assert "mesi2" in err and "write_once" in err


def test_bench_quick_writes_schema_valid_report(tmp_path, capsys):
    import json

    from repro.obs.schema import validate_manifest

    out_file = tmp_path / "bench.json"
    assert main([
        "bench", "--quick", "--repeats", "1", "-o", str(out_file),
    ]) == 0
    report = json.loads(out_file.read_text())
    assert report["benchmark"] == "replay"
    assert report["workloads"]["hot"]["refs_per_sec"] > 0
    assert report["sweep"]["results_identical"]
    validate_manifest(report["manifest"])


def test_compare_json_is_schema_valid(capsys):
    import json

    from repro.obs.schema import validate_comparison

    assert main([
        "compare", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--protocol", "pim,illinois", "--json",
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    validate_comparison(report)
    assert {row["protocol"] for row in report["rows"]} == {"pim", "illinois"}


def test_verify_single_protocol(capsys):
    assert main(["verify", "--protocol", "pim"]) == 0
    out = capsys.readouterr().out
    assert "pim: clean" in out
    assert "verify: clean" in out


def test_verify_all_protocols(capsys):
    from repro.core.protocol import protocol_names

    assert main(["verify", "--all"]) == 0
    out = capsys.readouterr().out
    for name in protocol_names():
        assert f"{name}: clean" in out


def test_verify_demo_broken_prints_counterexample(capsys):
    assert main(["verify", "--demo-broken"]) == 1
    out = capsys.readouterr().out
    assert "counterexample (dirty-loss)" in out
    assert "verify: FAILED" in out


def test_verify_fuzz_only_json_is_schema_valid(capsys):
    import json

    from repro.obs.schema import validate_verify

    assert main([
        "verify", "--fuzz-only", "--seed", "0", "--budget", "2000",
        "--refs-per-case", "500", "--json",
    ]) == 0
    report = json.loads(capsys.readouterr().out)
    validate_verify(report)
    assert report["clean"] is True
    assert report["model_check"] is None
    assert report["fuzz"]["refs_total"] >= 2000
    assert report["manifest"]["extra"]["kind"] == "verify"


def test_verify_writes_report_file(tmp_path, capsys):
    import json

    from repro.obs.schema import validate_verify

    out_file = tmp_path / "verify.json"
    assert main([
        "verify", "--protocol", "pim", "--fuzz", "--budget", "1000",
        "--refs-per-case", "500", "-o", str(out_file),
    ]) == 0
    report = json.loads(out_file.read_text())
    validate_verify(report)
    assert report["model_check"][0]["protocol"] == "pim"
    assert report["fuzz"] is not None


def test_verify_rejects_all_with_protocol(capsys):
    assert main(["verify", "--all", "--protocol", "pim"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_verify_rejects_unknown_protocol(capsys):
    assert main(["verify", "--protocol", "mesi2"]) == 2
    assert "mesi2" in capsys.readouterr().err


def test_verify_rejects_malformed_clusters(capsys):
    assert main([
        "verify", "--fuzz-only", "--clusters", "two,4",
    ]) == 2
    assert "--clusters" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The --interconnect surface.


def test_run_on_the_directory_interconnect(capsys):
    assert main([
        "run", "pascal", "--scale", "tiny", "--pes", "2",
        "--interconnect", "directory",
    ]) == 0
    assert "bus cycles" in capsys.readouterr().out


def test_unknown_interconnect_lists_registered(capsys):
    assert main([
        "run", "pascal", "--scale", "tiny", "--interconnect", "crossbar",
    ]) == 2
    err = capsys.readouterr().err
    assert "crossbar" in err and "bus, directory" in err


def test_compare_rejects_unknown_interconnect(capsys):
    assert main([
        "compare", "--benchmark", "pascal", "--scale", "tiny",
        "--interconnect", "mesh",
    ]) == 2
    err = capsys.readouterr().err
    assert "mesh" in err and "choose from" in err


def test_protocols_spec_renders_directory_table(capsys):
    assert main([
        "protocols", "--spec", "pim", "--interconnect", "directory",
    ]) == 0
    out = capsys.readouterr().out
    assert "home-node directory (pim_dir)" in out
    assert "transient" in out and "MO_F" in out


def test_verify_on_the_directory_interconnect(capsys):
    assert main([
        "verify", "--protocol", "write_through",
        "--interconnect", "directory",
    ]) == 0
    out = capsys.readouterr().out
    assert "directory interconnect" in out
    assert "clean" in out


def test_metrics_table_from_trace(tmp_path, capsys):
    trace_file = tmp_path / "m.trace"
    assert main([
        "trace", "record", "pascal", "--scale", "tiny", "--pes", "2",
        "-o", str(trace_file),
    ]) == 0
    capsys.readouterr()
    assert main(["metrics", "--trace", str(trace_file), "--pes", "0"]) == 0
    out = capsys.readouterr().out
    assert "cycle ledger" in out
    assert "identity verified" in out
    assert "hit_service" in out


def test_metrics_json_is_schema_valid(capsys):
    import json

    from repro.obs.schema import validate_metrics

    assert main([
        "metrics", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--json",
    ]) == 0
    record = json.loads(capsys.readouterr().out)
    validate_metrics(record)
    assert record["manifest"]["extra"]["kind"] == "metrics"


def test_metrics_openmetrics_export(tmp_path, capsys):
    out_file = tmp_path / "metrics.txt"
    assert main([
        "metrics", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--openmetrics", str(out_file),
    ]) == 0
    text = out_file.read_text()
    assert text.endswith("# EOF\n")
    assert 'bucket="hit_service"' in text
    assert 'protocol="pim"' in text


def test_metrics_clustered_ledger_includes_network(capsys):
    assert main([
        "metrics", "--benchmark", "pascal", "--scale", "tiny", "--pes", "4",
        "--clusters", "2",
    ]) == 0
    assert "network_stall" in capsys.readouterr().out


def test_sweep_serial_progress_smoke(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    assert main([
        "sweep", "--benchmark", "pascal", "--scale", "tiny", "--pes", "2",
        "--points", "2", "--jobs", "1", "--progress",
        "--interval", "0.001", "--chunk", "1024",
        "--output", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "worker" in out          # heartbeat lines streamed
    assert "points completed" in out
    assert out_file.exists()
    import json

    report = json.loads(out_file.read_text())
    assert report["manifest"]["extra"]["telemetry"]["points_completed"] == 2


def test_sweep_rejects_bad_points(capsys):
    assert main([
        "sweep", "--benchmark", "pascal", "--scale", "tiny", "--points", "0",
    ]) == 2


def test_bench_compare_flags_injected_regression(tmp_path, capsys, monkeypatch):
    import json

    from repro.analysis import bench, history

    fake_report = {
        "benchmark": "replay",
        "quick": True,
        "host_cpus": 2,
        "repeats": 1,
        "workloads": {
            "hot": {
                "refs": 1000,
                "refs_per_sec": 1_000_000.0,
                "hit_ratio": 0.9,
            },
        },
    }
    monkeypatch.setattr(bench, "run_bench", lambda **kwargs: dict(fake_report))
    monkeypatch.setattr(bench, "format_report", lambda report: "(stubbed)")
    history_path = tmp_path / "history.jsonl"
    out_file = tmp_path / "bench.json"

    # Baseline run: nothing to compare against, appends, exits clean.
    assert main([
        "bench", "--quick", "-o", str(out_file),
        "--compare", "--history", str(history_path),
    ]) == 0
    capsys.readouterr()

    # Identical rerun stays clean.
    out_file.unlink()  # leave no no-sink-overhead reference behind
    assert main([
        "bench", "--quick", "-o", str(out_file),
        "--compare", "--history", str(history_path),
    ]) == 0
    assert "verdict: clean" in capsys.readouterr().out

    # A 25% drop in refs/sec must fail the run.
    fake_report["workloads"]["hot"]["refs_per_sec"] = 750_000.0
    out_file.unlink()
    assert main([
        "bench", "--quick", "-o", str(out_file),
        "--compare", "--history", str(history_path),
    ]) == 1
    captured = capsys.readouterr()
    assert "verdict: REGRESSED" in captured.out
    assert "regression" in captured.err
    # Every run appended its record, regressed or not.
    assert len(history.load_history(history_path)) == 3
