"""repro.cluster tests: network model, sharded replay, K=1 identity.

The identity gates mirror ``test_protocol_identity``:

1. **Golden identity** — a ``ClusteredSystem`` with one cluster must
   reproduce ``tests/golden/protocol_stats.json`` bit-for-bit through
   both clustered replay paths (interleaved per-access and sharded
   fast-kernel), for every pre-refactor protocol.
2. **Property identity** — for every *registered* protocol, randomized
   traces replayed through the K=1 clustered paths match a bare
   ``PIMCacheSystem`` replay on every counter (hypothesis).
3. **Merge determinism** — with K>1, the interleaved run, the serial
   sharded run, and the pool-parallel run agree exactly, independent of
   the worker count.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.parallel import run_clustered
from repro.cluster.network import ClusterNetwork, NetworkStats
from repro.cluster.replay import (
    _split_trace_compress,
    replay_clustered,
    replay_interleaved,
    replay_shard,
    split_trace,
)
from repro.cluster.system import (
    ClusterCacheSystem,
    ClusteredSystem,
    cluster_system,
    merged_system_stats,
)
from repro.core.config import (
    CacheConfig,
    ClusterConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.protocol import protocol_names
from repro.core.replay import replay
from repro.core.system import PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.synthetic import generate_random_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "protocol_stats.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())
GOLDEN_PROTOCOLS = ("pim", "illinois", "write_through", "write_update")
CONFIG_NAMES = ("base", "no_opt", "small")


def _config(protocol: str, name: str = "base") -> SimulationConfig:
    if name == "base":
        return SimulationConfig(protocol=protocol)
    if name == "no_opt":
        return SimulationConfig(
            protocol=protocol, opts=OptimizationConfig.none()
        )
    return SimulationConfig(
        protocol=protocol, cache=CacheConfig(n_sets=16, associativity=2)
    )


@pytest.fixture(scope="module")
def golden_trace():
    """The random trace the goldens were generated from."""
    return generate_random_trace(24_000, n_pes=4, seed=123)


class TestClusterConfig:
    def test_defaults_are_single_cluster(self):
        cluster = SimulationConfig().cluster
        assert cluster.n_clusters == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_clusters=0)
        with pytest.raises(ValueError):
            ClusterConfig(hop_cycles=-1)
        with pytest.raises(ValueError):
            ClusterConfig(link_width_words=0)
        with pytest.raises(ValueError):
            ClusterConfig(interleave="diagonal")
        with pytest.raises(ValueError):
            ClusterConfig(interleave="page", page_blocks=0)

    def test_block_interleave_home(self):
        cluster = ClusterConfig(n_clusters=4)
        assert [cluster.home_of(b) for b in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_page_interleave_home(self):
        cluster = ClusterConfig(n_clusters=2, interleave="page", page_blocks=4)
        assert [cluster.home_of(b) for b in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_ring_hops_shortest_direction(self):
        cluster = ClusterConfig(n_clusters=4)
        assert cluster.ring_hops(0, 0) == 0
        assert cluster.ring_hops(0, 1) == 1
        assert cluster.ring_hops(0, 3) == 1  # wraps around
        assert cluster.ring_hops(0, 2) == 2
        assert cluster.ring_hops(3, 1) == 2

    def test_cluster_of_pe(self):
        cluster = ClusterConfig(n_clusters=2)
        assert [cluster.cluster_of_pe(pe, 8) for pe in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_with_clusters_helper(self):
        config = SimulationConfig().with_clusters(4, hop_cycles=7)
        assert config.cluster.n_clusters == 4
        assert config.cluster.hop_cycles == 7
        # Everything else is untouched.
        assert config.cache == SimulationConfig().cache


class TestClusterNetwork:
    def _network(self, **kwargs) -> ClusterNetwork:
        cluster = ClusterConfig(n_clusters=2, **kwargs)
        return ClusterNetwork(cluster, 0, block_words=4)

    def test_fetch_forward_stall(self):
        network = self._network()  # hop_cycles=4, width=1
        # issue 1 + wait 0 + serialize 1 + hops there 4 + back 4 + reply 4
        assert network.fetch_forward(0, 1) == 14
        stats = network.stats
        assert stats.fetch_forwards == 1
        assert stats.messages == 1
        assert stats.words_sent == 1
        assert stats.words_received == 4
        assert stats.stall_cycles == 14
        assert stats.forwards_by_home == [0, 1]

    def test_posted_writes_hide_transit(self):
        network = self._network()
        # Posted: only issue + queue + serialize is charged to the PE.
        assert network.write_forward(0, 1) == 3  # 1 + 0 + ceil(2/1)
        assert network.inval_forward(10, 1) == 2  # 1 + 0 + 1
        # ... but the transit latency is still accounted.
        assert network.stats.latency_cycles > 0

    def test_fifo_queue_wait(self):
        network = self._network()
        first = network.inval_forward(0, 1)
        # Same issue cycle: the second message queues behind the first.
        second = network.inval_forward(0, 1)
        assert second == first + 1
        assert network.stats.queue_wait_cycles == 1
        # After the link drains, no wait again.
        assert network.inval_forward(100, 1) == first
        assert network.stats.queue_wait_cycles == 1

    def test_link_width_shortens_serialization(self):
        wide = self._network(link_width_words=4)
        assert wide.fetch_forward(0, 1) == 1 + 0 + 1 + 4 + 4 + 1

    def test_occupancy(self):
        network = self._network()
        network.write_forward(0, 1)
        assert network.occupancy(10) == pytest.approx(0.2)
        assert self._network().occupancy() == 0.0

    def test_merge_sums_and_grows(self):
        a = NetworkStats(0, 2)
        a.messages = 3
        a.stall_cycles = 10
        a.forwards_by_home = [0, 3]
        b = NetworkStats(1, 2)
        b.messages = 2
        b.stall_cycles = 5
        b.forwards_by_home = [2, 0]
        total = NetworkStats.merged([a, b])
        assert total.cluster == -1
        assert total.messages == 5
        assert total.stall_cycles == 15
        assert total.forwards_by_home == [2, 3]
        with pytest.raises(ValueError):
            NetworkStats.merged([])


class TestSplitTrace:
    def _trace(self):
        buffer = TraceBuffer(n_pes=4)
        for i in range(40):
            buffer.append(i % 4, Op.R, Area.HEAP, 0x1000 + i, i % 2)
        return buffer

    def test_renumbers_and_preserves_order(self):
        shards = split_trace(self._trace(), 4, 2)
        assert [len(s) for s in shards] == [20, 20]
        for shard in shards:
            assert shard.n_pes == 2
            assert set(shard.columns()[0]) == {0, 1}
        # Cluster 1's first reference was global PE 2 -> local 0.
        pe, op, area, addr, flags = shards[1][0]
        assert (pe, addr) == (0, 0x1002)
        # Relative order within a cluster is the trace order.
        addrs = list(shards[0].columns()[3])
        assert addrs == sorted(addrs)

    def test_rejects_uneven_partition(self):
        with pytest.raises(ValueError, match="divide evenly"):
            split_trace(self._trace(), 4, 3)

    def test_fallback_path_identical(self):
        trace = generate_random_trace(3_000, n_pes=4, seed=77)
        fast = split_trace(trace, 4, 2)
        slow = _split_trace_compress(trace, 2, 2)
        for left, right in zip(fast, slow):
            assert left.n_pes == right.n_pes
            assert left.columns() == right.columns()

    def test_empty_trace(self):
        shards = split_trace(TraceBuffer(n_pes=4), 4, 2)
        assert [len(s) for s in shards] == [0, 0]


class TestMergedSystemStats:
    def test_concatenates_pe_cycles(self):
        parts = [
            replay(generate_random_trace(500, n_pes=2, seed=s), n_pes=2)
            for s in (1, 2)
        ]
        total = merged_system_stats(parts)
        assert total.n_pes == 4
        assert total.pe_cycles == parts[0].pe_cycles + parts[1].pe_cycles
        assert total.total_refs == sum(p.total_refs for p in parts)

    def test_single_part_is_live(self):
        stats = replay(generate_random_trace(100, n_pes=2, seed=3), n_pes=2)
        assert merged_system_stats([stats]) is stats


class TestGoldenIdentityK1:
    """ClusteredSystem(K=1) reproduces the pre-refactor goldens."""

    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    @pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
    def test_sharded_path(self, golden_trace, protocol, config_name):
        clustered = replay_clustered(
            golden_trace, _config(protocol, config_name), n_pes=4
        )
        assert clustered.n_clusters == 1
        golden = GOLDENS[f"random/{protocol}/{config_name}"]
        assert clustered.stats.as_dict() == golden
        assert clustered.network.messages == 0

    @pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
    def test_interleaved_path(self, golden_trace, protocol):
        clustered = replay_interleaved(
            golden_trace, _config(protocol), n_pes=4
        )
        assert clustered.stats.as_dict() == GOLDENS[f"random/{protocol}/base"]


class TestK1PropertyIdentity:
    @pytest.mark.parametrize("protocol", protocol_names())
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_counter_identical_to_bare_system(self, protocol, seed):
        buffer = generate_random_trace(1_000, n_pes=4, seed=seed)
        config = SimulationConfig(protocol=protocol)
        bare = replay(buffer, config, n_pes=4)
        sharded = replay_clustered(buffer, config, n_pes=4)
        interleaved = replay_interleaved(buffer, config, n_pes=4)
        assert sharded.stats.as_dict() == bare.as_dict()
        assert interleaved.stats.as_dict() == bare.as_dict()


class TestMergeDeterminism:
    @pytest.mark.parametrize("protocol", protocol_names())
    def test_interleaved_matches_sharded(self, protocol):
        buffer = generate_random_trace(6_000, n_pes=4, seed=31)
        config = SimulationConfig(protocol=protocol).with_clusters(2)
        interleaved = replay_interleaved(buffer, config)
        sharded = replay_clustered(buffer, config)
        assert interleaved.as_dict() == sharded.as_dict()
        assert sharded.network.messages > 0

    def test_pool_matches_serial_and_is_repeatable(self):
        buffer = generate_random_trace(6_000, n_pes=4, seed=32)
        config = SimulationConfig().with_clusters(2)
        serial = run_clustered(buffer, config, jobs=1)
        pooled = run_clustered(buffer, config, jobs=2)
        again = run_clustered(buffer, config, jobs=2)
        assert pooled.as_dict() == serial.as_dict() == again.as_dict()
        assert pooled.as_dict() == replay_clustered(buffer, config).as_dict()

    def test_four_clusters(self):
        buffer = generate_random_trace(6_000, n_pes=8, seed=33)
        config = SimulationConfig().with_clusters(4)
        interleaved = replay_interleaved(buffer, config)
        sharded = replay_clustered(buffer, config)
        assert interleaved.as_dict() == sharded.as_dict()
        # Ring hops: some forwards cross more than one hop at K=4.
        assert interleaved.network.messages > 0


class TestClusteredSystemSurface:
    def test_access_routes_by_contiguous_partition(self):
        system = ClusteredSystem(SimulationConfig().with_clusters(2), 4)
        system.access(0, Op.R, Area.HEAP, 0x100)
        system.access(3, Op.R, Area.HEAP, 0x200)
        assert system.systems[0].stats.total_refs == 1
        assert system.systems[1].stats.total_refs == 1
        assert system.cluster_of(0) == 0 and system.cluster_of(3) == 1
        assert system.stats.total_refs == 2

    def test_rejects_uneven_partition(self):
        with pytest.raises(ValueError, match="divide evenly"):
            ClusteredSystem(SimulationConfig().with_clusters(3), 4)

    def test_flush_all_sums_clusters(self):
        system = ClusteredSystem(SimulationConfig().with_clusters(2), 4)
        for pe in range(4):
            system.access(pe, Op.W, Area.HEAP, 0x1000 + pe * 64)
        assert system.flush_all(silent=True) >= 0
        system.check_invariants()

    def test_attach_probe_multi_cluster_unsupported(self):
        from repro.obs.probe import ProtocolProbe
        from repro.obs.sink import CollectorSink

        system = ClusteredSystem(SimulationConfig().with_clusters(2), 4)
        with pytest.raises(NotImplementedError):
            system.attach_probe(ProtocolProbe(CollectorSink()))
        assert system.detach_probe() is None

    def test_attach_probe_k1_delegates(self):
        from repro.obs.probe import ProtocolProbe
        from repro.obs.sink import CollectorSink

        system = ClusteredSystem(SimulationConfig(), 4)
        sink = CollectorSink()
        system.attach_probe(ProtocolProbe(sink))
        system.access(0, Op.R, Area.HEAP, 0x100)
        assert sink.events

    def test_cluster_system_factory(self):
        assert cluster_system(None, 4) is None
        flat = cluster_system(SimulationConfig(), 4)
        assert type(flat) is PIMCacheSystem
        clustered = cluster_system(SimulationConfig().with_clusters(2), 4)
        assert isinstance(clustered, ClusteredSystem)


class TestNetworkProbeEvents:
    def test_remote_miss_emits_network_event(self):
        from repro.obs.events import EventKind
        from repro.obs.probe import ProtocolProbe
        from repro.obs.sink import CollectorSink

        config = SimulationConfig().with_clusters(2)
        system = ClusterCacheSystem(config, 2, cluster_index=0)
        sink = CollectorSink()
        system.attach_probe(ProtocolProbe(sink))
        block_words = config.cache.block_words
        # home_of(block) == block % 2: an odd block is remote to c0.
        system.access(0, Op.R, Area.HEAP, 1 * block_words)
        network_events = [
            e for e in sink.events if e.kind == EventKind.NETWORK
        ]
        assert len(network_events) == 1
        assert "forward->c1" in network_events[0].detail
        assert network_events[0].value == system.network.stats.stall_cycles
        # A local miss does not touch the network.
        system.access(0, Op.R, Area.HEAP, 2 * block_words)
        assert sum(
            1 for e in sink.events if e.kind == EventKind.NETWORK
        ) == 1

    def test_replay_shard_counts_match_probe_run(self):
        """Network charges agree between probed and unprobed replays."""
        buffer = generate_random_trace(2_000, n_pes=2, seed=41)
        config = SimulationConfig().with_clusters(2)
        shard = split_trace(buffer, 2, 2)[0]
        _, plain = replay_shard(shard, config, 1, 0)

        from repro.obs.probe import ProtocolProbe
        from repro.obs.sink import CollectorSink

        system = ClusterCacheSystem(config, 1, cluster_index=0)
        system.attach_probe(ProtocolProbe(CollectorSink()))
        stats = replay(shard, system=system)
        assert system.network.stats.as_dict() == plain.as_dict()


class TestVictimOrderClusterAffinity:
    def _orders(self, n_pes, clusters):
        from repro.machine.machine import KL1Machine
        from repro.core.config import MachineConfig

        source = "main(X) :- X = done."
        sim = (
            SimulationConfig().with_clusters(clusters)
            if clusters > 1
            else SimulationConfig()
        )
        machine = KL1Machine(source, MachineConfig(n_pes=n_pes, seed=1), sim)
        return [engine._victim_order for engine in machine.engines]

    def test_flat_machine_keeps_ring_order(self):
        orders = self._orders(4, 1)
        assert orders[0] == [1, 2, 3]
        assert orders[2] == [3, 0, 1]

    def test_clustered_machine_prefers_local_pes(self):
        orders = self._orders(4, 2)
        # PE0 (cluster 0 with PE1): full local pass before each remote.
        assert orders[0] == [1, 2, 1, 3]
        assert orders[3] == [2, 0, 2, 1]


class TestWorkloadsCacheKey:
    def test_default_key_format_unchanged(self):
        from repro.analysis.runner import Workloads

        workloads = Workloads(scale="tiny", seed=7)
        assert workloads.cache_key("pascal", 2) == "v1-pascal-tiny-2pe-seed7"

    def test_trace_affecting_knobs_change_the_key(self):
        from repro.analysis.runner import Workloads

        base = Workloads(scale="tiny").cache_key("pascal", 2)
        assert Workloads(scale="small").cache_key("pascal", 2) != base
        assert Workloads(scale="tiny", seed=2).cache_key("pascal", 2) != base
        assert Workloads(scale="tiny").cache_key("pascal", 4) != base
        gc = Workloads(scale="tiny", gc_threshold_words=4096)
        assert gc.cache_key("pascal", 2) == base + "-gc4096"
        clustered = Workloads(scale="tiny", n_clusters=2)
        assert clustered.cache_key("pascal", 2) == base + "-c2"

    def test_clustered_workloads_do_not_share_cache_files(
        self, tmp_path, monkeypatch
    ):
        from repro.analysis.runner import Workloads

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        flat = Workloads(scale="tiny")
        flat_trace = flat.trace("pascal", 4)
        clustered = Workloads(scale="tiny", n_clusters=2)
        # The flat capture must not satisfy the clustered key ...
        assert clustered._load_trace("pascal", 4) is None
        clustered_trace = clustered.trace("pascal", 4)
        # ... because cluster-affinity scheduling changes the stream.
        assert list(clustered_trace) != list(flat_trace)
        assert len(list(tmp_path.glob("*.trace"))) == 2

    def test_protocol_is_not_part_of_the_key(self, tmp_path, monkeypatch):
        """One cached trace serves every protocol: replays under other
        protocols reuse the stream instead of re-emulating."""
        from repro.analysis.runner import Workloads

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        first = Workloads(scale="tiny")
        first.trace("pascal", 2)
        second = Workloads(scale="tiny")
        for protocol in ("pim", "illinois", "write_through"):
            second.replay("pascal", SimulationConfig(protocol=protocol), 2)
        assert ("pascal", 2) not in second._cache  # never re-emulated
        assert len(list(tmp_path.glob("*.trace"))) == 1


class TestClusteredMachineRun:
    def test_benchmark_runs_clustered_end_to_end(self):
        from repro.analysis.runner import run_benchmark

        result = run_benchmark(
            "pascal",
            scale="tiny",
            n_pes=4,
            sim_config=SimulationConfig().with_clusters(2),
        )
        machine_result = result.machine
        assert machine_result.network is not None
        assert machine_result.network.messages > 0
        assert machine_result.network.n_clusters == 2
        assert len(machine_result.stats.pe_cycles) == 4

    def test_flat_benchmark_has_no_network(self):
        from repro.analysis.runner import run_benchmark

        result = run_benchmark("pascal", scale="tiny", n_pes=2)
        assert result.machine.network is None


class TestComparisonReport:
    def test_clustered_comparison_round_trip(self):
        from repro.analysis.protocols import (
            comparison_report,
            protocol_comparison,
        )
        from repro.obs.schema import validate_comparison

        buffer = generate_random_trace(4_000, n_pes=4, seed=51)
        base = SimulationConfig().with_clusters(2)
        comparison = protocol_comparison(
            buffer, base, protocols=("pim", "illinois")
        )
        for entry in comparison.values():
            assert entry["network_messages"] > 0
        report = comparison_report(comparison, base=base)
        validate_comparison(report)
        assert report["clusters"] == 2
        assert report["manifest"]["clusters"] == 2

    def test_validator_rejects_bad_records(self):
        from repro.obs.schema import SchemaError, validate_comparison

        good_row = {
            "protocol": "pim",
            "bus_cycles": 1,
            "memory_busy_cycles": 1,
            "swap_outs": 0,
            "c2c_transfers": 0,
            "miss_ratio": 0.5,
        }
        good = {"schema": "repro.obs/comparison/v1", "rows": [good_row]}
        validate_comparison(good)
        for bad in (
            {**good, "schema": "repro.obs/comparison/v2"},
            {**good, "rows": []},
            {**good, "rows": [{**good_row, "miss_ratio": 1.5}]},
            {**good, "rows": [{**good_row, "bus_cycles": True}]},
            {**good, "rows": [dict(good_row, network_messages="3")]},
            {**good, "clusters": 0},
            {"rows": [good_row]},
        ):
            with pytest.raises(SchemaError):
                validate_comparison(bad)


class TestClusteredBench:
    def test_bench_clustered_reports_deterministic_merge(self):
        from repro.analysis.bench import bench_clustered, hot_trace

        result = bench_clustered(hot_trace(20_000), n_clusters=2, repeats=1)
        assert result["merge_deterministic"] is True
        assert result["clusters"] == 2
        assert result["refs"] == 20_000
        assert result["network_messages"] > 0
        assert result["refs_per_sec_serial"] > 0
        assert result["refs_per_sec_parallel"] > 0
