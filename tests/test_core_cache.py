"""Unit tests for the set-associative cache array."""

import pytest

from repro.core.cache import Cache
from repro.core.config import CacheConfig
from repro.core.states import CacheState


def make_cache(block_words=4, n_sets=4, associativity=2):
    return Cache(
        CacheConfig(
            block_words=block_words, n_sets=n_sets, associativity=associativity
        ),
        pe=0,
    )


def test_miss_then_hit():
    cache = make_cache()
    assert cache.lookup(10) is None
    cache.insert(10, CacheState.EC, 1)
    line = cache.lookup(10)
    assert line is not None
    assert line.state == CacheState.EC
    assert line.area == 1


def test_blocks_map_to_distinct_sets():
    cache = make_cache(n_sets=4)
    for block in range(4):
        cache.insert(block, CacheState.S, 0)
    assert all(cache.lookup(block) for block in range(4))
    assert cache.occupancy() == 4


def test_lru_eviction_within_set():
    cache = make_cache(n_sets=4, associativity=2)
    # Blocks 0, 4, 8 all map to set 0.
    cache.insert(0, CacheState.S, 0)
    cache.insert(4, CacheState.S, 0)
    cache.lookup(0)  # touch block 0 so block 4 is LRU
    victim = cache.insert(8, CacheState.S, 0)
    assert victim is not None
    victim_block, victim_line = victim
    assert victim_block == 4
    assert cache.lookup(0) is not None
    assert cache.lookup(4) is None
    assert cache.lookup(8) is not None


def test_insert_same_block_raises():
    # A re-insert would silently discard the resident line's state and
    # dirty data; the protocol always misses first, so this is a bug trap.
    cache = make_cache(associativity=1)
    cache.insert(0, CacheState.S, 0)
    with pytest.raises(ValueError, match="already resident"):
        cache.insert(0, CacheState.EM, 0)
    assert cache.lookup(0).state == CacheState.S


def test_remove():
    cache = make_cache()
    cache.insert(3, CacheState.EM, 2)
    removed = cache.remove(3)
    assert removed is not None
    assert removed.state == CacheState.EM
    assert cache.lookup(3) is None
    assert cache.remove(3) is None


def test_peek_does_not_touch_lru():
    cache = make_cache(n_sets=4, associativity=2)
    cache.insert(0, CacheState.S, 0)
    cache.insert(4, CacheState.S, 0)
    cache.peek(0)  # must NOT protect block 0
    victim = cache.insert(8, CacheState.S, 0)
    assert victim[0] == 0


def test_lines_iteration_and_flush():
    cache = make_cache()
    cache.insert(1, CacheState.S, 0)
    cache.insert(9, CacheState.EM, 1)
    blocks = {block for block, _ in cache.lines()}
    assert blocks == {1, 9}
    cache.flush()
    assert cache.occupancy() == 0


def test_full_cache_occupancy_bounded():
    cache = make_cache(n_sets=2, associativity=2)
    for block in range(32):
        cache.insert(block, CacheState.S, 0)
    assert cache.occupancy() == 4  # n_sets * associativity
