"""Tests for the optimized memory commands DW / ER / RP / RI (Section 3.2).

Each command's case analysis from the paper is exercised explicitly,
including the demotion rules ("the cache controller automatically
replaces DW with W", etc.) and the effect of the optimization flags.
"""

from repro.core.config import (
    CacheConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.states import BusPattern, CacheState
from repro.core.system import PIMCacheSystem
from repro.trace.events import AREA_BASE, Area, Op

HEAP = AREA_BASE[Area.HEAP]
GOAL = AREA_BASE[Area.GOAL]
COMM = AREA_BASE[Area.COMMUNICATION]


def make_system(n_pes=4, opts=None, **cache_kwargs):
    cache = CacheConfig(**cache_kwargs) if cache_kwargs else CacheConfig()
    return PIMCacheSystem(
        SimulationConfig(
            cache=cache,
            opts=opts if opts is not None else OptimizationConfig.all(),
            track_data=True,
        ),
        n_pes,
    )


class TestDirectWrite:
    def test_boundary_miss_allocates_without_fetch(self):
        """DW case (i): block boundary + miss -> allocate, zero bus."""
        system = make_system()
        cycles, _, _ = system.access(0, Op.DW, Area.HEAP, HEAP, value=5)
        assert cycles == 1
        assert system.stats.bus_cycles_total == 0
        assert system.stats.dw_allocations == 1
        assert system.stats.swap_ins == 0
        assert system.line_state(0, HEAP) == CacheState.EM
        _, _, value = system.access(0, Op.R, Area.HEAP, HEAP)
        assert value == 5

    def test_non_boundary_is_replaced_with_w(self):
        """DW case (ii): mid-block address -> W (here a write miss)."""
        system = make_system()
        cycles, _, _ = system.access(0, Op.DW, Area.HEAP, HEAP + 1, value=5)
        assert cycles == 13  # ordinary fetch-on-write
        assert system.stats.dw_demotions == 1
        assert system.stats.dw_allocations == 0

    def test_sequential_allocation_only_pays_on_boundaries(self):
        """A fresh 8-word structure costs zero bus cycles: two boundary
        allocations, six write hits."""
        system = make_system()
        for offset in range(8):
            system.access(0, Op.DW, Area.HEAP, HEAP + offset, value=offset)
        assert system.stats.bus_cycles_total == 0
        assert system.stats.dw_allocations == 2
        assert system.stats.dw_demotions == 6  # all of them write hits

    def test_remote_copy_forces_demotion(self):
        """The no-remote-copy precondition is verified, not assumed."""
        system = make_system()
        system.access(1, Op.R, Area.HEAP, HEAP)  # remote copy exists
        cycles, _, _ = system.access(0, Op.DW, Area.HEAP, HEAP, value=9)
        assert system.stats.dw_allocations == 0
        assert system.stats.dw_demotions == 1
        assert system.line_state(1, HEAP) == CacheState.INV  # FI invalidated
        system.check_invariants()

    def test_dirty_victim_costs_swap_out_only(self):
        """The 5-cycle swap-out-only pattern appears only in DW."""
        system = make_system(n_pes=1, n_sets=2, associativity=1)
        system.access(0, Op.W, Area.HEAP, HEAP, value=1)  # dirty
        cycles, _, _ = system.access(0, Op.DW, Area.HEAP, HEAP + 8, value=2)
        assert cycles == 5
        assert system.stats.pattern_counts[BusPattern.SWAP_OUT_ONLY] == 1
        assert system.memory[HEAP] == 1

    def test_demoted_when_optimization_disabled(self):
        system = make_system(opts=OptimizationConfig.none())
        cycles, _, _ = system.access(0, Op.DW, Area.HEAP, HEAP, value=5)
        assert cycles == 13
        assert system.stats.dw_allocations == 0
        # Table 3 still sees the DW the software issued.
        assert system.stats.refs[Area.HEAP][Op.DW] == 1

    def test_goal_area_dw_controlled_by_goal_flag(self):
        system = make_system(opts=OptimizationConfig.heap_only())
        cycles, _, _ = system.access(0, Op.DW, Area.GOAL, GOAL, value=1)
        assert cycles == 13  # goal commands off -> plain W
        system2 = make_system(opts=OptimizationConfig.goal_only())
        cycles, _, _ = system2.access(0, Op.DW, Area.GOAL, GOAL, value=1)
        assert cycles == 1


class TestExclusiveRead:
    def test_miss_with_remote_supplier_invalidates_supplier(self):
        """ER case (i): cache-to-cache transfer, supplier invalidated."""
        system = make_system()
        system.access(1, Op.W, Area.GOAL, GOAL, value=8)
        cycles, _, value = system.access(0, Op.ER, Area.GOAL, GOAL)
        assert cycles == 7  # c2c, no copyback
        assert value == 8
        assert system.line_state(1, GOAL) == CacheState.INV
        assert system.line_state(0, GOAL) == CacheState.EM  # sole, dirty
        assert system.stats.supplier_invalidations == 1
        system.check_invariants()

    def test_hit_on_last_word_purges_own_copy(self):
        """ER case (ii): hit + last word of block -> read-purge."""
        system = make_system()
        system.access(0, Op.W, Area.GOAL, GOAL + 3, value=6)  # dirty block
        cycles, _, value = system.access(0, Op.ER, Area.GOAL, GOAL + 3)
        assert value == 6
        assert system.line_state(0, GOAL) == CacheState.INV
        assert system.stats.purges_dirty == 1
        assert system.stats.swap_outs == 0  # that is the point

    def test_hit_mid_block_is_plain_read(self):
        system = make_system()
        system.access(0, Op.W, Area.GOAL, GOAL, value=6)
        system.access(0, Op.ER, Area.GOAL, GOAL + 1)
        assert system.line_state(0, GOAL) == CacheState.EM  # still resident

    def test_miss_no_remote_falls_back_to_read(self):
        """ER case (iii)."""
        system = make_system()
        cycles, _, _ = system.access(0, Op.ER, Area.GOAL, GOAL)
        assert cycles == 13
        assert system.stats.er_demotions == 1
        assert system.line_state(0, GOAL) == CacheState.EC

    def test_whole_record_read_leaves_nothing_behind(self):
        """Writer creates an 8-word record with DW; reader consumes it
        with ER: afterwards neither cache holds it and memory was never
        involved."""
        system = make_system()
        for offset in range(8):
            system.access(1, Op.DW, Area.GOAL, GOAL + offset, value=offset)
        for offset in range(8):
            _, _, value = system.access(0, Op.ER, Area.GOAL, GOAL + offset)
            assert value == offset
        assert system.line_state(0, GOAL) == CacheState.INV
        assert system.line_state(0, GOAL + 4) == CacheState.INV
        assert system.line_state(1, GOAL) == CacheState.INV
        assert system.stats.swap_ins == 0
        assert system.stats.swap_outs == 0
        system.check_invariants()

    def test_demoted_when_disabled(self):
        system = make_system(opts=OptimizationConfig.none())
        system.access(1, Op.W, Area.GOAL, GOAL, value=8)
        system.access(0, Op.ER, Area.GOAL, GOAL)
        # Plain read: supplier keeps its copy (as SM owner).
        assert system.line_state(1, GOAL) == CacheState.SM


class TestReadPurge:
    def test_hit_purges(self):
        system = make_system()
        system.access(0, Op.W, Area.GOAL, GOAL + 1, value=3)
        cycles, _, value = system.access(0, Op.RP, Area.GOAL, GOAL + 1)
        assert cycles == 1
        assert value == 3
        assert system.line_state(0, GOAL) == CacheState.INV
        assert system.stats.purges_dirty == 1

    def test_miss_with_remote_reads_through_and_invalidates(self):
        """RP case (ii): no allocation at the reader either."""
        system = make_system()
        system.access(1, Op.W, Area.GOAL, GOAL, value=4)
        cycles, _, value = system.access(0, Op.RP, Area.GOAL, GOAL)
        assert cycles == 7
        assert value == 4
        assert system.line_state(0, GOAL) == CacheState.INV
        assert system.line_state(1, GOAL) == CacheState.INV
        assert system.stats.supplier_invalidations == 1
        system.check_invariants()

    def test_miss_no_remote_reads_through_memory(self):
        system = make_system()
        system.access(0, Op.W, Area.GOAL, GOAL, value=2)
        system.flush_all()
        cycles, _, value = system.access(0, Op.RP, Area.GOAL, GOAL)
        assert value == 2
        assert cycles == 13
        assert system.line_state(0, GOAL) == CacheState.INV


class TestReadInvalidate:
    def test_miss_fetches_exclusive(self):
        """RI fetches with FI so the rewrite needs no I command."""
        system = make_system()
        system.access(1, Op.W, Area.COMMUNICATION, COMM, value=9)
        system.access(0, Op.RI, Area.COMMUNICATION, COMM)
        assert system.line_state(0, COMM) == CacheState.EM
        assert system.line_state(1, COMM) == CacheState.INV
        invalidations_before = system.stats.pattern_counts[
            BusPattern.INVALIDATION
        ]
        # The rewrite is now a silent exclusive hit.
        cycles, _, _ = system.access(0, Op.W, Area.COMMUNICATION, COMM, value=0)
        assert cycles == 1
        assert (
            system.stats.pattern_counts[BusPattern.INVALIDATION]
            == invalidations_before
        )

    def test_plain_read_would_have_paid_the_invalidate(self):
        """The counterfactual: with RI demoted, the rewrite costs an I."""
        system = make_system(opts=OptimizationConfig.none())
        system.access(1, Op.W, Area.COMMUNICATION, COMM, value=9)
        system.access(0, Op.RI, Area.COMMUNICATION, COMM)  # demoted to R
        before = system.stats.pattern_counts[BusPattern.INVALIDATION]
        system.access(0, Op.W, Area.COMMUNICATION, COMM, value=0)
        assert (
            system.stats.pattern_counts[BusPattern.INVALIDATION] == before + 1
        )

    def test_hit_behaves_as_read(self):
        system = make_system()
        system.access(0, Op.R, Area.COMMUNICATION, COMM)
        cycles, _, _ = system.access(0, Op.RI, Area.COMMUNICATION, COMM)
        assert cycles == 1

    def test_counts_exclusive_fetches(self):
        system = make_system()
        system.access(0, Op.RI, Area.COMMUNICATION, COMM)
        assert system.stats.ri_exclusive_fetches == 1
