"""Unit tests for configuration dataclasses and the bus cost model."""

import pytest

from repro.core.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    OptimizationConfig,
    SimulationConfig,
    TABLE4_COLUMNS,
)
from repro.core.states import BusPattern
from repro.trace.events import Area, Op


class TestCacheConfig:
    def test_base_model_is_the_papers(self):
        config = CacheConfig()
        assert config.block_words == 4
        assert config.n_sets == 256
        assert config.associativity == 4
        assert config.capacity_words == 4096

    def test_directory_bits_match_papers_example(self):
        # Section 4.4: "a four-Kword cache is 190000 bits".
        assert CacheConfig().total_bits == 189440

    def test_from_capacity(self):
        config = CacheConfig.from_capacity(8192)
        assert config.capacity_words == 8192
        assert config.block_words == 4
        assert config.n_sets == 512

    def test_from_capacity_too_small(self):
        with pytest.raises(ValueError):
            CacheConfig.from_capacity(8, block_words=4, associativity=4)

    @pytest.mark.parametrize("bad", [0, 3, -4])
    def test_rejects_non_power_of_two_blocks(self, bad):
        with pytest.raises(ValueError):
            CacheConfig(block_words=bad)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(associativity=0)

    def test_n_lines(self):
        assert CacheConfig().n_lines == 1024


class TestBusConfig:
    def test_paper_pattern_costs(self):
        """Section 4.2's six bus access patterns: 13/13/10/7/5/2 (plus
        the ablation-only write-through pattern at 2)."""
        bus = BusConfig()
        costs = [bus.pattern_cycles(p, 4) for p in BusPattern]
        assert costs == [13, 13, 10, 7, 5, 2, 2]

    def test_two_word_bus_shrinks_transfers(self):
        bus = BusConfig(width_words=2)
        assert bus.transfer_cycles(4) == 2
        assert bus.pattern_cycles(BusPattern.SWAP_IN, 4) == 11
        assert bus.pattern_cycles(BusPattern.C2C, 4) == 5
        assert bus.pattern_cycles(BusPattern.INVALIDATION, 4) == 2

    def test_memory_time_affects_only_swap_in(self):
        fast = BusConfig(memory_access_cycles=4)
        assert fast.pattern_cycles(BusPattern.SWAP_IN, 4) == 9
        assert fast.pattern_cycles(BusPattern.C2C, 4) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            BusConfig(width_words=0)
        with pytest.raises(ValueError):
            BusConfig(memory_access_cycles=0)


class TestOptimizationConfig:
    def test_presets_match_table4_columns(self):
        labels = [label for label, _ in TABLE4_COLUMNS]
        assert labels == ["None", "Heap", "Goal", "Comm", "All"]

    def test_none_honours_nothing_optimized(self):
        opts = OptimizationConfig.none()
        assert not opts.honours(Op.DW, Area.HEAP)
        assert not opts.honours(Op.ER, Area.GOAL)
        assert not opts.honours(Op.RI, Area.COMMUNICATION)
        # Ordinary operations are always honoured.
        assert opts.honours(Op.R, Area.HEAP)
        assert opts.honours(Op.LR, Area.HEAP)

    def test_heap_only(self):
        opts = OptimizationConfig.heap_only()
        assert opts.honours(Op.DW, Area.HEAP)
        assert not opts.honours(Op.DW, Area.GOAL)
        assert not opts.honours(Op.ER, Area.GOAL)

    def test_goal_only(self):
        opts = OptimizationConfig.goal_only()
        assert opts.honours(Op.DW, Area.GOAL)
        assert opts.honours(Op.ER, Area.GOAL)
        assert opts.honours(Op.RP, Area.GOAL)
        assert not opts.honours(Op.DW, Area.HEAP)

    def test_comm_only(self):
        opts = OptimizationConfig.comm_only()
        assert opts.honours(Op.RI, Area.COMMUNICATION)
        assert not opts.honours(Op.RI, Area.HEAP)

    def test_optimized_ops_never_honoured_in_foreign_areas(self):
        opts = OptimizationConfig.all()
        assert not opts.honours(Op.DW, Area.SUSPENSION)
        assert not opts.honours(Op.ER, Area.HEAP)
        assert not opts.honours(Op.RP, Area.COMMUNICATION)


class TestSimulationConfig:
    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(protocol="mesi")

    def test_with_helpers_return_copies(self):
        base = SimulationConfig()
        other = base.with_opts(OptimizationConfig.none())
        assert other is not base
        assert other.cache == base.cache
        resized = base.with_cache(CacheConfig.from_capacity(512))
        assert resized.cache.capacity_words == 512

    def test_is_hashable_for_memoization(self):
        assert hash(SimulationConfig()) == hash(SimulationConfig())


class TestMachineConfig:
    def test_max_goal_args(self):
        assert MachineConfig().max_goal_args == 5
        assert MachineConfig(goal_record_words=12).max_goal_args == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_pes=0)
        with pytest.raises(ValueError):
            MachineConfig(goal_record_words=2)
        with pytest.raises(ValueError):
            MachineConfig(suspension_record_words=2)
