"""The SM-state ablation: PIM (five states) vs Illinois (no SM)."""

from repro.core.illinois import compare_protocols, illinois_config, pim_config
from repro.core.config import SimulationConfig
from repro.trace.synthetic import AuroraTraceConfig, generate_aurora_trace


def test_config_factories():
    assert pim_config().protocol == "pim"
    assert illinois_config().protocol == "illinois"
    base = SimulationConfig(lock_entries=4)
    assert illinois_config(base).lock_entries == 4


def test_sm_state_saves_memory_copybacks():
    """Section 3.1's rationale: without SM, every dirty cache-to-cache
    transfer writes memory, raising the memory modules' busy ratio."""
    trace = generate_aurora_trace(AuroraTraceConfig(n_pes=4, steps_per_pe=400))
    comparison = compare_protocols(trace)
    pim, illinois = comparison["pim"], comparison["illinois"]
    assert pim["memory_busy_cycles"] < illinois["memory_busy_cycles"]
    assert pim["swap_outs"] < illinois["swap_outs"]
    # Both protocols serve the same stream: identical hit behaviour.
    assert pim["miss_ratio"] == illinois["miss_ratio"]
    assert pim["c2c_transfers"] == illinois["c2c_transfers"]


def test_protocols_agree_on_bus_cycles_modulo_swapout_pattern():
    """Bus cycles differ only through the with/without-swap-out pattern
    split, which is second-order; the memory-side pressure is the real
    difference."""
    trace = generate_aurora_trace(AuroraTraceConfig(n_pes=4, steps_per_pe=200))
    comparison = compare_protocols(trace)
    pim, illinois = comparison["pim"], comparison["illinois"]
    assert abs(pim["bus_cycles"] - illinois["bus_cycles"]) < 0.1 * illinois[
        "bus_cycles"
    ]
