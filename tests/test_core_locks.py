"""Tests for the lock protocol: LR / UW / U, the separate lock
directory, LH busy-waiting and UL broadcast (Sections 3.1, 3.3)."""

from repro.core.config import CacheConfig, SimulationConfig
from repro.core.lock_directory import LockDirectory
from repro.core.states import BusPattern, CacheState, LockState
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.events import AREA_BASE, FLAG_LOCK_CONTENDED, Area, Op

HEAP = AREA_BASE[Area.HEAP]


def make_system(n_pes=4):
    return PIMCacheSystem(SimulationConfig(track_data=True), n_pes)


class TestLockDirectory:
    def test_lock_unlock_cycle(self):
        directory = LockDirectory(0, capacity=2)
        assert directory.state(5) == LockState.EMP
        directory.lock(5)
        assert directory.state(5) == LockState.LCK
        directory.mark_waiting(5)
        assert directory.state(5) == LockState.LWAIT
        assert directory.unlock(5) == LockState.LWAIT
        assert directory.state(5) == LockState.EMP

    def test_mark_waiting_on_absent_address_is_noop(self):
        directory = LockDirectory(0)
        directory.mark_waiting(9)
        assert directory.state(9) == LockState.EMP

    def test_overflow_is_counted_not_fatal(self):
        directory = LockDirectory(0, capacity=1)
        directory.lock(1)
        directory.lock(2)
        assert directory.overflows == 1
        assert directory.max_occupancy == 2

    def test_unlock_absent_returns_none(self):
        assert LockDirectory(0).unlock(3) is None


class TestLockRead:
    def test_lr_hit_exclusive_costs_no_bus(self):
        """The headline property: LR to EC/EM uses zero bus cycles."""
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)  # EC
        before = system.stats.bus_cycles_total
        cycles, _, value = system.access(0, Op.LR, Area.HEAP, HEAP)
        assert cycles == 1
        assert system.stats.bus_cycles_total == before
        assert system.stats.lr_no_bus == 1
        assert system.lock_directories[0].state(HEAP) == LockState.LCK

    def test_lr_hit_shared_rides_invalidate_plus_lk(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)  # both S
        cycles, _, _ = system.access(0, Op.LR, Area.HEAP, HEAP)
        assert cycles == 2  # I + LK broadcast
        assert system.stats.lr_bus == 1
        assert system.line_state(1, HEAP) == CacheState.INV

    def test_lr_miss_rides_fi_plus_lk(self):
        system = make_system()
        cycles, _, _ = system.access(0, Op.LR, Area.HEAP, HEAP)
        assert cycles == 13
        assert system.stats.lr_bus == 1
        assert system.line_state(0, HEAP) in (CacheState.EC, CacheState.EM)

    def test_lr_reads_current_value(self):
        system = make_system()
        system.access(1, Op.W, Area.HEAP, HEAP, value=33)
        _, _, value = system.access(0, Op.LR, Area.HEAP, HEAP)
        assert value == 33


class TestConflicts:
    def test_remote_access_to_locked_word_blocks(self):
        system = make_system()
        system.access(0, Op.LR, Area.HEAP, HEAP)
        cycles, _, _ = system.access(1, Op.R, Area.HEAP, HEAP)
        assert cycles == BLOCKED
        assert system.is_waiting(1)
        assert system.stats.lh_responses == 1
        # The holder's entry flipped to LWAIT.
        assert system.lock_directories[0].state(HEAP) == LockState.LWAIT

    def test_busy_wait_retries_use_no_bus(self):
        system = make_system()
        system.access(0, Op.LR, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)
        bus_before = system.stats.bus_cycles_total
        for _ in range(5):
            cycles, _, _ = system.access(1, Op.R, Area.HEAP, HEAP)
            assert cycles == BLOCKED
        assert system.stats.bus_cycles_total == bus_before
        assert system.stats.lh_responses == 1  # one episode, one LH

    def test_unlock_with_waiter_broadcasts_ul_and_frees(self):
        system = make_system()
        system.access(0, Op.LR, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)  # waits
        cycles, flags, _ = system.access(0, Op.UW, Area.HEAP, HEAP, value=5)
        assert flags == FLAG_LOCK_CONTENDED
        assert system.stats.unlocks_with_waiter == 1
        # The waiter's retry now succeeds and sees the new value.
        cycles, _, value = system.access(1, Op.R, Area.HEAP, HEAP)
        assert cycles != BLOCKED
        assert value == 5
        assert not system.is_waiting(1)

    def test_unlock_without_waiter_is_silent(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(0, Op.LR, Area.HEAP, HEAP)
        bus_before = system.stats.bus_cycles_total
        cycles, flags, _ = system.access(0, Op.UW, Area.HEAP, HEAP, value=5)
        assert cycles == 1
        assert flags == 0
        assert system.stats.bus_cycles_total == bus_before
        assert system.stats.unlocks_no_waiter == 1

    def test_plain_u_releases_without_writing(self):
        system = make_system()
        system.access(0, Op.W, Area.HEAP, HEAP, value=7)
        system.access(0, Op.LR, Area.HEAP, HEAP)
        system.access(0, Op.U, Area.HEAP, HEAP)
        assert system.lock_directories[0].state(HEAP) == LockState.EMP
        _, _, value = system.access(0, Op.R, Area.HEAP, HEAP)
        assert value == 7  # unchanged

    def test_word_granularity_two_locks_same_pe(self):
        """The separate directory distinguishes words within a block."""
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(0, Op.LR, Area.HEAP, HEAP)
        system.access(0, Op.LR, Area.HEAP, HEAP + 1)
        assert len(system.lock_directories[0]) == 2
        system.access(0, Op.UW, Area.HEAP, HEAP, value=1)
        # The second lock still guards the block.
        assert system.access(1, Op.R, Area.HEAP, HEAP)[0] == BLOCKED
        system.access(0, Op.U, Area.HEAP, HEAP + 1)
        assert system.access(1, Op.R, Area.HEAP, HEAP)[0] != BLOCKED

    def test_lock_survives_local_eviction(self):
        """The lock directory snoops even after the block is swapped out."""
        system = PIMCacheSystem(
            SimulationConfig(
                cache=CacheConfig(block_words=4, n_sets=2, associativity=1),
                track_data=True,
            ),
            2,
        )
        system.access(0, Op.LR, Area.HEAP, HEAP)
        system.access(0, Op.R, Area.HEAP, HEAP + 8)  # evicts the locked block
        assert system.line_state(0, HEAP) == CacheState.INV
        assert system.access(1, Op.R, Area.HEAP, HEAP)[0] == BLOCKED
        # UW after eviction refetches and still works.
        cycles, _, _ = system.access(0, Op.UW, Area.HEAP, HEAP, value=9)
        assert cycles != BLOCKED
        assert system.access(1, Op.R, Area.HEAP, HEAP)[1:] != (None,)

    def test_spurious_unlock_counted(self):
        system = make_system()
        system.access(0, Op.U, Area.HEAP, HEAP)
        assert system.stats.spurious_unlocks == 1


class TestReplayAnnotations:
    def test_contended_flag_reenacts_lh_and_ul(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        cycles, flags, _ = system.access(
            0, Op.LR, Area.HEAP, HEAP, flags=FLAG_LOCK_CONTENDED
        )
        assert flags == FLAG_LOCK_CONTENDED
        assert system.stats.lh_responses == 1
        before = system.stats.pattern_counts[BusPattern.INVALIDATION]
        system.access(0, Op.UW, Area.HEAP, HEAP, value=1, flags=FLAG_LOCK_CONTENDED)
        assert system.stats.unlocks_with_waiter == 1
        assert system.stats.pattern_counts[BusPattern.INVALIDATION] == before + 1
