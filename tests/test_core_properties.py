"""Property-based tests of the cache protocol (hypothesis).

Two oracles run against random operation streams:

* **coherence invariants** — exclusive copies are sole copies, at most
  one dirty copy per block, presence map consistent, all copies agree
  (checked by ``PIMCacheSystem.check_invariants``);
* **value correctness** — every read observes the most recent write to
  its address, tracked by a flat shadow memory.

Streams include the optimized commands; DW's software contract is the
one deliberately *violated* case (the controller must demote, not
corrupt).
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig, OptimizationConfig, SimulationConfig
from repro.core.replay import replay
from repro.core.system import BLOCKED, PIMCacheSystem
from repro.trace.events import AREA_BASE, Area, Op
from repro.trace.synthetic import generate_random_trace

HEAP = AREA_BASE[Area.HEAP]

_PLAIN_OPS = (Op.R, Op.W, Op.DW, Op.ER, Op.RP, Op.RI)

_step = st.tuples(
    st.integers(0, 3),  # pe
    st.sampled_from(_PLAIN_OPS),
    st.integers(0, 95),  # offset within a 96-word pool (24 blocks)
    st.integers(0, 255),  # value
)


def _tiny_system(protocol="pim"):
    return PIMCacheSystem(
        SimulationConfig(
            cache=CacheConfig(block_words=4, n_sets=2, associativity=2),
            protocol=protocol,
            track_data=True,
        ),
        4,
    )


class ShadowMemory:
    """Oracle: last value written per address (initially 0)."""

    def __init__(self):
        self.values = {}

    def write(self, address, value):
        self.values[address] = value

    def read(self, address):
        return self.values.get(address, 0)


@settings(max_examples=60, deadline=None)
@given(st.lists(_step, min_size=1, max_size=300))
def test_reads_always_observe_last_write(steps):
    system = _tiny_system()
    shadow = ShadowMemory()
    for pe, op, offset, value in steps:
        address = HEAP + offset
        cycles, _, observed = system.access(pe, op, Area.HEAP, address, value)
        assert cycles != BLOCKED
        if op in (Op.W, Op.DW):
            shadow.write(address, value)
        else:
            assert observed == shadow.read(address), (
                f"PE{pe} {Op(op).name} at {address:#x} saw {observed}, "
                f"expected {shadow.read(address)}"
            )
    system.check_invariants()


@settings(max_examples=60, deadline=None)
@given(st.lists(_step, min_size=1, max_size=300), st.sampled_from(["pim", "illinois"]))
def test_invariants_hold_under_random_streams(steps, protocol):
    system = _tiny_system(protocol)
    for pe, op, offset, value in steps:
        system.access(pe, op, Area.HEAP, HEAP + offset, value)
    system.check_invariants()


@settings(max_examples=30, deadline=None)
@given(st.lists(_step, min_size=1, max_size=200))
def test_final_flush_reconciles_memory_with_shadow(steps):
    """After writing everything back, memory equals the shadow oracle."""
    system = _tiny_system()
    shadow = ShadowMemory()
    touched = set()
    for pe, op, offset, value in steps:
        address = HEAP + offset
        system.access(pe, op, Area.HEAP, address, value)
        if op in (Op.W, Op.DW):
            shadow.write(address, value)
        touched.add(address)
    system.flush_all()
    for address in touched:
        expected = shadow.read(address)
        if expected != 0:
            assert system.memory.get(address, 0) == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_random_traces_replay_cleanly_under_all_configs(seed):
    """Replays of lock-consistent random traces never block and keep
    coherent final state, whatever the optimization flags."""
    trace = generate_random_trace(400, n_pes=4, seed=seed)
    for opts in (OptimizationConfig.all(), OptimizationConfig.none()):
        config = SimulationConfig(
            cache=CacheConfig(block_words=4, n_sets=4, associativity=2),
            opts=opts,
            track_data=True,
        )
        system = PIMCacheSystem(config, 4)
        for pe, op, area, addr, flags in trace:
            cycles, _, _ = system.access(pe, op, area, addr, 0, flags)
            assert cycles != BLOCKED
        system.check_invariants()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_direct_write_never_increases_traffic(seed):
    """DW is unconditionally safe: honouring it can only remove bus work
    (an allocation-without-fetch replaces a 13-cycle fetch-on-write).

    The same is deliberately NOT asserted for ER/RP: purging is only
    profitable under the write-once/read-once software contract, and
    random streams violate it — the paper's own caveat that exclusive
    read "must be used carefully".
    """
    trace = generate_random_trace(600, n_pes=4, seed=seed)
    heap_on = replay(trace, SimulationConfig(opts=OptimizationConfig.heap_only()))
    all_off = replay(trace, SimulationConfig(opts=OptimizationConfig.none()))
    assert heap_on.bus_cycles_total <= all_off.bus_cycles_total


_any_op_step = st.tuples(
    st.integers(0, 3),  # pe (taken mod the drawn PE count)
    st.sampled_from(tuple(Op)),  # R/W/LR/UW/U/DW/ER/RP/RI — locks included
    st.integers(0, 95),
    st.integers(0, 255),
)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 4),
    st.lists(_any_op_step, min_size=1, max_size=400),
    st.sampled_from(["pim", "illinois"]),
)
def test_invariants_hold_with_lock_traffic(n_pes, steps, protocol):
    """Interleaved lock/unlock traffic (contended LRs included) never
    breaks coherence or the lock bookkeeping, on either protocol.

    A BLOCKED result is legitimate here — another PE holds a lock in the
    block — and leaves the system in a consistent busy-wait state;
    ``check_invariants`` (which also cross-checks ``_locked_words``
    against the per-PE lock directories) runs every 25 accesses, not
    just at the end, so a transiently broken state cannot hide behind a
    later access that repairs it.
    """
    system = PIMCacheSystem(
        SimulationConfig(
            cache=CacheConfig(block_words=4, n_sets=2, associativity=2),
            protocol=protocol,
            track_data=True,
        ),
        n_pes,
    )
    blocked = 0
    for i, (pe, op, offset, value) in enumerate(steps, 1):
        cycles, _, _ = system.access(pe % n_pes, op, Area.HEAP, HEAP + offset, value)
        if cycles == BLOCKED:
            blocked += 1
        if i % 25 == 0:
            system.check_invariants()
    system.check_invariants()
    assert blocked <= len(steps)
    # Flushing releases every lock and leaves a coherent empty system.
    system.flush_all()
    system.check_invariants()
    assert not system._locked_words


@settings(max_examples=20, deadline=None)
@given(st.lists(_step, min_size=1, max_size=200))
def test_stats_are_internally_consistent(steps):
    system = _tiny_system()
    for pe, op, offset, value in steps:
        system.access(pe, op, Area.HEAP, HEAP + offset, value)
    stats = system.stats
    assert stats.total_refs == len(steps)
    assert stats.total_hits <= stats.total_refs
    assert 0.0 <= stats.miss_ratio <= 1.0
    assert stats.bus_cycles_total == sum(stats.pattern_cycles)
    assert sum(stats.bus_cycles_by_area) == stats.bus_cycles_total
