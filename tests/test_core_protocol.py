"""State-transition tests for the five-state PIM protocol (Section 3.1).

These drive :class:`PIMCacheSystem` directly with R/W sequences and
check the resulting block states, bus patterns and data values.
"""

import pytest

from repro.core.config import CacheConfig, SimulationConfig
from repro.core.states import BusPattern, CacheState
from repro.core.system import PIMCacheSystem
from repro.trace.events import AREA_BASE, Area, Op

HEAP = AREA_BASE[Area.HEAP]


def make_system(n_pes=4, protocol="pim", **cache_kwargs):
    cache = CacheConfig(**cache_kwargs) if cache_kwargs else CacheConfig()
    return PIMCacheSystem(
        SimulationConfig(cache=cache, protocol=protocol, track_data=True), n_pes
    )


class TestReads:
    def test_cold_read_fetches_from_memory_exclusive_clean(self):
        system = make_system()
        cycles, _, value = system.access(0, Op.R, Area.HEAP, HEAP)
        assert cycles == 13  # swap-in
        assert value == 0
        assert system.line_state(0, HEAP) == CacheState.EC
        assert system.stats.swap_ins == 1

    def test_read_hit_costs_one_cycle_no_bus(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        before = system.stats.bus_cycles_total
        cycles, _, _ = system.access(0, Op.R, Area.HEAP, HEAP + 1)
        assert cycles == 1
        assert system.stats.bus_cycles_total == before

    def test_read_miss_served_cache_to_cache_without_copyback(self):
        system = make_system()
        system.access(0, Op.W, Area.HEAP, HEAP, value=7)  # PE0: EM
        busy_before = system.stats.memory_busy_cycles
        cycles, _, value = system.access(1, Op.R, Area.HEAP, HEAP)
        assert cycles == 7  # cache-to-cache, no swap-out
        assert value == 7
        # PIM keeps the dirty data out of memory: the supplier owns it in SM.
        assert system.line_state(0, HEAP) == CacheState.SM
        assert system.line_state(1, HEAP) == CacheState.S
        assert system.stats.memory_busy_cycles == busy_before
        assert system.memory.get(HEAP, 0) == 0  # memory still stale

    def test_clean_supplier_transitions_ec_to_s(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)  # EC
        system.access(1, Op.R, Area.HEAP, HEAP)
        assert system.line_state(0, HEAP) == CacheState.S
        assert system.line_state(1, HEAP) == CacheState.S

    def test_third_reader_is_served_by_owner(self):
        system = make_system()
        system.access(0, Op.W, Area.HEAP, HEAP, value=9)
        system.access(1, Op.R, Area.HEAP, HEAP)
        cycles, _, value = system.access(2, Op.R, Area.HEAP, HEAP)
        assert value == 9
        assert system.line_state(0, HEAP) == CacheState.SM  # still the owner
        assert system.line_state(2, HEAP) == CacheState.S
        system.check_invariants()


class TestWrites:
    def test_write_miss_uses_fetch_on_write(self):
        system = make_system()
        cycles, _, _ = system.access(0, Op.W, Area.HEAP, HEAP, value=5)
        assert cycles == 13  # the block is fetched (fetch-on-write)
        assert system.line_state(0, HEAP) == CacheState.EM
        assert system.stats.swap_ins == 1

    def test_write_hit_exclusive_is_silent(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)  # EC
        before = system.stats.bus_cycles_total
        cycles, _, _ = system.access(0, Op.W, Area.HEAP, HEAP, value=1)
        assert cycles == 1
        assert system.stats.bus_cycles_total == before
        assert system.line_state(0, HEAP) == CacheState.EM

    def test_write_hit_shared_broadcasts_invalidate(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)  # both S
        cycles, _, _ = system.access(0, Op.W, Area.HEAP, HEAP, value=3)
        assert cycles == 2  # invalidation pattern
        assert system.line_state(0, HEAP) == CacheState.EM
        assert system.line_state(1, HEAP) == CacheState.INV
        system.check_invariants()

    def test_write_hit_sm_broadcasts_even_without_actual_sharers(self):
        """SM means *perhaps* shared — the I goes out regardless."""
        system = make_system(n_pes=2, n_sets=2, associativity=1)
        system.access(0, Op.W, Area.HEAP, HEAP, value=1)
        system.access(1, Op.R, Area.HEAP, HEAP)  # PE0 SM, PE1 S
        # PE1 evicts its copy by touching two conflicting blocks.
        conflict = HEAP + 4 * 2  # same set (2 sets, 4-word blocks)
        system.access(1, Op.R, Area.HEAP, conflict)
        assert system.line_state(1, HEAP) == CacheState.INV
        before = system.stats.pattern_counts[BusPattern.INVALIDATION]
        system.access(0, Op.W, Area.HEAP, HEAP, value=2)
        assert system.stats.pattern_counts[BusPattern.INVALIDATION] == before + 1

    def test_write_miss_invalidates_all_copies(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)
        system.access(2, Op.W, Area.HEAP, HEAP, value=4)
        assert system.line_state(0, HEAP) == CacheState.INV
        assert system.line_state(1, HEAP) == CacheState.INV
        assert system.line_state(2, HEAP) == CacheState.EM
        system.check_invariants()

    def test_read_after_remote_write_sees_value(self):
        system = make_system()
        system.access(0, Op.W, Area.HEAP, HEAP + 2, value=42)
        _, _, value = system.access(3, Op.R, Area.HEAP, HEAP + 2)
        assert value == 42


class TestEviction:
    def test_dirty_eviction_writes_back(self):
        system = make_system(n_pes=1, n_sets=2, associativity=1)
        system.access(0, Op.W, Area.HEAP, HEAP, value=77)  # EM
        # Conflicting block in the same set forces eviction.
        system.access(0, Op.R, Area.HEAP, HEAP + 8)
        assert system.stats.swap_outs == 1
        assert system.memory[HEAP] == 77
        # Re-read must see the written value from memory.
        _, _, value = system.access(0, Op.R, Area.HEAP, HEAP)
        assert value == 77

    def test_clean_eviction_is_free(self):
        system = make_system(n_pes=1, n_sets=2, associativity=1)
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(0, Op.R, Area.HEAP, HEAP + 8)
        assert system.stats.swap_outs == 0

    def test_swap_out_rides_the_fetch_pattern(self):
        system = make_system(n_pes=1, n_sets=2, associativity=1)
        system.access(0, Op.W, Area.HEAP, HEAP, value=1)
        system.access(0, Op.R, Area.HEAP, HEAP + 8)
        assert (
            system.stats.pattern_counts[BusPattern.SWAP_IN_WITH_SWAP_OUT] == 1
        )


class TestIllinoisProtocol:
    def test_dirty_transfer_copies_back_to_memory(self):
        system = make_system(protocol="illinois")
        system.access(0, Op.W, Area.HEAP, HEAP, value=11)
        system.access(1, Op.R, Area.HEAP, HEAP)
        # Illinois: the transfer updates memory; everyone is clean S.
        assert system.line_state(0, HEAP) == CacheState.S
        assert system.line_state(1, HEAP) == CacheState.S
        assert system.memory[HEAP] == 11
        assert system.stats.swap_outs == 1

    def test_pim_beats_illinois_on_memory_busy(self):
        results = {}
        for protocol in ("pim", "illinois"):
            system = make_system(protocol=protocol)
            for i in range(20):
                writer, reader = i % 4, (i + 1) % 4
                system.access(writer, Op.W, Area.HEAP, HEAP + 4 * i, value=i)
                system.access(reader, Op.R, Area.HEAP, HEAP + 4 * i)
            results[protocol] = system.stats.memory_busy_cycles
        assert results["pim"] < results["illinois"]


class TestInvariantsAndTiming:
    def test_invariant_checker_catches_corruption(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)
        # Corrupt: force both into exclusive state behind the protocol's back.
        system.caches[0].peek(HEAP // 4).state = CacheState.EM
        with pytest.raises(AssertionError):
            system.check_invariants()

    def test_pe_clocks_advance_and_bus_serializes(self):
        system = make_system()
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP + 64)
        assert system.stats.pe_cycles[0] > 0
        assert system.stats.pe_cycles[1] > system.stats.pe_cycles[0]  # waited for bus

    def test_flush_all_writes_dirty_blocks(self):
        system = make_system()
        system.access(0, Op.W, Area.HEAP, HEAP, value=5)
        written = system.flush_all()
        assert written == 1
        assert system.memory[HEAP] == 5
        assert system.line_state(0, HEAP) == CacheState.INV

    def test_unknown_op_rejected(self):
        system = make_system()
        with pytest.raises(ValueError):
            system.access(0, 99, Area.HEAP, HEAP)

    def test_bus_attribution_by_area(self):
        system = make_system()
        system.access(0, Op.R, Area.GOAL, AREA_BASE[Area.GOAL])
        assert system.stats.bus_cycles_by_area[Area.GOAL] == 13
        assert system.stats.bus_cycles_by_area[Area.HEAP] == 0
